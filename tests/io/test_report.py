"""Plan report rendering."""

from __future__ import annotations

from repro.core import evaluate_plan
from repro.io import render_placement_listing, render_plan_report


def make_plan(state, dr=False):
    placement = {g.name: "mid" for g in state.app_groups}
    secondary = {g.name: "cheap-far" for g in state.app_groups} if dr else None
    return evaluate_plan(state, placement, secondary=secondary, solver="test")


class TestPlanReport:
    def test_headline(self, tiny_state):
        text = render_plan_report(tiny_state, make_plan(tiny_state))
        assert 'Transformation plan for "tiny"' in text
        assert "4 application groups / 155 servers" in text

    def test_cost_lines_present(self, tiny_state):
        text = render_plan_report(tiny_state, make_plan(tiny_state))
        for label in ("space", "power", "labor", "WAN", "TOTAL"):
            assert label in text

    def test_violations_and_solver(self, tiny_state):
        text = render_plan_report(tiny_state, make_plan(tiny_state))
        assert "Latency violations: 0" in text
        assert "test" in text

    def test_dr_sections(self, tiny_state):
        text = render_plan_report(tiny_state, make_plan(tiny_state, dr=True))
        assert "with disaster recovery" in text
        assert "Backup pools" in text
        assert "cheap-far:155" in text

    def test_site_rows(self, tiny_state):
        plan = make_plan(tiny_state)
        text = render_plan_report(tiny_state, plan)
        assert "mid" in text


class TestPlacementListing:
    def test_all_groups_listed(self, tiny_state):
        text = render_placement_listing(make_plan(tiny_state))
        for g in tiny_state.app_groups:
            assert g.name in text

    def test_dr_column(self, tiny_state):
        text = render_placement_listing(make_plan(tiny_state, dr=True))
        assert "secondary" in text
        assert "cheap-far" in text
