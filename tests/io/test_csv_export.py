"""CSV exports."""

from __future__ import annotations

import csv
import io

import pytest

from repro.core import evaluate_plan
from repro.experiments.harness import AlgorithmResult
from repro.io.csv_export import (
    COMPARISON_HEADER,
    PLACEMENT_HEADER,
    USAGE_HEADER,
    export_plan_csv,
    write_comparison_csv,
    write_placement_csv,
    write_usage_csv,
)


@pytest.fixture
def plan(tiny_state):
    placement = {"erp": "mid", "web": "mid", "batch": "cheap-far", "bi": "cheap-far"}
    secondary = {g: "east-dc" for g in placement}
    return evaluate_plan(tiny_state, placement, secondary=secondary)


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestPlacementCSV:
    def test_header_and_rows(self, tiny_state, plan):
        buf = io.StringIO()
        rows = write_placement_csv(tiny_state, plan, buf)
        parsed = parse(buf.getvalue())
        assert parsed[0] == PLACEMENT_HEADER
        assert rows == 4
        assert len(parsed) == 5

    def test_group_details(self, tiny_state, plan):
        buf = io.StringIO()
        write_placement_csv(tiny_state, plan, buf)
        by_group = {row[0]: row for row in parse(buf.getvalue())[1:]}
        erp = by_group["erp"]
        assert erp[1] == "40"
        assert erp[3] == "mid"
        assert erp[4] == "east-dc"
        assert erp[6] == "false"  # mid is within the 10 ms threshold

    def test_no_user_group_blank_latency(self, tiny_state, plan):
        buf = io.StringIO()
        write_placement_csv(tiny_state, plan, buf)
        by_group = {row[0]: row for row in parse(buf.getvalue())[1:]}
        assert by_group["batch"][5] == ""


class TestUsageCSV:
    def test_header_and_totals(self, tiny_state, plan):
        buf = io.StringIO()
        rows = write_usage_csv(plan, buf)
        parsed = parse(buf.getvalue())
        assert parsed[0] == USAGE_HEADER
        assert rows == len(plan.usage)
        total = sum(float(row[10]) for row in parsed[1:])
        expected = sum(slot.total_cost for slot in plan.usage.values())
        assert total == pytest.approx(expected, abs=0.1)

    def test_backup_servers_column(self, tiny_state, plan):
        buf = io.StringIO()
        write_usage_csv(plan, buf)
        by_site = {row[0]: row for row in parse(buf.getvalue())[1:]}
        assert int(by_site["east-dc"][3]) == plan.backup_servers["east-dc"]


class TestComparisonCSV:
    def test_rows(self):
        results = [
            AlgorithmResult("as-is", 100.0, 90.0, 10.0, 0.0, 2, 5, 0.1),
            AlgorithmResult("etransform", 50.0, 50.0, 0.0, 0.0, 0, 2, 1.0),
        ]
        buf = io.StringIO()
        rows = write_comparison_csv(results, buf)
        parsed = parse(buf.getvalue())
        assert parsed[0] == COMPARISON_HEADER
        assert rows == 2
        assert parsed[2][0] == "etransform"
        assert parsed[2][5] == "0"


def test_export_plan_csv_files(tiny_state, plan, tmp_path):
    placement_path = tmp_path / "placement.csv"
    usage_path = tmp_path / "usage.csv"
    export_plan_csv(tiny_state, plan, str(placement_path), str(usage_path))
    assert placement_path.read_text().startswith("group,")
    assert usage_path.read_text().startswith("site,")
