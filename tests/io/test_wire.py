"""The compact binary wire codec (:mod:`repro.io.wire`)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.io.wire import (
    WIRE_BINARY,
    WIRE_JSON,
    WireFormatError,
    decode_payload,
    encode_payload,
)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**62,
            3.5,
            -0.0,
            "",
            "consolidation",
            "naïve — ünïcode",
            b"raw bytes\x00\xff",
            [],
            {},
            [1, "two", 3.0, None, True],
            {"nested": {"a": [1, 2], "b": {"c": None}}, "x": 1.5},
        ],
    )
    def test_value_faithful(self, value):
        assert decode_payload(encode_payload(value)) == value

    def test_int_beyond_int64(self):
        huge = 2**200 + 7
        assert decode_payload(encode_payload(huge)) == huge
        assert decode_payload(encode_payload(-huge)) == -huge

    def test_nonfinite_floats_survive(self):
        out = decode_payload(encode_payload([math.inf, -math.inf] * 5))
        assert out[0] == math.inf and out[1] == -math.inf
        nan = decode_payload(encode_payload(float("nan")))
        assert math.isnan(nan)

    def test_tuple_decodes_as_list(self):
        assert decode_payload(encode_payload((1, 2, 3))) == [1, 2, 3]


class TestPackedArrays:
    def test_long_float_list_beats_json(self):
        values = [float(i) * 0.123456789 for i in range(256)]
        wire = encode_payload(values)
        assert wire[0] == WIRE_BINARY
        assert len(wire) < len(json.dumps(values).encode())
        # 1 version + 1 tag + 4 count + 8 bytes per double, exactly.
        assert len(wire) == 6 + 8 * len(values)
        assert decode_payload(wire) == values

    def test_long_int_list_packs(self):
        values = list(range(-100, 100))
        wire = encode_payload(values)
        assert len(wire) == 6 + 8 * len(values)
        assert decode_payload(wire) == values

    def test_mixed_int_float_list_packs_as_floats(self):
        values = [1, 2.5, 3, 4.5, 5, 6.5, 7, 8.5]
        assert decode_payload(encode_payload(values)) == [float(v) for v in values]

    def test_short_lists_skip_the_scan(self):
        # Below _ARRAY_MIN the generic list path preserves int-ness.
        values = [1, 2, 3]
        out = decode_payload(encode_payload(values))
        assert out == values and all(isinstance(v, int) for v in out)

    def test_numpy_float_array_roundtrips_to_list(self):
        array = np.linspace(0.0, 1.0, 64)
        out = decode_payload(encode_payload(array))
        assert out == list(array)

    def test_numpy_int_array_roundtrips_to_list(self):
        array = np.arange(32, dtype=np.int32)
        assert decode_payload(encode_payload(array)) == list(range(32))

    def test_csc_like_payload(self):
        payload = {
            "indptr": list(range(0, 900, 3)),
            "indices": [i % 17 for i in range(300)],
            "values": [0.1 * i for i in range(300)],
        }
        assert decode_payload(encode_payload(payload)) == payload


class TestDirectivePayloads:
    """Directives cross the wire as their ``as_dict`` form — the online
    controller's ``cap_load`` rows carry fractional limits and per-group
    float weights, both of which must survive the binary body exactly."""

    def _roundtrip(self, directive, binary=True):
        from repro.core.incremental import directive_from_dict

        wire = encode_payload(directive.as_dict(), binary=binary)
        return directive_from_dict(decode_payload(wire))

    def test_cap_load_fractional_limit_roundtrips(self):
        from repro.core.incremental import Directive

        directive = Directive(
            kind="cap_load",
            datacenter="east",
            limit=153.72,
            weights=(("erp", 12.5), ("web", 0.375), ("batch", 41.0)),
        )
        out = self._roundtrip(directive)
        assert out == directive
        assert isinstance(out.limit, float) and out.limit == 153.72
        assert out.weights == (("erp", 12.5), ("web", 0.375), ("batch", 41.0))

    def test_cap_load_many_weights_binary_body(self):
        from repro.core.incremental import Directive

        weights = tuple((f"group-{i:03d}", 0.1 * i + 0.01) for i in range(40))
        directive = Directive(
            kind="cap_load", datacenter="west", limit=999.25, weights=weights
        )
        wire = encode_payload(directive.as_dict())
        assert wire[0] == WIRE_BINARY
        out = self._roundtrip(directive)
        assert out == directive
        assert all(isinstance(w, float) for _, w in out.weights)

    def test_cap_load_json_body_parity(self):
        from repro.core.incremental import Directive

        directive = Directive(
            kind="cap_load",
            datacenter="north",
            limit=7.125,
            weights=(("a", 1.5), ("b", 2.25)),
        )
        assert self._roundtrip(directive, binary=False) == directive

    def test_cap_servers_limit_stays_integer(self):
        from repro.core.incremental import Directive

        directive = Directive(kind="cap_servers", datacenter="east", limit=120)
        out = self._roundtrip(directive)
        assert out == directive and isinstance(out.limit, int)


class TestFallbackAndVersioning:
    def test_json_fallback_for_non_string_keys(self):
        value = {1: "one"}  # binary dicts need str keys
        wire = encode_payload(value)
        assert wire[0] == WIRE_JSON
        assert decode_payload(wire) == {"1": "one"}  # json stringifies

    def test_forced_json_body(self):
        wire = encode_payload({"a": [1, 2, 3]}, binary=False)
        assert wire[0] == WIRE_JSON
        assert decode_payload(wire) == {"a": [1, 2, 3]}

    def test_unknown_version_rejected(self):
        with pytest.raises(WireFormatError, match="version"):
            decode_payload(b"\x7f{}")

    def test_empty_message_rejected(self):
        with pytest.raises(WireFormatError):
            decode_payload(b"")

    def test_truncated_message_rejected(self):
        wire = encode_payload([1.0] * 32)
        with pytest.raises(WireFormatError, match="truncated"):
            decode_payload(wire[: len(wire) // 2])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireFormatError, match="trailing"):
            decode_payload(encode_payload(1) + b"junk")

    def test_unknown_tag_rejected(self):
        with pytest.raises(WireFormatError, match="tag"):
            decode_payload(bytes([WIRE_BINARY, 0x7E]))

    def test_bad_json_body_rejected(self):
        with pytest.raises(WireFormatError, match="JSON"):
            decode_payload(bytes([WIRE_JSON]) + b"{not json")
