"""JSON round-trips for states and plans."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    ApplicationGroup,
    StepCostFunction,
    evaluate_plan,
)
from repro.core.latency import NO_PENALTY, LatencyPenaltyFunction
from repro.io import load_state, plan_to_dict, save_plan, save_state, state_to_dict
from repro.io.serialization import (
    SCHEMA_VERSION,
    group_from_dict,
    group_to_dict,
    penalty_from_dict,
    penalty_to_dict,
    state_from_dict,
    step_cost_from_dict,
    step_cost_to_dict,
)


class TestFunctionRoundTrips:
    def test_step_cost(self):
        f = StepCostFunction.volume_discount(100.0, step=50, discount=10.0, floor_price=60.0)
        assert step_cost_from_dict(step_cost_to_dict(f)) == f

    def test_flat_step_cost(self):
        f = StepCostFunction.flat(42.0)
        assert step_cost_from_dict(step_cost_to_dict(f)) == f

    def test_penalty(self):
        f = LatencyPenaltyFunction.banded(10.0, 10.0, 25.0, bands=3)
        assert penalty_from_dict(penalty_to_dict(f)) == f

    def test_empty_penalty_is_sentinel(self):
        assert penalty_from_dict([]) is NO_PENALTY


class TestGroupRoundTrip:
    def test_full_featured_group(self):
        g = ApplicationGroup(
            "g",
            12,
            monthly_data_mb=500.0,
            users={"east": 10.0},
            latency_penalty=LatencyPenaltyFunction.single_threshold(10, 100),
            current_datacenter="old",
            allowed_regions=frozenset({"us", "eu"}),
            forbidden_datacenters=frozenset({"dc9"}),
            risk_group="pci",
        )
        back = group_from_dict(group_to_dict(g))
        assert back.name == g.name
        assert back.servers == g.servers
        assert back.users == g.users
        assert back.latency_penalty == g.latency_penalty
        assert back.allowed_regions == g.allowed_regions
        assert back.forbidden_datacenters == g.forbidden_datacenters
        assert back.risk_group == g.risk_group

    def test_none_allowed_regions_distinct_from_empty(self):
        g = ApplicationGroup("g", 1)
        assert group_from_dict(group_to_dict(g)).allowed_regions is None


class TestStateRoundTrip:
    def test_state_files(self, asis_capable_state, tmp_path):
        path = tmp_path / "state.json"
        save_state(asis_capable_state, str(path))
        back = load_state(str(path))
        assert back.name == asis_capable_state.name
        assert back.summary() == asis_capable_state.summary()
        assert [g.servers for g in back.app_groups] == [
            g.servers for g in asis_capable_state.app_groups
        ]

    def test_costs_survive_roundtrip(self, asis_capable_state, tmp_path):
        from repro.baselines import asis_plan

        path = tmp_path / "state.json"
        save_state(asis_capable_state, str(path))
        back = load_state(str(path))
        assert asis_plan(back).total_cost == pytest.approx(
            asis_plan(asis_capable_state).total_cost
        )

    def test_plans_identical_after_roundtrip(self, tiny_state, tmp_path):
        from repro.core import plan_consolidation

        path = tmp_path / "state.json"
        save_state(tiny_state, str(path))
        back = load_state(str(path))
        a = plan_consolidation(tiny_state, backend="highs")
        b = plan_consolidation(back, backend="highs")
        assert a.total_cost == pytest.approx(b.total_cost)

    def test_schema_version_checked(self, tiny_state):
        data = state_to_dict(tiny_state)
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            state_from_dict(data)

    def test_json_serializable(self, tiny_state):
        json.dumps(state_to_dict(tiny_state))


class TestPlanSerialization:
    def test_plan_to_dict(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, solver="test")
        data = plan_to_dict(plan)
        assert data["placement"] == placement
        assert data["breakdown"]["total"] == pytest.approx(plan.total_cost)
        assert data["solver"] == "test"
        json.dumps(data)

    def test_save_plan(self, tiny_state, tmp_path):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement)
        path = tmp_path / "plan.json"
        save_plan(plan, str(path))
        data = json.loads(path.read_text())
        assert data["datacenters_used"] == ["mid"]


class TestCaseStudyPlanRoundTrips:
    """plan → JSON → plan on the three paper case studies."""

    @pytest.mark.parametrize("name", ["enterprise1", "federal", "florida"])
    def test_round_trip_preserves_the_plan(self, name, tmp_path):
        from repro import plan_consolidation
        from repro.datasets import load_enterprise1, load_federal, load_florida
        from repro.io import load_plan, save_plan

        loader = {
            "enterprise1": load_enterprise1,
            "federal": load_federal,
            "florida": load_florida,
        }[name]
        state = loader(scale=0.25)
        plan = plan_consolidation(state, backend="highs")

        path = tmp_path / f"{name}.json"
        save_plan(plan, str(path))
        restored = load_plan(str(path))

        assert restored.placement == plan.placement
        assert restored.secondary == plan.secondary
        assert restored.backup_servers == plan.backup_servers
        assert restored.datacenters_used == plan.datacenters_used
        assert restored.breakdown.total == pytest.approx(plan.breakdown.total)
        assert restored.solver == plan.solver
        # Byte-level fixpoint: serializing the restored plan reproduces
        # the original document exactly (nan-safe, since as_dict maps
        # non-finite floats to None on both sides).
        assert json.dumps(plan_to_dict(restored), sort_keys=True) == json.dumps(
            plan_to_dict(plan), sort_keys=True
        )

    @pytest.mark.parametrize("name", ["enterprise1", "federal", "florida"])
    def test_solve_stats_round_trip(self, name):
        from repro import plan_consolidation
        from repro.datasets import load_enterprise1, load_federal, load_florida
        from repro.telemetry import SolveStats

        loader = {
            "enterprise1": load_enterprise1,
            "federal": load_federal,
            "florida": load_florida,
        }[name]
        plan = plan_consolidation(loader(scale=0.25), backend="highs")
        stats = plan.solver_stats
        assert stats is not None
        restored = SolveStats.from_dict(
            json.loads(json.dumps(stats.as_dict()))
        )
        # nan != nan, so compare the JSON-safe views field by field.
        assert restored.as_dict() == stats.as_dict()
        assert restored.backend == stats.backend
        assert restored.elapsed_seconds == pytest.approx(stats.elapsed_seconds)

    def test_plan_from_dict_rejects_future_schema(self, tiny_state):
        from repro.io import plan_from_dict

        placement = {g.name: "mid" for g in tiny_state.app_groups}
        data = plan_to_dict(evaluate_plan(tiny_state, placement))
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            plan_from_dict(data)


class TestJsonLines:
    def test_append_and_read_round_trip(self, tmp_path):
        from repro.io import append_jsonl, read_jsonl

        path = tmp_path / "log.jsonl"
        records = [{"event": "a", "n": 1}, {"event": "b", "nested": {"x": [1, 2]}}]
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                append_jsonl(handle, record)
        assert read_jsonl(str(path)) == records

    def test_torn_final_line_is_skipped(self, tmp_path):
        from repro.io import append_jsonl, read_jsonl

        path = tmp_path / "log.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            append_jsonl(handle, {"event": "complete"})
            handle.write('{"event": "torn", "n":')  # crashed mid-write
        assert read_jsonl(str(path)) == [{"event": "complete"}]

    def test_missing_journal_reads_empty(self, tmp_path):
        from repro.io import read_jsonl

        assert read_jsonl(str(tmp_path / "nope.jsonl")) == []
