"""Geography primitives."""

from __future__ import annotations

import pytest

from repro.datasets.geography import (
    Point,
    class_latencies,
    corner_positions,
    distance_km,
    latency_ms,
    line_positions,
)


class TestDistance:
    def test_point_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_km(self):
        assert distance_km(0, 0, 3, 4) == pytest.approx(5.0)


class TestLatency:
    def test_monotone_in_distance(self):
        assert latency_ms(100) < latency_ms(200)

    def test_base_latency_at_zero(self):
        assert latency_ms(0.0) == pytest.approx(1.0)

    def test_custom_parameters(self):
        assert latency_ms(100.0, base_ms=2.0, per_km=0.05) == pytest.approx(7.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            latency_ms(-1.0)


class TestTopologies:
    def test_line_positions(self):
        pts = line_positions(4, 100.0)
        assert [p.x for p in pts] == [0.0, 100.0, 200.0, 300.0]
        assert all(p.y == 0.0 for p in pts)

    def test_line_validation(self):
        with pytest.raises(ValueError):
            line_positions(0, 1.0)
        with pytest.raises(ValueError):
            line_positions(3, 0.0)

    def test_corners(self):
        pts = corner_positions(10.0)
        assert len(pts) == 4
        assert {(p.x, p.y) for p in pts} == {(0, 0), (10, 0), (0, 10), (10, 10)}

    def test_corner_validation(self):
        with pytest.raises(ValueError):
            corner_positions(0.0)


class TestClassLatencies:
    LOCS = ["a", "b", "c", "d"]

    def test_close_to_one(self):
        lat = class_latencies(1, self.LOCS)
        assert lat == {"a": 20.0, "b": 5.0, "c": 20.0, "d": 20.0}

    def test_central(self):
        lat = class_latencies(None, self.LOCS)
        assert set(lat.values()) == {10.0}

    def test_custom_values(self):
        lat = class_latencies(0, self.LOCS, near_ms=2.0, far_ms=50.0)
        assert lat["a"] == 2.0 and lat["d"] == 50.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            class_latencies(4, self.LOCS)
