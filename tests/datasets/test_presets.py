"""Bonus dataset presets (UK government, HP)."""

from __future__ import annotations

import pytest

from repro.core import plan_consolidation, validate_state
from repro.datasets.presets import (
    hp_spec,
    load_hp,
    load_uk_government,
    uk_government_spec,
)


class TestUKGovernment:
    def test_published_site_counts(self):
        spec = uk_government_spec()
        assert spec.current_datacenters == 120
        assert spec.target_datacenters == 10

    def test_density_extrapolation(self):
        spec = uk_government_spec()
        assert spec.total_servers == round(120 * 1070 / 67)
        assert spec.app_groups == round(120 * 190 / 67)

    def test_builds_and_validates(self):
        state = load_uk_government(scale=0.2)
        validate_state(state, require_dr_headroom=True)

    def test_consolidation_saves(self):
        from repro.baselines import asis_plan

        state = load_uk_government(scale=0.2)
        asis = asis_plan(state)
        plan = plan_consolidation(state, backend="highs", mip_rel_gap=0.01)
        assert plan.total_cost < asis.total_cost
        # The whole point: far fewer sites than the 24 as-is ones.
        assert len(plan.datacenters_used) <= 5


class TestHP:
    def test_published_site_counts(self):
        spec = hp_spec()
        assert spec.current_datacenters == 85
        assert spec.target_datacenters == 8

    def test_deterministic(self):
        a = load_hp(scale=0.2)
        b = load_hp(scale=0.2)
        assert [g.servers for g in a.app_groups] == [g.servers for g in b.app_groups]

    def test_distinct_from_uk(self):
        hp = load_hp(scale=0.2)
        uk = load_uk_government(scale=0.2)
        assert hp.summary() != uk.summary()
