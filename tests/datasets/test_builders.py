"""Case-study dataset builders: Table II statistics and invariants."""

from __future__ import annotations

import pytest

from repro.core import validate_state
from repro.datasets import (
    ENTERPRISE1_USERS,
    EnterpriseSpec,
    build_enterprise_state,
    enterprise1_spec,
    federal_spec,
    florida_spec,
    load_enterprise1,
    load_federal,
    load_florida,
)


class TestTableII:
    """The generated datasets must match the paper's Table II sizes."""

    def test_enterprise1_sizes(self):
        state = load_enterprise1()
        s = state.summary()
        assert s["app_groups"] == 190
        assert s["servers"] == 1070
        assert s["current_datacenters"] == 67
        assert s["target_datacenters"] == 10
        assert s["user_locations"] == 4

    def test_florida_sizes(self):
        state = load_florida()
        s = state.summary()
        assert s["app_groups"] == 190
        assert s["servers"] == 3907
        assert s["current_datacenters"] == 43
        assert s["target_datacenters"] == 10

    def test_federal_spec_sizes(self):
        # Build at reduced scale; check the full-scale spec fields.
        spec = federal_spec()
        assert spec.app_groups == 1900
        assert spec.total_servers == 42800
        assert spec.current_datacenters == 2094
        assert spec.target_datacenters == 100

    def test_enterprise1_user_population_matches_fig2(self):
        state = load_enterprise1()
        total = sum(g.total_users for g in state.app_groups)
        assert total == pytest.approx(ENTERPRISE1_USERS, rel=1e-6)


class TestStructure:
    def test_deterministic_per_seed(self):
        a = load_enterprise1(seed=5)
        b = load_enterprise1(seed=5)
        assert [g.servers for g in a.app_groups] == [g.servers for g in b.app_groups]
        assert [d.capacity for d in a.target_datacenters] == [
            d.capacity for d in b.target_datacenters
        ]

    def test_different_seeds_differ(self):
        a = load_enterprise1(seed=1)
        b = load_enterprise1(seed=2)
        assert [g.servers for g in a.app_groups] != [g.servers for g in b.app_groups]

    def test_half_latency_sensitive(self):
        state = load_enterprise1()
        sensitive = sum(1 for g in state.app_groups if g.is_latency_sensitive)
        assert sensitive == 95

    def test_validates_cleanly(self):
        validate_state(load_enterprise1(), require_dr_headroom=True)

    def test_every_group_has_current_site(self):
        state = load_enterprise1()
        names = {dc.name for dc in state.current_datacenters}
        assert all(g.current_datacenter in names for g in state.app_groups)

    def test_asis_is_latency_clean(self):
        from repro.baselines import asis_plan

        plan = asis_plan(load_enterprise1())
        # Historic estates grew next to their users.
        assert plan.latency_violations == 0

    def test_capacity_headroom(self):
        state = load_enterprise1()
        assert state.total_target_capacity >= 1.8 * state.total_servers

    def test_target_capacities_in_paper_range_when_unscaled(self):
        # capacities start in [100, 1000] before any headroom re-scale
        spec = enterprise1_spec()
        state = build_enterprise_state(spec)
        assert all(dc.capacity >= 100 for dc in state.target_datacenters)

    def test_latency_classes_present(self):
        state = load_enterprise1()
        latency_sets = {tuple(sorted(dc.latency_to_users.values()))
                        for dc in state.target_datacenters}
        # Both the "close to one" (5/20/20/20) and "central" (10×4) class.
        assert (5.0, 20.0, 20.0, 20.0) in latency_sets
        assert (10.0, 10.0, 10.0, 10.0) in latency_sets


class TestScaling:
    def test_scaled_down_proportions(self):
        state = load_enterprise1(scale=0.1)
        s = state.summary()
        assert s["app_groups"] == 19
        assert s["servers"] == 107
        assert s["target_datacenters"] == 5  # floored to keep all latency classes

    def test_scale_bounds(self):
        with pytest.raises(ValueError):
            EnterpriseSpec("x", 10, 100, 2, 2, 100.0, scale=1.5).scaled()
        with pytest.raises(ValueError):
            EnterpriseSpec("x", 10, 100, 2, 2, 100.0, scale=0.0).scaled()

    def test_scale_one_is_identity(self):
        spec = enterprise1_spec()
        assert spec.scaled() is spec

    def test_scaled_state_still_plannable(self):
        from repro.core import plan_consolidation

        state = load_enterprise1(scale=0.1)
        plan = plan_consolidation(state, backend="highs")
        assert plan.total_cost > 0


class TestFloridaFederal:
    def test_florida_users_scaled_by_servers(self):
        spec = florida_spec()
        assert spec.total_users == pytest.approx(
            ENTERPRISE1_USERS * 3907 / 1070, rel=0.01
        )

    def test_federal_scaled_build(self):
        state = load_federal(scale=0.05)
        assert state.summary()["app_groups"] == 95
        validate_state(state)

    def test_florida_full_build(self):
        state = load_florida()
        validate_state(state)
