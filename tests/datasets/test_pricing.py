"""Seeded price tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.pricing import (
    DEFAULT_RANGES,
    PriceRanges,
    sample_fixed_cost,
    sample_labor_cost,
    sample_power_cost,
    sample_space_schedule,
    sample_vpn_tariff,
    sample_wan_price,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSamplers:
    def test_space_schedule_within_range(self):
        f = sample_space_schedule(rng())
        base = f.unit_price(1)
        lo, hi = DEFAULT_RANGES.space_base
        assert lo <= base <= hi
        # Deepest tier hits the floor fraction.
        deepest = f.segments[-1].unit_price
        assert deepest == pytest.approx(base * DEFAULT_RANGES.floor_fraction, rel=0.2)

    def test_space_schedule_flat_variant(self):
        f = sample_space_schedule(rng(), volume_discount=False)
        assert f.is_flat

    def test_power_cost_converted_to_monthly(self):
        cost = sample_power_cost(rng())
        lo, hi = DEFAULT_RANGES.power_cents_per_kwh
        assert lo * 7.30 <= cost <= hi * 7.30

    def test_labor_within_range(self):
        cost = sample_labor_cost(rng())
        lo, hi = DEFAULT_RANGES.labor_monthly
        assert lo <= cost <= hi

    def test_wan_within_range(self):
        price = sample_wan_price(rng())
        lo, hi = DEFAULT_RANGES.wan_per_mb
        assert lo <= price <= hi

    def test_fixed_within_range(self):
        cost = sample_fixed_cost(rng())
        lo, hi = DEFAULT_RANGES.fixed_monthly
        assert lo <= cost <= hi

    def test_vpn_tariff(self):
        base, per_km = sample_vpn_tariff(rng())
        assert DEFAULT_RANGES.vpn_base_monthly[0] <= base <= DEFAULT_RANGES.vpn_base_monthly[1]
        assert DEFAULT_RANGES.vpn_per_km[0] <= per_km <= DEFAULT_RANGES.vpn_per_km[1]

    def test_determinism_per_seed(self):
        assert sample_labor_cost(rng(42)) == sample_labor_cost(rng(42))
        assert sample_labor_cost(rng(1)) != sample_labor_cost(rng(2))

    def test_custom_ranges(self):
        ranges = PriceRanges(labor_monthly=(10.0, 10.0))
        assert sample_labor_cost(rng(), ranges) == 10.0

    def test_invalid_range_rejected(self):
        ranges = PriceRanges(labor_monthly=(10.0, 5.0))
        with pytest.raises(ValueError):
            sample_labor_cost(rng(), ranges)
