"""Line-topology scenario fixtures (Figs. 7–10)."""

from __future__ import annotations

import pytest

from repro.core import validate_state
from repro.datasets import (
    LINE_USER_LOCATIONS,
    latency_line_scenario,
    tradeoff_line_scenario,
)


class TestLatencyLine:
    def test_basic_shape(self):
        state = latency_line_scenario(penalty_per_band=50.0, fraction_at_west=0.5)
        assert len(state.target_datacenters) == 10
        assert len(state.app_groups) == 190
        assert sum(g.servers for g in state.app_groups) == 1070
        validate_state(state)

    def test_space_cost_increases_along_line(self):
        state = latency_line_scenario(penalty_per_band=0.0, fraction_at_west=1.0)
        prices = [dc.space_cost.unit_price(1) for dc in state.target_datacenters]
        assert prices == sorted(prices)
        assert prices[0] < prices[-1]

    def test_latency_grows_away_from_ends(self):
        state = latency_line_scenario(penalty_per_band=0.0, fraction_at_west=1.0)
        west = [dc.latency_to_users[LINE_USER_LOCATIONS[0]]
                for dc in state.target_datacenters]
        east = [dc.latency_to_users[LINE_USER_LOCATIONS[1]]
                for dc in state.target_datacenters]
        assert west == sorted(west)
        assert east == sorted(east, reverse=True)

    def test_user_split(self):
        state = latency_line_scenario(penalty_per_band=0.0, fraction_at_west=0.75)
        g = state.app_groups[0]
        west = g.users.get(LINE_USER_LOCATIONS[0], 0.0)
        east = g.users.get(LINE_USER_LOCATIONS[1], 0.0)
        assert west == pytest.approx(3 * east)

    def test_extreme_splits_drop_empty_location(self):
        state = latency_line_scenario(penalty_per_band=0.0, fraction_at_west=1.0)
        assert LINE_USER_LOCATIONS[1] not in state.app_groups[0].users

    def test_zero_penalty_means_insensitive(self):
        state = latency_line_scenario(penalty_per_band=0.0, fraction_at_west=0.5)
        assert not any(g.is_latency_sensitive for g in state.app_groups)

    def test_positive_penalty_banded(self):
        state = latency_line_scenario(penalty_per_band=10.0, fraction_at_west=0.5)
        g = state.app_groups[0]
        assert g.is_latency_sensitive
        assert g.latency_penalty.penalty_per_user(25.0) == 20.0  # two bands

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_line_scenario(penalty_per_band=-1.0, fraction_at_west=0.5)
        with pytest.raises(ValueError):
            latency_line_scenario(penalty_per_band=0.0, fraction_at_west=1.5)

    def test_convex_space_option(self):
        state = latency_line_scenario(
            penalty_per_band=0.0, fraction_at_west=1.0,
            space_growth=0.8, space_step_per_location=0.0,
        )
        prices = [dc.space_cost.unit_price(1) for dc in state.target_datacenters]
        # geometric: p2/p1 ratio constant and > 1
        assert prices[2] / prices[1] == pytest.approx(prices[1] / prices[0])
        assert prices[1] > prices[0]


class TestTradeoffLine:
    def test_basic_shape(self):
        state = tradeoff_line_scenario(n_groups=50)
        assert len(state.app_groups) == 50
        assert all(g.servers == 1 for g in state.app_groups)
        assert all(dc.capacity == 100 for dc in state.target_datacenters)
        validate_state(state)

    def test_all_users_at_east_end(self):
        state = tradeoff_line_scenario(n_groups=5)
        for g in state.app_groups:
            assert set(g.users) == {LINE_USER_LOCATIONS[1]}

    def test_vpn_prices_fall_toward_users(self):
        state = tradeoff_line_scenario(n_groups=5)
        east_prices = [dc.vpn_link_cost[LINE_USER_LOCATIONS[1]]
                       for dc in state.target_datacenters]
        assert east_prices == sorted(east_prices, reverse=True)

    def test_space_prices_grow_geometrically(self):
        state = tradeoff_line_scenario(n_groups=5)
        prices = [dc.space_cost.unit_price(1) for dc in state.target_datacenters]
        assert prices == sorted(prices)
        assert prices[-1] / prices[0] > 10  # steep convex ramp

    def test_negative_group_count_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_line_scenario(n_groups=-1)

    def test_zero_groups_allowed(self):
        state = tradeoff_line_scenario(n_groups=0)
        assert state.app_groups == []
