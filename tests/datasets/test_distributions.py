"""Distribution helpers — unit + property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.distributions import (
    affinity_class_users,
    assign_groups_to_sites,
    heavy_tailed_sizes,
    proportional_split,
    user_data_volume,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestHeavyTailedSizes:
    def test_exact_total(self):
        sizes = heavy_tailed_sizes(rng(), 50, 1000)
        assert sum(sizes) == 1000
        assert len(sizes) == 50

    def test_minimum_respected(self):
        sizes = heavy_tailed_sizes(rng(), 20, 100, minimum=3)
        assert min(sizes) >= 3

    def test_heavy_tail_present(self):
        sizes = heavy_tailed_sizes(rng(1), 200, 5000, sigma=1.2)
        assert max(sizes) > 4 * (5000 / 200)  # a few groups far above mean

    def test_deterministic_per_seed(self):
        assert heavy_tailed_sizes(rng(7), 30, 500) == heavy_tailed_sizes(rng(7), 30, 500)

    def test_validation(self):
        with pytest.raises(ValueError):
            heavy_tailed_sizes(rng(), 0, 10)
        with pytest.raises(ValueError):
            heavy_tailed_sizes(rng(), 10, 5)


class TestAffinityClasses:
    LOCATIONS = ["a", "b", "c", "d"]

    def test_concentrated_classes(self):
        for k in range(4):
            users = affinity_class_users(rng(), k, 100.0, self.LOCATIONS)
            assert users == {self.LOCATIONS[k]: 100.0}

    def test_spread_class(self):
        users = affinity_class_users(rng(), 4, 100.0, self.LOCATIONS)
        assert users == {loc: 25.0 for loc in self.LOCATIONS}

    def test_round_robin(self):
        a = affinity_class_users(rng(), 0, 10.0, self.LOCATIONS)
        b = affinity_class_users(rng(), 5, 10.0, self.LOCATIONS)
        assert a == b  # class index wraps mod 5

    def test_negative_users_rejected(self):
        with pytest.raises(ValueError):
            affinity_class_users(rng(), 0, -1.0, self.LOCATIONS)


class TestSiteAssignment:
    def test_every_site_used_when_possible(self):
        sizes = [1] * 50
        assignments = assign_groups_to_sites(rng(3), sizes, 10)
        assert set(assignments) == set(range(10))

    def test_assignment_length(self):
        assert len(assign_groups_to_sites(rng(), [1] * 7, 3)) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_groups_to_sites(rng(), [1], 0)

    def test_deterministic(self):
        a = assign_groups_to_sites(rng(5), [1] * 20, 4)
        b = assign_groups_to_sites(rng(5), [1] * 20, 4)
        assert a == b


class TestMisc:
    def test_proportional_split(self):
        out = proportional_split(rng(), 100.0, np.array([1.0, 3.0]))
        assert out.tolist() == [25.0, 75.0]

    def test_proportional_split_zero_weights(self):
        out = proportional_split(rng(), 100.0, np.array([0.0, 0.0]))
        assert out.tolist() == [0.0, 0.0]

    def test_proportional_split_negative_rejected(self):
        with pytest.raises(ValueError):
            proportional_split(rng(), 1.0, np.array([-1.0]))

    def test_user_data_volume_range(self):
        vol = user_data_volume(rng(), 100.0, mb_per_user=(10.0, 20.0))
        assert 1000.0 <= vol <= 2000.0

    def test_user_data_volume_validation(self):
        with pytest.raises(ValueError):
            user_data_volume(rng(), 1.0, mb_per_user=(5.0, 1.0))


# -- properties ------------------------------------------------------------
@given(
    count=st.integers(min_value=1, max_value=100),
    extra=st.integers(min_value=0, max_value=5000),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=50, deadline=None)
def test_sizes_always_sum_exactly(count, extra, seed):
    total = count + extra
    sizes = heavy_tailed_sizes(np.random.default_rng(seed), count, total)
    assert sum(sizes) == total
    assert all(s >= 1 for s in sizes)


@given(
    idx=st.integers(min_value=0, max_value=50),
    users=st.floats(min_value=0, max_value=1e6, allow_nan=False),
)
def test_affinity_classes_conserve_users(idx, users):
    locations = ["w", "x", "y", "z"]
    out = affinity_class_users(np.random.default_rng(0), idx, users, locations)
    assert sum(out.values()) == pytest.approx(users)
