"""ServiceClient transport behaviour: timeouts, retry, wire bodies, 429.

The solver never runs in most of these tests; they poke at the
connection-establishment path (monkeypatched ``socket.create_connection``
probes) and at admission control on a deliberately tiny queue.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

import repro.service.client as client_module
from repro.service import (
    PlanningServer,
    QueueFullError,
    ServiceClient,
    ServiceError,
)

from .conftest import VERY_SLOW_HORIZON, plan_payload, sim_payload


@pytest.fixture
def service(make_manager):
    def boot(**overrides):
        manager = make_manager(**overrides)
        server = PlanningServer(manager.config.replace(port=0), manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append((server, thread))
        return manager, server

    servers: list = []
    yield boot
    for server, thread in servers:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def closed_port() -> int:
    """A port that was just bound and released — nothing listens on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class TestConnectRetry:
    def test_refused_connection_fails_fast_without_retries(self):
        client = ServiceClient(
            f"http://127.0.0.1:{closed_port()}", connect_retries=0
        )
        start = time.monotonic()
        with pytest.raises(ServiceError) as excinfo:
            client.job("any")
        assert excinfo.value.status == 0
        assert "cannot reach" in str(excinfo.value)
        assert time.monotonic() - start < 2.0  # no backoff sleeps happened

    def test_refused_connection_retries_with_doubling_backoff(
        self, monkeypatch
    ):
        attempts = []
        naps = []
        real_create = socket.create_connection

        def refusing_create(address, *args, **kwargs):
            attempts.append(address)
            raise ConnectionRefusedError("test refusal")

        monkeypatch.setattr(
            client_module.socket, "create_connection", refusing_create
        )
        monkeypatch.setattr(
            client_module.time, "sleep", lambda s: naps.append(s)
        )
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=3, retry_backoff=0.1
        )
        with pytest.raises(ServiceError) as excinfo:
            client.job("any")
        assert excinfo.value.status == 0
        assert len(attempts) == 4  # initial try + 3 retries
        assert naps == [0.1, 0.2, 0.4]
        monkeypatch.setattr(
            client_module.socket, "create_connection", real_create
        )

    def test_retry_rides_out_a_restarting_server(
        self, monkeypatch, service, state_doc
    ):
        manager, server = service()
        real_create = socket.create_connection
        failures = iter([ConnectionRefusedError("still booting")])

        def flaky_create(address, *args, **kwargs):
            exc = next(failures, None)
            if exc is not None:
                raise exc
            return real_create(address, *args, **kwargs)

        monkeypatch.setattr(
            client_module.socket, "create_connection", flaky_create
        )
        client = ServiceClient(
            server.url, timeout=30.0, connect_retries=2, retry_backoff=0.01
        )
        job = client.submit("plan", plan_payload(state_doc))
        assert client.wait(job["id"], timeout=60.0)["state"] == "succeeded"

    def test_errors_after_connect_are_not_retried(self, service):
        manager, server = service()
        client = ServiceClient(server.url, connect_retries=5)
        with pytest.raises(ServiceError) as excinfo:
            client.job("no-such-job")  # 404 must surface immediately
        assert excinfo.value.status == 404

    def test_connect_timeout_defaults_to_capped_read_timeout(self):
        assert ServiceClient("http://h", timeout=30.0).connect_timeout == 5.0
        assert ServiceClient("http://h", timeout=2.0).connect_timeout == 2.0
        client = ServiceClient("http://h", timeout=30.0, connect_timeout=1.5)
        assert client.connect_timeout == 1.5


class TestBinaryClient:
    def test_wire_submission_roundtrips(self, service, state_doc):
        manager, server = service()
        client = ServiceClient(server.url, timeout=30.0, binary=True)
        job = client.submit("plan", plan_payload(state_doc))
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["result"]["summary"]["total_cost"] > 0

    def test_wire_and_json_submissions_share_the_cache(
        self, service, state_doc
    ):
        manager, server = service()
        json_client = ServiceClient(server.url, timeout=30.0)
        wire_client = ServiceClient(server.url, timeout=30.0, binary=True)
        payload = plan_payload(state_doc)
        first = json_client.wait(
            json_client.submit("plan", payload)["id"], timeout=60.0
        )
        again = wire_client.submit("plan", payload)
        assert again["via"] == "cache"
        assert again["fingerprint"] == first["fingerprint"]


class TestAdmissionControl:
    def test_queue_full_is_429_with_retry_after(self, service, state_doc):
        manager, server = service(workers=1, max_queue_depth=1)
        client = ServiceClient(server.url, timeout=30.0)
        accepted = []
        rejection = None
        for n in range(4):  # 1 running + 1 queued; a later one must bounce
            doc = dict(state_doc)
            doc["name"] = f"adm-{n}"
            try:
                accepted.append(
                    client.submit(
                        "simulate", sim_payload(doc, VERY_SLOW_HORIZON)
                    )["id"]
                )
            except ServiceError as exc:
                rejection = exc
                break
        assert rejection is not None
        assert rejection.status == 429
        assert rejection.retry_after is not None
        assert rejection.retry_after >= 1.0
        # Everything that got a 201 is still alive and cancellable.
        for job_id in accepted:
            assert client.job(job_id)["state"] in ("queued", "running")
            assert client.cancel(job_id)["cancelled"] is True

    def test_manager_raises_queue_full_directly(self, make_manager, state_doc):
        manager = make_manager(workers=1, max_queue_depth=1)
        submitted = []
        with pytest.raises(QueueFullError) as excinfo:
            for n in range(4):
                doc = dict(state_doc)
                doc["name"] = f"direct-{n}"
                submitted.append(
                    manager.submit(
                        "simulate", sim_payload(doc, VERY_SLOW_HORIZON)
                    )
                )
        assert excinfo.value.retry_after >= 1.0
        for record in submitted:
            manager.cancel(record.id)
