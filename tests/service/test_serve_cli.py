"""Boot ``repro.cli serve`` as a real subprocess and drive it end to end.

This is the CI smoke path: ephemeral port, one worker, a plan job over
HTTP, then SIGTERM and a clean drain (exit code 0, no orphans).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import ServiceClient

from .conftest import plan_payload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


@pytest.fixture
def serve_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env["PYTHONUNBUFFERED"] = "1"
    journal = tmp_path / "journal.jsonl"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--workers", "1", "--journal", str(journal),
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        banner = process.stdout.readline()
        assert "planning service listening on " in banner, banner
        url = banner.split("listening on ", 1)[1].split()[0]
        yield process, url, journal
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10.0)


def test_serve_boot_plan_and_drain_on_sigterm(serve_process, state_doc):
    process, url, journal = serve_process
    client = ServiceClient(url, timeout=10.0)

    health = client.healthz()
    assert health["status"] == "ok"
    assert health["workers_alive"] == 1

    job = client.submit("plan", plan_payload(state_doc))
    done = client.wait(job["id"], timeout=60.0)
    assert done["state"] == "succeeded"
    assert client.metrics()["jobs"]["by_state"]["succeeded"] >= 1

    process.send_signal(signal.SIGTERM)
    assert process.wait(timeout=30.0) == 0
    tail = process.stdout.read()
    assert "drained cleanly" in tail

    # The journal survives the process and tells the whole story.
    from repro.service import replay_journal

    assert replay_journal(str(journal))[job["id"]] == "succeeded"


def test_serve_rejects_bad_configuration():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "--workers", "0"],
        env=env,
        capture_output=True,
        text=True,
        timeout=60.0,
    )
    assert process.returncode == 2
    assert "bad service configuration" in process.stderr
    assert "at least one process" in process.stderr
