"""End-to-end tests of the HTTP API + :class:`ServiceClient`.

A real :class:`PlanningServer` is bound to an ephemeral port with a
real worker pool behind it; the client drives it over actual sockets.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.service import (
    JobManager,
    JobState,
    PlanningServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)

from .conftest import SLOW_HORIZON, plan_payload, sim_payload


@pytest.fixture
def service(make_manager):
    """(manager, client) for a live server on an ephemeral port."""
    manager = make_manager()
    config = manager.config.replace(port=0)
    server = PlanningServer(config, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield manager, ServiceClient(server.url, timeout=10.0)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestJobRoutes:
    def test_submit_poll_fetch_result(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        assert job["state"] in ("queued", "running", "succeeded")
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["via"] == "solve"
        assert done["result"]["summary"]["total_cost"] > 0
        assert done["result"]["plan"]["placement"]

    def test_client_state_conversion(self, service, tiny_state):
        # The client accepts a live AsIsState and wires it itself.
        _, client = service
        job = client.submit_plan(tiny_state, options={"backend": "highs"})
        done = client.wait(job["id"], timeout=60.0)
        assert len(done["result"]["summary"]["datacenters_used"]) >= 1

    def test_repeat_submission_is_a_cache_hit_over_http(
        self, service, state_doc
    ):
        _, client = service
        first = client.submit("plan", plan_payload(state_doc))
        client.wait(first["id"], timeout=60.0)
        second = client.submit("plan", plan_payload(state_doc))
        assert second["state"] == "succeeded"
        assert second["via"] == "cache"

    def test_listing_omits_result_bodies(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        client.wait(job["id"], timeout=60.0)
        listed = client.jobs()
        assert any(j["id"] == job["id"] for j in listed)
        assert all("result" not in j for j in listed)

    def test_worker_killed_mid_job_retries_through_http(
        self, service, state_doc
    ):
        manager, client = service
        job = client.submit("simulate", sim_payload(state_doc, SLOW_HORIZON))
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.job(job["id"])["state"] == "running":
                break
            time.sleep(0.01)
        with manager._lock:
            worker = manager._worker_running(job["id"])
        assert worker is not None
        os.kill(worker.pid, signal.SIGKILL)
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["attempts"] == 2
        assert client.metrics()["workers"]["restarts"] >= 1

    def test_cancel_running_job(self, service, state_doc):
        from .conftest import VERY_SLOW_HORIZON

        _, client = service
        job = client.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        assert client.cancel(job["id"]) == {"cancelled": True}
        assert client.job(job["id"])["state"] == "cancelled"


class TestErrorMapping:
    def test_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.job("doesnotexist")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_malformed_payload_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.submit("plan", {"options": {}})  # no state
        assert err.value.status == 400
        assert "state" in str(err.value)

    def test_unknown_kind_is_400(self, service, state_doc):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.submit("transmogrify", plan_payload(state_doc))
        assert err.value.status == 400

    def test_string_timeout_is_400(self, service, state_doc):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request(
                "POST",
                "/jobs",
                {"kind": "plan", "payload": plan_payload(state_doc), "timeout": "10"},
            )
        assert err.value.status == 400
        assert "timeout" in str(err.value)

    def test_string_max_retries_is_400(self, service, state_doc):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client._request(
                "POST",
                "/jobs",
                {
                    "kind": "plan",
                    "payload": plan_payload(state_doc),
                    "max_retries": "2",
                },
            )
        assert err.value.status == 400
        assert "max_retries" in str(err.value)

    def test_non_json_body_is_400(self, service):
        _, client = service
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400

    def test_cancelling_finished_job_is_409(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        client.wait(job["id"], timeout=60.0)
        with pytest.raises(ServiceError) as err:
            client.cancel(job["id"])
        assert err.value.status == 409


class TestIntrospectionRoutes:
    def test_healthz_reports_full_pool(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_alive"] == health["workers_expected"]

    def test_metrics_shape(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        client.wait(job["id"], timeout=60.0)
        stats = client.metrics()
        assert stats["jobs"]["by_state"]["succeeded"] >= 1
        assert stats["queue_depth"] == 0
        assert "service.jobs.submitted" in stats["counters"]
        # A solve ran, so its backend histogram must exist and be JSON.
        assert "highs" in stats["solve_seconds"]
        assert stats["solve_seconds"]["highs"]["count"] >= 1

    def test_draining_service_answers_503(self, make_manager, state_doc):
        manager = make_manager()
        config = manager.config.replace(port=0)
        server = PlanningServer(config, manager)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url, timeout=10.0)
        try:
            manager.shutdown(drain=True, timeout=10.0)
            health = client.healthz()  # tolerated 503
            assert health["status"] == "draining"
            with pytest.raises(ServiceError) as err:
                client.submit("plan", plan_payload(state_doc))
            assert err.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
