"""The cluster tier end to end: dispatcher + replicas + shared store.

Real HTTP on ephemeral ports throughout; replicas are in-process (the
solver work still forks worker processes) so deaths and restarts are
cheap to orchestrate.
"""

from __future__ import annotations

import time

import pytest

from repro.service import ServiceClient, ServiceConfig, ServiceError
from repro.service.cluster import (
    ClusterHarness,
    Dispatcher,
    InProcessReplica,
    routing_key,
)
from repro.service.cluster.store import SqliteJobStore
from repro.service.jobs import JobKind

from .conftest import VERY_SLOW_HORIZON, plan_payload, sim_payload


@pytest.fixture
def cluster(tmp_path):
    with ClusterHarness(
        n_replicas=2,
        workers_per_replica=1,
        store_url=f"sqlite://{tmp_path}/jobs.db",
        job_timeout=60.0,
    ) as harness:
        yield harness


@pytest.fixture
def cluster_client(cluster):
    return ServiceClient(cluster.url, timeout=30.0)


def distinct_state(state_doc: dict, tag: str) -> dict:
    """A copy of ``state_doc`` with a different identity (new shard key)."""
    doc = dict(state_doc)
    doc["name"] = f"{state_doc.get('name', 'state')}-{tag}"
    return doc


class TestRoutingAndCache:
    def test_submit_through_dispatcher_completes(self, cluster_client, state_doc):
        job = cluster_client.submit("plan", plan_payload(state_doc))
        done = cluster_client.wait(job["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["result"]["summary"]["total_cost"] > 0
        assert done["replica"] in ("replica-0", "replica-1")

    def test_same_state_routes_to_same_replica(self, cluster_client, state_doc):
        # Different options → different fingerprints, same state → the
        # shard key (and therefore the replica) must match.
        first = cluster_client.wait(
            cluster_client.submit(
                "plan", plan_payload(state_doc, backend="highs")
            )["id"],
            timeout=60.0,
        )
        second = cluster_client.wait(
            cluster_client.submit(
                "plan", plan_payload(state_doc, backend="auto")
            )["id"],
            timeout=60.0,
        )
        assert first["replica"] == second["replica"]

    def test_routing_key_ignores_non_state_payload(self, state_doc):
        plan_key = routing_key(JobKind.PLAN, plan_payload(state_doc))
        refine_key = routing_key(
            JobKind.REFINE,
            {"state": state_doc, "directives": [], "session": "s"},
        )
        assert plan_key == refine_key  # plan + refine co-locate

    def test_shared_cache_hit_on_resubmission(self, cluster_client, state_doc):
        payload = plan_payload(state_doc)
        job = cluster_client.submit("plan", payload)
        cluster_client.wait(job["id"], timeout=60.0)  # wait() feeds the cache
        again = cluster_client.submit("plan", payload)
        assert again["state"] == "succeeded"
        assert again["via"] in ("dispatcher-cache", "cache")
        assert again["result"]["summary"]["total_cost"] > 0
        # The synthesized record is retrievable like any other.
        fetched = cluster_client.job(again["id"])
        assert fetched["state"] == "succeeded"


class TestReplicaFailure:
    def test_result_survives_owning_replica_death(
        self, cluster, cluster_client, state_doc
    ):
        job = cluster_client.submit("plan", plan_payload(state_doc))
        done = cluster_client.wait(job["id"], timeout=60.0)
        owner_index = int(done["replica"].rsplit("-", 1)[1])
        cluster.replicas[owner_index].stop()  # abrupt replica death
        fetched = cluster_client.job(job["id"])
        assert fetched["state"] == "succeeded"
        assert fetched["result"]["summary"]["total_cost"] > 0
        events = list(cluster_client.stream(job["id"]))
        assert events and events[-1].get("state") == "succeeded"

    def test_pending_job_completes_after_replica_restart(
        self, cluster, cluster_client, state_doc
    ):
        # Occupy the single worker of the shard replica with a very
        # slow simulation, then queue a plan behind it.
        sim = cluster_client.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        owner_id = sim["replica"]
        owner_index = int(owner_id.rsplit("-", 1)[1])
        plan_state = distinct_state(state_doc, "restartable")
        # Steer the plan to the same replica by submitting directly.
        replica_url = cluster.replicas[owner_index].url
        direct = ServiceClient(replica_url, timeout=30.0)
        plan = direct.submit("plan", plan_payload(plan_state))
        assert cluster_client.job(plan["id"])["state"] in ("queued", "running")

        replica = cluster.replicas[owner_index]
        host, port = replica.server.server_address[:2]
        replica.stop()  # dies with one running + one queued job

        restarted = InProcessReplica(
            replica.config.replace(port=port)
        ).start()
        cluster.replicas[owner_index] = restarted  # harness tears it down
        done = cluster_client.wait(plan["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["result"]["summary"]["total_cost"] > 0
        # The recovery left its trace in the event stream.
        events, _ = restarted.manager.events(plan["id"])
        assert any(e.get("recovered") for e in events)
        # Cross-replica cancellation: stop the re-adopted slow sim.
        assert cluster_client.cancel(sim["id"])["cancelled"] is True
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            if cluster_client.job(sim["id"])["state"] == "cancelled":
                break
            time.sleep(0.05)
        assert cluster_client.job(sim["id"])["state"] == "cancelled"

    def test_eviction_and_readd(self, cluster, cluster_client, state_doc):
        dispatcher = cluster.dispatcher
        victim = cluster.replicas[0]
        host, port = victim.server.server_address[:2]
        victim.stop()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(dispatcher.healthy_replicas()) == 1:
                break
            time.sleep(0.05)
        assert len(dispatcher.healthy_replicas()) == 1  # evicted

        # Every submission routes around the dead replica.
        for tag in ("a", "b", "c"):
            job = cluster_client.submit(
                "plan", plan_payload(distinct_state(state_doc, tag))
            )
            done = cluster_client.wait(job["id"], timeout=60.0)
            assert done["replica"] == "replica-1"

        restarted = InProcessReplica(victim.config.replace(port=port)).start()
        cluster.replicas[0] = restarted
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if len(dispatcher.healthy_replicas()) == 2:
                break
            time.sleep(0.05)
        assert len(dispatcher.healthy_replicas()) == 2  # re-added

    def test_no_replicas_is_503(self, tmp_path, state_doc):
        dispatcher = Dispatcher(
            ["http://127.0.0.1:9"],  # port 9: discard protocol, nothing there
            eviction_threshold=1,
        )
        dispatcher.probe(dispatcher.replicas[0])
        assert dispatcher.healthy_replicas() == []


class TestBackpressure:
    @pytest.fixture
    def tight_cluster(self, tmp_path):
        with ClusterHarness(
            n_replicas=2,
            workers_per_replica=1,
            store_url=f"sqlite://{tmp_path}/jobs.db",
            max_queue_depth=1,
            job_timeout=60.0,
        ) as harness:
            yield harness

    def test_cluster_wide_429_and_no_lost_jobs(
        self, tight_cluster, state_doc
    ):
        client = ServiceClient(tight_cluster.url, timeout=30.0)
        accepted: list[str] = []
        rejection: ServiceError | None = None
        # 2 replicas × (1 running + 1 queued) = 4 slots; the fifth (or
        # an earlier one, under scheduling jitter) must see 429.
        for n in range(8):
            payload = sim_payload(
                distinct_state(state_doc, f"sat{n}"), VERY_SLOW_HORIZON
            )
            try:
                accepted.append(client.submit("simulate", payload)["id"])
            except ServiceError as exc:
                rejection = exc
                break
        assert rejection is not None, "cluster never pushed back"
        assert rejection.status == 429
        assert rejection.retry_after is not None and rejection.retry_after >= 1.0
        # Nothing accepted was silently dropped: every 201'd job is
        # still tracked and cancellable.
        for job_id in accepted:
            record = client.job(job_id)
            assert record["state"] in ("queued", "running")
            assert client.cancel(job_id)["cancelled"] is True

    def test_429_spills_to_other_replica_first(
        self, tight_cluster, state_doc
    ):
        client = ServiceClient(tight_cluster.url, timeout=30.0)
        dispatcher = tight_cluster.dispatcher
        target_state = distinct_state(state_doc, "spill")
        key = routing_key(JobKind.PLAN, plan_payload(target_state))
        ranked = dispatcher._ranked(key)
        home_url = ranked[0].url
        home_index = next(
            i for i, r in enumerate(tight_cluster.replicas)
            if r.url == home_url
        )
        # Saturate only the home shard, straight at the replica.
        direct = ServiceClient(home_url, timeout=30.0)
        held = []
        for n in range(2):  # 1 running + 1 queued = full
            held.append(
                direct.submit(
                    "simulate",
                    sim_payload(
                        distinct_state(state_doc, f"hold{n}"),
                        VERY_SLOW_HORIZON,
                    ),
                )["id"]
            )
            # Let the first sim reach the worker so the second enters
            # the queue instead of tripping admission control itself.
            deadline = time.monotonic() + 10.0
            while (
                n == 0
                and time.monotonic() < deadline
                and direct.job(held[0])["state"] != "running"
            ):
                time.sleep(0.02)
        # The dispatcher must spill the plan to the *other* replica
        # rather than surface the home replica's 429.
        job = client.submit("plan", plan_payload(target_state))
        done = client.wait(job["id"], timeout=60.0)
        assert done["state"] == "succeeded"
        assert done["replica"] != f"replica-{home_index}"
        for job_id in held:
            direct.cancel(job_id)


class TestStoreBackedManagerUnit:
    """Manager↔store integration that needs no dispatcher."""

    def test_get_falls_back_to_store_for_foreign_jobs(self, tmp_path, state_doc):
        path = str(tmp_path / "jobs.db")
        store = SqliteJobStore(path)
        store.put(
            {
                "id": "foreign01",
                "kind": "plan",
                "state": "succeeded",
                "payload": {},
                "result": {"summary": {"total_cost": 1.0}},
            },
            claimed_by="someone-else",
        )
        config = ServiceConfig(
            workers=1, poll_interval=0.01, replica_id="local"
        )
        from repro.service import JobManager

        manager = JobManager(config, store=store)
        try:
            record = manager.get("foreign01")
            assert record.state.value == "succeeded"
            assert record.result == {"summary": {"total_cost": 1.0}}
        finally:
            store.close()
