"""Service-test fixtures: wire-format states and managed JobManagers.

The solver workload in every test is the shared ``tiny_state`` (solves
in milliseconds with HiGHS).  Tests that need a job to stay *running*
long enough to be killed, timed out or cancelled use a ``simulate`` job
whose horizon stretches the deterministic event loop — tunable duration
without touching the solver.
"""

from __future__ import annotations

import pytest

from repro.io.serialization import state_to_dict
from repro.service import JobManager, ServiceConfig

#: Simulation horizons (months) at mtbf 100h on tiny_state, calibrated
#: on the CI box: SLOW runs ~2s (killable mid-flight, finishes fast),
#: VERY_SLOW runs ~90s (never meant to finish inside a test).
SLOW_HORIZON = 20_000.0
VERY_SLOW_HORIZON = 600_000.0


def plan_payload(state_doc: dict, backend: str = "highs") -> dict:
    return {"state": state_doc, "options": {"backend": backend}}


def sim_payload(state_doc: dict, horizon: float, seed: int = 1) -> dict:
    return {
        "state": state_doc,
        "options": {"backend": "highs"},
        "simulation": {
            "horizon_months": horizon,
            "mtbf_hours": 100.0,
            "mttr_hours": 24.0,
            "seed": seed,
        },
    }


@pytest.fixture
def state_doc(tiny_state) -> dict:
    return state_to_dict(tiny_state)


@pytest.fixture
def make_manager():
    """Factory for started managers; everything is torn down hard."""
    managers: list[JobManager] = []

    def factory(**overrides) -> JobManager:
        settings = {
            "workers": 2,
            "job_timeout": 60.0,
            "retry_backoff": 0.05,
            "poll_interval": 0.01,
        }
        settings.update(overrides)
        manager = JobManager(ServiceConfig(**settings)).start()
        managers.append(manager)
        return manager

    yield factory
    for manager in managers:
        try:
            manager.shutdown(drain=False)
        except Exception:
            pass


@pytest.fixture
def manager(make_manager) -> JobManager:
    return make_manager()
