"""Integration tests for :class:`JobManager` against real worker processes.

These cover the acceptance points of the planning-service PR: a worker
SIGKILLed mid-solve is replaced and its job retried to the correct
result, a repeated identical plan job is served from the fingerprint
cache without re-solving, and shutdown drains with no orphan worker
processes.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import plan_consolidation
from repro.service import (
    JobState,
    PayloadError,
    ServiceUnavailableError,
    UnknownJobError,
    replay_journal,
)

from .conftest import SLOW_HORIZON, VERY_SLOW_HORIZON, plan_payload, sim_payload


def wait_for_state(manager, job_id, state, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = manager.get(job_id)
        if record.state is state:
            return record
        if record.done:
            raise AssertionError(
                f"job ended {record.state.value} while waiting for "
                f"{state.value}: {record.error}"
            )
        time.sleep(0.01)
    raise AssertionError(f"job never reached {state.value}")


def busy_worker(manager, job_id):
    with manager._lock:
        worker = manager._worker_running(job_id)
    assert worker is not None, f"no worker is running job {job_id}"
    return worker


class TestPlanJobs:
    def test_plan_job_matches_local_solve(self, manager, tiny_state, state_doc):
        record = manager.submit("plan", plan_payload(state_doc))
        done = manager.wait(record.id, timeout=60.0)
        assert done.state is JobState.SUCCEEDED
        assert done.via == "solve"
        assert done.attempts == 1
        local = plan_consolidation(tiny_state, backend="highs")
        assert done.result["summary"]["total_cost"] == pytest.approx(
            local.breakdown.total, rel=1e-6
        )
        assert done.result["summary"]["datacenters_used"] == local.datacenters_used

    def test_repeat_job_served_from_cache_without_resolving(
        self, manager, state_doc
    ):
        payload = plan_payload(state_doc)
        first = manager.wait(manager.submit("plan", payload).id, timeout=60.0)
        hits_before = manager.cache_hits
        second = manager.submit("plan", payload)
        # A cache hit completes synchronously inside submit(): no worker
        # attempt ever starts, which is the "without re-solving" proof.
        assert second.state is JobState.SUCCEEDED
        assert second.via == "cache"
        assert second.attempts == 0
        assert second.elapsed == 0.0
        assert second.result == first.result
        assert manager.cache_hits == hits_before + 1

    def test_different_payloads_do_not_share_cache(self, manager, state_doc):
        a = manager.wait(
            manager.submit("plan", plan_payload(state_doc, "highs")).id, timeout=60.0
        )
        b = manager.submit("plan", plan_payload(state_doc, "branch_bound"))
        assert b.via is None  # queued, not served from a's cache entry
        b = manager.wait(b.id, timeout=60.0)
        assert b.via == "solve"
        assert a.fingerprint != b.fingerprint


class TestJobHistoryEviction:
    def test_terminal_records_evicted_past_the_limit(
        self, make_manager, state_doc
    ):
        manager = make_manager(job_history_limit=2)
        payload = plan_payload(state_doc)
        first = manager.wait(manager.submit("plan", payload).id, timeout=60.0)
        second = manager.submit("plan", payload)  # cache hit, terminal at once
        third = manager.submit("plan", payload)
        with pytest.raises(UnknownJobError):
            manager.get(first.id)
        assert {r.id for r in manager.jobs()} == {second.id, third.id}

    def test_stale_heap_entry_of_an_evicted_job_is_harmless(
        self, make_manager, state_doc
    ):
        # A job cancelled while queued leaves its heap entry behind; if
        # the record is then evicted, dispatch must skip the entry, not
        # crash the supervisor on a missing id.
        manager = make_manager(workers=1, job_history_limit=1)
        blocker = manager.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        queued = manager.submit("plan", plan_payload(state_doc))
        assert manager.cancel(queued.id) is True
        follow_up = manager.submit("plan", plan_payload(state_doc, "branch_bound"))
        assert manager.cancel(blocker.id) is True  # evicts `queued`, frees pool
        done = manager.wait(follow_up.id, timeout=60.0)
        assert done.state is JobState.SUCCEEDED
        with pytest.raises(UnknownJobError):
            manager.get(queued.id)


class TestRefineSessions:
    def test_sequential_refines_reuse_a_warm_session(self, manager, state_doc):
        first = [{"kind": "retire_site", "datacenter": "cheap-far"}]
        payload = {
            "state": state_doc,
            "options": {"backend": "highs"},
            "session": "adm",
            "directives": first,
        }
        done1 = manager.wait(manager.submit("refine", payload).id, timeout=60.0)
        assert done1.result["warm"] is False
        assert done1.result["directives_applied"] == 1

        payload2 = dict(payload, directives=first + [
            {"kind": "cap_groups", "datacenter": "mid", "limit": 3},
        ])
        done2 = manager.wait(manager.submit("refine", payload2).id, timeout=60.0)
        assert done2.result["warm"] is True
        assert done2.result["directives_applied"] == 2
        assert done2.result["summary"]["total_cost"] >= done1.result["summary"][
            "total_cost"
        ] - 1e-6  # extra constraints can only cost

    def test_reused_session_id_with_changed_options_rebuilds(
        self, manager, state_doc
    ):
        # Same session id, same directives, different options: the warm
        # session answers a different model now, so it must be rebuilt
        # and the plan computed with the *new* options.
        directives = [{"kind": "retire_site", "datacenter": "cheap-far"}]
        payload = {
            "state": state_doc,
            "options": {"backend": "highs"},
            "session": "switch",
            "directives": directives,
        }
        done1 = manager.wait(manager.submit("refine", payload).id, timeout=60.0)
        assert done1.result["warm"] is False

        payload2 = dict(payload, options={"backend": "branch_bound"})
        done2 = manager.wait(manager.submit("refine", payload2).id, timeout=60.0)
        assert done2.result["warm"] is False  # rebuilt, not silently stale
        assert done2.result["summary"]["solver"] != done1.result["summary"]["solver"]

        # Unchanged resubmission is warm again (and still correct).
        done3 = manager.wait(manager.submit("refine", payload2).id, timeout=60.0)
        assert done3.result["warm"] is True
        assert done3.result["summary"]["total_cost"] == pytest.approx(
            done2.result["summary"]["total_cost"], rel=1e-6
        )

    def test_refine_jobs_are_not_cached(self, manager, state_doc):
        payload = {
            "state": state_doc,
            "options": {"backend": "highs"},
            "session": "nc",
            "directives": [],
        }
        a = manager.wait(manager.submit("refine", payload).id, timeout=60.0)
        b = manager.wait(manager.submit("refine", payload).id, timeout=60.0)
        assert a.fingerprint is None
        assert b.via == "solve"


class TestWorkerDeath:
    def test_sigkilled_worker_is_replaced_and_job_retried(
        self, make_manager, state_doc
    ):
        manager = make_manager()
        reference = manager.wait(
            manager.submit("simulate", sim_payload(state_doc, SLOW_HORIZON)).id,
            timeout=60.0,
        )
        record = manager.submit(
            "simulate", sim_payload(state_doc, SLOW_HORIZON, seed=2)
        )
        wait_for_state(manager, record.id, JobState.RUNNING)
        restarts_before = manager.stats()["workers"]["restarts"]
        os.kill(busy_worker(manager, record.id).pid, signal.SIGKILL)

        done = manager.wait(record.id, timeout=60.0)
        assert done.state is JobState.SUCCEEDED
        assert done.attempts == 2  # first attempt died, retry finished
        assert manager.stats()["workers"]["restarts"] == restarts_before + 1
        # The retried result is correct: deterministic fields match a
        # clean run of the same workload (different seed, same model).
        clean = manager.wait(
            manager.submit(
                "simulate", sim_payload(state_doc, SLOW_HORIZON, seed=2)
            ).id,
            timeout=60.0,
        )
        assert clean.via == "cache"  # identical payload → cached retry result
        assert done.result["plan_summary"]["total_cost"] == pytest.approx(
            reference.result["plan_summary"]["total_cost"]
        )

    def test_retries_exhausted_fails_the_job(self, make_manager, state_doc):
        manager = make_manager()
        record = manager.submit(
            "simulate",
            sim_payload(state_doc, VERY_SLOW_HORIZON),
            max_retries=0,
        )
        wait_for_state(manager, record.id, JobState.RUNNING)
        os.kill(busy_worker(manager, record.id).pid, signal.SIGKILL)
        done = manager.wait(record.id, timeout=30.0)
        assert done.state is JobState.FAILED
        assert "worker died" in done.error
        assert done.attempts == 1

    def test_worker_exception_fails_without_retry(self, make_manager, state_doc):
        # An in-worker exception is deterministic: retrying would fail
        # identically, so the job must fail on attempt 1.
        manager = make_manager()
        payload = plan_payload(state_doc)
        payload["options"] = {"backend": "highs", "solver_options": {"nope": 1}}
        record = manager.submit("plan", payload)
        done = manager.wait(record.id, timeout=60.0)
        assert done.state is JobState.FAILED
        assert done.attempts == 1
        assert done.error


class TestTimeoutsAndCancellation:
    def test_deadline_times_the_job_out_without_retry(
        self, make_manager, state_doc
    ):
        manager = make_manager()
        record = manager.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON), timeout=1.0
        )
        done = manager.wait(record.id, timeout=30.0)
        assert done.state is JobState.TIMEOUT
        assert done.attempts == 1
        assert "job timeout" in done.error

    def test_cancel_queued_job(self, make_manager, state_doc):
        manager = make_manager(workers=1)
        blocker = manager.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        queued = manager.submit("plan", plan_payload(state_doc))
        assert manager.cancel(queued.id) is True
        assert manager.get(queued.id).state is JobState.CANCELLED
        assert manager.cancel(blocker.id) is True  # unblock teardown

    def test_cancel_running_job_replaces_its_worker(
        self, make_manager, state_doc
    ):
        manager = make_manager()
        record = manager.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        wait_for_state(manager, record.id, JobState.RUNNING)
        restarts = manager.stats()["workers"]["restarts"]
        assert manager.cancel(record.id) is True
        assert manager.get(record.id).state is JobState.CANCELLED
        assert manager.stats()["workers"]["restarts"] == restarts + 1
        # The pool recovers: a follow-up job still solves.
        after = manager.wait(
            manager.submit("plan", plan_payload(state_doc)).id, timeout=60.0
        )
        assert after.state is JobState.SUCCEEDED

    def test_cancel_finished_job_returns_false(self, manager, state_doc):
        record = manager.wait(
            manager.submit("plan", plan_payload(state_doc)).id, timeout=60.0
        )
        assert manager.cancel(record.id) is False

    def test_unknown_job_raises(self, manager):
        with pytest.raises(UnknownJobError):
            manager.get("no-such-job")
        with pytest.raises(UnknownJobError):
            manager.cancel("no-such-job")


class TestShutdown:
    def test_drain_finishes_jobs_and_leaves_no_orphans(
        self, make_manager, state_doc
    ):
        manager = make_manager()
        jobs = [
            manager.submit("plan", plan_payload(state_doc)),
            manager.submit("plan", plan_payload(state_doc, "branch_bound")),
        ]
        processes = [w.process for w in manager._pool.workers]
        assert manager.shutdown(drain=True, timeout=60.0) is True
        for record in jobs:
            assert manager.get(record.id).state is JobState.SUCCEEDED
        for process in processes:
            assert not process.is_alive()
            assert process.exitcode is not None  # reaped, not orphaned

    def test_draining_manager_rejects_new_jobs(self, make_manager, state_doc):
        manager = make_manager()
        manager.shutdown(drain=True, timeout=10.0)
        with pytest.raises(ServiceUnavailableError):
            manager.submit("plan", plan_payload(state_doc))

    def test_journal_records_every_terminal_state(
        self, make_manager, state_doc, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        manager = make_manager(workers=1, journal_path=str(journal))
        ok = manager.wait(
            manager.submit("plan", plan_payload(state_doc)).id, timeout=60.0
        )
        dropped = manager.submit(
            "simulate", sim_payload(state_doc, VERY_SLOW_HORIZON)
        )
        manager.cancel(dropped.id)
        manager.shutdown(drain=True, timeout=30.0)
        final = replay_journal(str(journal))
        assert final[ok.id] == "succeeded"
        assert final[dropped.id] == "cancelled"


class TestSubmitValidation:
    def test_unknown_kind(self, manager, state_doc):
        with pytest.raises(ValueError):
            manager.submit("transmogrify", plan_payload(state_doc))

    def test_missing_state(self, manager):
        with pytest.raises(PayloadError, match="state"):
            manager.submit("plan", {"options": {}})

    def test_unknown_option_rejected_at_submit_time(self, manager, state_doc):
        with pytest.raises(PayloadError, match="options"):
            manager.submit(
                "plan", {"state": state_doc, "options": {"lp_export_path": "/x"}}
            )

    def test_bad_directive_rejected_at_submit_time(self, manager, state_doc):
        with pytest.raises(PayloadError, match="directive"):
            manager.submit(
                "refine",
                {
                    "state": state_doc,
                    "session": "s",
                    "directives": [{"kind": "explode"}],
                },
            )

    @pytest.mark.parametrize("timeout", ["10", True, 0, -1.0, float("nan"), [5]])
    def test_non_numeric_or_non_positive_timeout_rejected(
        self, manager, state_doc, timeout
    ):
        # A bad timeout accepted here would blow up later on the
        # supervisor thread and wedge the job RUNNING forever.
        with pytest.raises(PayloadError, match="timeout"):
            manager.submit("plan", plan_payload(state_doc), timeout=timeout)

    @pytest.mark.parametrize("max_retries", ["2", True, 1.5, -1])
    def test_non_integer_or_negative_max_retries_rejected(
        self, manager, state_doc, max_retries
    ):
        with pytest.raises(PayloadError, match="max_retries"):
            manager.submit(
                "plan", plan_payload(state_doc), max_retries=max_retries
            )

    def test_integral_timeout_is_accepted(self, manager, state_doc):
        record = manager.submit("plan", plan_payload(state_doc), timeout=30)
        assert record.timeout == 30.0
        assert manager.wait(record.id, timeout=60.0).state is JobState.SUCCEEDED


class TestJournalReplay:
    """Restart recovery from the JSONL journal (cluster-less mode)."""

    @staticmethod
    def _entry(job_id: str, state: str, **extra) -> dict:
        return {
            "ts": time.time(),
            "event": "finished" if state in (
                "succeeded", "failed", "cancelled", "timeout"
            ) else state,
            "job": job_id,
            "kind": "plan",
            "state": state,
            "attempts": 1,
            "error": None,
            "via": "solve",
            **extra,
        }

    @staticmethod
    def _write_journal(path, entries) -> None:
        import json

        with open(path, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry) + "\n")

    def test_terminal_jobs_resurrect_with_final_state(
        self, make_manager, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        self._write_journal(
            journal,
            [
                self._entry("done-1", "queued"),
                self._entry("done-1", "running"),
                self._entry("done-1", "succeeded"),
                self._entry("dead-1", "failed", error="boom"),
            ],
        )
        manager = make_manager(journal_path=str(journal))
        assert manager.get("done-1").state is JobState.SUCCEEDED
        record = manager.get("dead-1")
        assert record.state is JobState.FAILED
        assert record.error == "boom"

    def test_non_terminal_jobs_do_not_resurrect(self, make_manager, tmp_path):
        # A journal knows nothing about payloads, so a queued/running
        # entry cannot be re-dispatched from it; it must simply vanish.
        journal = tmp_path / "journal.jsonl"
        self._write_journal(
            journal,
            [
                self._entry("stuck-1", "queued"),
                self._entry("stuck-2", "running"),
            ],
        )
        manager = make_manager(journal_path=str(journal))
        for job_id in ("stuck-1", "stuck-2"):
            with pytest.raises(UnknownJobError):
                manager.get(job_id)

    def test_replay_respects_job_history_limit(self, make_manager, tmp_path):
        # Regression: a journal longer than job_history_limit used to
        # resurrect every terminal job it mentioned, bringing back
        # records the previous incarnation had already evicted (and
        # growing without bound across restarts).  Only the *newest*
        # ``limit`` terminal jobs may come back.
        journal = tmp_path / "journal.jsonl"
        self._write_journal(
            journal,
            [self._entry(f"job-{n}", "succeeded") for n in range(6)],
        )
        manager = make_manager(journal_path=str(journal), job_history_limit=2)
        for n in range(4):
            with pytest.raises(UnknownJobError):
                manager.get(f"job-{n}")
        assert manager.get("job-4").state is JobState.SUCCEEDED
        assert manager.get("job-5").state is JobState.SUCCEEDED

    def test_replay_keeps_the_latest_entry_per_job(
        self, make_manager, tmp_path
    ):
        # A retried job journals failed-then-succeeded; recency (for
        # the history limit) and state must follow the *last* entry.
        journal = tmp_path / "journal.jsonl"
        self._write_journal(
            journal,
            [
                self._entry("flaky", "failed", error="first try"),
                self._entry("other", "succeeded"),
                self._entry("flaky", "succeeded", attempts=2),
            ],
        )
        manager = make_manager(journal_path=str(journal), job_history_limit=1)
        with pytest.raises(UnknownJobError):
            manager.get("other")  # older than flaky's final entry
        record = manager.get("flaky")
        assert record.state is JobState.SUCCEEDED
        assert record.attempts == 2

    def test_resurrected_jobs_evict_before_new_work(
        self, make_manager, state_doc, tmp_path
    ):
        journal = tmp_path / "journal.jsonl"
        self._write_journal(journal, [self._entry("old-1", "succeeded")])
        manager = make_manager(journal_path=str(journal), job_history_limit=1)
        fresh = manager.wait(
            manager.submit("plan", plan_payload(state_doc)).id, timeout=60.0
        )
        assert fresh.state is JobState.SUCCEEDED
        with pytest.raises(UnknownJobError):
            manager.get("old-1")
