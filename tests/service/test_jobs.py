"""Unit tests for the job model and its lifecycle state machine."""

from __future__ import annotations

import pytest

from repro.service import JobKind, JobRecord, JobState, TERMINAL_STATES
from repro.service.jobs import (
    VALID_TRANSITIONS,
    InvalidTransitionError,
    new_job_id,
)


def make_record(**kwargs) -> JobRecord:
    return JobRecord(kind=JobKind.PLAN, payload={}, **kwargs)


class TestLifecycle:
    def test_happy_path(self):
        record = make_record()
        assert record.state is JobState.QUEUED
        record.transition(JobState.RUNNING)
        assert record.started_at is not None
        record.transition(JobState.SUCCEEDED)
        assert record.done
        assert record.finished_at is not None

    def test_retry_loop(self):
        record = make_record()
        record.transition(JobState.RUNNING)
        record.transition(JobState.RETRYING)
        record.transition(JobState.QUEUED)
        record.transition(JobState.RUNNING)
        record.transition(JobState.SUCCEEDED)
        assert record.done

    @pytest.mark.parametrize("terminal", sorted(TERMINAL_STATES))
    def test_terminal_states_are_final(self, terminal):
        assert VALID_TRANSITIONS[terminal] == frozenset()

    def test_illegal_edge_raises(self):
        record = make_record()
        with pytest.raises(InvalidTransitionError, match="queued → timeout"):
            record.transition(JobState.TIMEOUT)

    def test_no_resurrection(self):
        record = make_record()
        record.transition(JobState.CANCELLED)
        with pytest.raises(InvalidTransitionError):
            record.transition(JobState.QUEUED)

    def test_cancel_reachable_from_every_live_state(self):
        for live in (JobState.QUEUED, JobState.RUNNING, JobState.RETRYING):
            assert JobState.CANCELLED in VALID_TRANSITIONS[live]

    def test_timeout_only_from_running(self):
        sources = [
            state
            for state, targets in VALID_TRANSITIONS.items()
            if JobState.TIMEOUT in targets
        ]
        assert sources == [JobState.RUNNING]


class TestRecord:
    def test_ids_are_unique(self):
        ids = {new_job_id() for _ in range(200)}
        assert len(ids) == 200

    def test_to_dict_is_json_safe_and_optionally_resultless(self):
        import json

        record = make_record()
        record.result = {"summary": {"total_cost": 1.0}}
        full = record.to_dict()
        assert full["kind"] == "plan"
        assert full["state"] == "queued"
        assert full["result"] == {"summary": {"total_cost": 1.0}}
        summary = record.to_dict(include_result=False)
        assert "result" not in summary
        json.dumps(full)  # must not raise

    def test_started_at_survives_retry(self):
        record = make_record()
        record.transition(JobState.RUNNING)
        first = record.started_at
        record.transition(JobState.RETRYING)
        record.transition(JobState.QUEUED)
        record.transition(JobState.RUNNING)
        assert record.started_at == first
