"""Job event streams: telemetry hooks, HTTP endpoint, client, CLI."""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.request
from contextlib import redirect_stdout

import pytest

from repro.cli import main as cli_main
from repro.service import (
    JobManager,
    PlanningServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.telemetry import emit_progress, progress_enabled, set_progress_sink

from .conftest import SLOW_HORIZON, plan_payload, sim_payload


@pytest.fixture
def service(make_manager):
    manager = make_manager()
    config = manager.config.replace(port=0)
    server = PlanningServer(config, manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield manager, ServiceClient(server.url, timeout=15.0)
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestProgressSink:
    def teardown_method(self):
        set_progress_sink(None)

    def test_disabled_by_default(self):
        assert progress_enabled() is False
        emit_progress({"phase": "noop"})  # must not raise

    def test_sink_receives_events(self):
        seen = []
        set_progress_sink(seen.append)
        emit_progress({"phase": "x", "n": 1})
        assert seen == [{"phase": "x", "n": 1}]

    def test_throttle_drops_rapid_ticks(self):
        seen = []
        set_progress_sink(seen.append, min_interval=10.0)
        emit_progress({"n": 1})
        emit_progress({"n": 2})  # inside the window: dropped
        assert [e["n"] for e in seen] == [1]

    def test_non_finite_floats_become_none(self):
        seen = []
        set_progress_sink(seen.append)
        emit_progress({"bound": float("inf"), "gap": float("nan"), "ok": 1.5})
        assert seen == [{"bound": None, "gap": None, "ok": 1.5}]

    def test_sink_exceptions_are_swallowed(self):
        def explode(event):
            raise RuntimeError("sink died")

        set_progress_sink(explode)
        emit_progress({"n": 1})  # must not raise


class TestManagerEvents:
    def test_lifecycle_events_in_order(self, make_manager, state_doc):
        manager = make_manager()
        record = manager.submit("plan", plan_payload(state_doc))
        manager.wait(record.id, timeout=30.0)
        events, done = manager.events(record.id)
        assert done is True
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states == ["queued", "running", "succeeded"]
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_after_filters_delivered_events(self, make_manager, state_doc):
        manager = make_manager()
        record = manager.submit("plan", plan_payload(state_doc))
        manager.wait(record.id, timeout=30.0)
        full, _ = manager.events(record.id)
        tail, done = manager.events(record.id, after=full[0]["seq"])
        assert done is True
        assert [e["seq"] for e in tail] == [e["seq"] for e in full[1:]]

    def test_branch_bound_jobs_emit_progress_ticks(
        self, make_manager, state_doc
    ):
        manager = make_manager()
        record = manager.submit(
            "plan", plan_payload(state_doc, backend="branch_bound")
        )
        manager.wait(record.id, timeout=30.0)
        events, _ = manager.events(record.id)
        ticks = [e for e in events if e["type"] == "progress"]
        assert ticks, "no solver progress reached the event stream"
        assert ticks[0]["phase"] == "branch_bound"
        assert ticks[0]["nodes_explored"] >= 1

    def test_cancelled_job_stream_terminates(self, make_manager, state_doc):
        manager = make_manager()
        record = manager.submit(
            "simulate", sim_payload(state_doc, SLOW_HORIZON)
        )
        manager.cancel(record.id)
        events, done = manager.events(record.id)
        assert done is True
        assert events[-1]["state"] == "cancelled"


class TestHttpStream:
    def test_stream_delivers_and_closes(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        events = list(client.stream(job["id"]))
        states = [e["state"] for e in events if e["type"] == "state"]
        assert states == ["queued", "running", "succeeded"]

    def test_stream_resume_with_after(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        client.wait(job["id"], timeout=30.0)
        full = list(client.stream(job["id"]))
        resumed = list(client.stream(job["id"], after=full[1]["seq"]))
        assert [e["seq"] for e in resumed] == [e["seq"] for e in full[2:]]

    def test_stream_unknown_job_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream("no-such-job"))
        assert excinfo.value.status == 404

    def test_stream_is_chunked_ndjson(self, service, state_doc):
        manager, client = service
        job = client.submit("plan", plan_payload(state_doc))
        client.wait(job["id"], timeout=30.0)
        response = urllib.request.urlopen(
            f"{client.base_url}/jobs/{job['id']}/events", timeout=10.0
        )
        assert response.headers["Content-Type"] == "application/x-ndjson"
        assert response.headers.get("Transfer-Encoding") == "chunked"
        lines = [line for line in response.read().split(b"\n") if line]
        parsed = [json.loads(line) for line in lines]
        assert parsed[-1]["state"] == "succeeded"

    def test_bad_after_parameter_is_400(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream(job["id"], after="bogus"))
        assert excinfo.value.status == 400

    def test_live_stream_sees_events_before_completion(
        self, service, state_doc
    ):
        _, client = service
        job = client.submit("simulate", sim_payload(state_doc, SLOW_HORIZON))
        stream = client.stream(job["id"])
        first = next(stream)
        assert first["type"] == "state" and first["state"] == "queued"
        # The job is still running; the stream already delivered.
        assert client.job(job["id"])["state"] in ("queued", "running")
        client.cancel(job["id"])
        remaining = list(stream)
        assert remaining[-1]["state"] == "cancelled"


class TestWatchCli:
    def test_watch_prints_events_and_exit_code(self, service, state_doc):
        _, client = service
        job = client.submit("plan", plan_payload(state_doc))
        out = io.StringIO()
        with redirect_stdout(out):
            code = cli_main(
                ["watch", job["id"], "--url", client.base_url]
            )
        assert code == 0
        text = out.getvalue()
        assert "queued" in text and "succeeded" in text

    def test_watch_failed_job_exits_nonzero(self, service, state_doc):
        _, client = service
        bad = dict(plan_payload(state_doc))
        bad["options"] = {"backend": "no-such-backend"}
        job = client.submit("plan", bad)
        client.wait(job["id"], timeout=30.0, raise_on_failure=False)
        out = io.StringIO()
        with redirect_stdout(out):
            code = cli_main(["watch", job["id"], "--url", client.base_url])
        assert code == 1
        assert "failed" in out.getvalue()
