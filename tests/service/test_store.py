"""The persistent job stores (:mod:`repro.service.cluster.store`).

The SQLite store is exercised the way the cluster uses it: *two
separate connections to one database file*, standing in for two
replica processes.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.cluster.store import (
    MemoryJobStore,
    SqliteJobStore,
    open_store,
)


def job_record(job_id: str, state: str = "queued", **extra) -> dict:
    record = {
        "id": job_id,
        "kind": "plan",
        "state": state,
        "payload": {"state": {"name": "t"}, "options": {}},
        "attempts": 0,
        "result": None,
        "error": None,
    }
    record.update(extra)
    return record


@pytest.fixture(params=["memory", "sqlite"])
def store(request, tmp_path):
    if request.param == "memory":
        with MemoryJobStore() as store:
            yield store
    else:
        with SqliteJobStore(str(tmp_path / "jobs.db")) as store:
            yield store


class TestStoreContract:
    def test_put_get_roundtrip(self, store):
        store.put(job_record("j1"), claimed_by="r1")
        data = store.get("j1")
        assert data["id"] == "j1"
        assert data["payload"]["state"] == {"name": "t"}
        assert store.get("missing") is None

    def test_update_replaces_state_and_body(self, store):
        store.put(job_record("j1"))
        store.update("j1", job_record("j1", state="succeeded", result={"ok": 1}))
        data = store.get("j1")
        assert data["state"] == "succeeded"
        assert data["result"] == {"ok": 1}

    def test_list_filters_by_owner_and_state(self, store):
        store.put(job_record("a"), claimed_by="r1")
        store.put(job_record("b", state="succeeded"), claimed_by="r1")
        store.put(job_record("c"), claimed_by="r2")
        mine = store.list(claimed_by="r1", states=("queued", "running"))
        assert [r["id"] for r in mine] == ["a"]
        assert {r["id"] for r in store.list()} == {"a", "b", "c"}

    def test_claim_is_exactly_once(self, store):
        store.put(job_record("j1"))  # unclaimed
        assert store.claim("j1", "r1") is True
        assert store.claim("j1", "r2") is False  # loser sees False
        store.release("j1")
        assert store.claim("j1", "r2") is True

    def test_claim_unknown_job_is_false(self, store):
        assert store.claim("ghost", "r1") is False

    def test_cancel_flag_roundtrip(self, store):
        store.put(job_record("j1"))
        assert store.cancel_requested("j1") is False
        assert store.request_cancel("j1") is True
        assert store.cancel_requested("j1") is True
        assert store.request_cancel("ghost") is False

    def test_events_are_dense_and_resumable(self, store):
        store.put(job_record("j1"))
        for n in range(5):
            seq = store.append_event("j1", {"type": "progress", "n": n})
            assert seq == n + 1
        assert [seq for seq, _ in store.events("j1")] == [1, 2, 3, 4, 5]
        tail = store.events("j1", after=3)
        assert [(seq, event["n"]) for seq, event in tail] == [(4, 3), (5, 4)]


class TestTwoReplicaSqlite:
    """Two store handles on one file — the multi-process access pattern."""

    @pytest.fixture
    def pair(self, tmp_path):
        path = str(tmp_path / "shared.db")
        a, b = SqliteJobStore(path), SqliteJobStore(path)
        yield a, b
        a.close()
        b.close()

    def test_claim_races_have_one_winner(self, pair):
        a, b = pair
        winners = []
        for round_id in range(10):
            job_id = f"job-{round_id}"
            a.put(job_record(job_id))
            barrier = threading.Barrier(2)
            results: dict[str, bool] = {}

            def claim(store, owner):
                barrier.wait()
                results[owner] = store.claim(job_id, owner)

            threads = [
                threading.Thread(target=claim, args=(a, "r1")),
                threading.Thread(target=claim, args=(b, "r2")),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results.values()) == [False, True], results
            winners.append(results["r1"])
        # Sanity: the race genuinely ran (no deadlock, all rounds done).
        assert len(winners) == 10

    def test_completed_result_visible_from_other_replica(self, pair):
        a, b = pair
        a.put(job_record("j1"), claimed_by="r1")
        a.update(
            "j1",
            job_record("j1", state="succeeded", result={"objective": 42.0}),
        )
        a.append_event("j1", {"type": "state", "state": "succeeded"})
        seen = b.get("j1")
        assert seen["state"] == "succeeded"
        assert seen["result"] == {"objective": 42.0}
        assert [e["state"] for _, e in b.events("j1")] == ["succeeded"]

    def test_cross_replica_cancellation_flag(self, pair):
        a, b = pair
        a.put(job_record("j1"), claimed_by="r1")
        assert b.request_cancel("j1") is True  # requested via the *other* one
        assert a.cancel_requested("j1") is True  # owner polls and sees it

    def test_event_seq_is_atomic_across_connections(self, pair):
        a, b = pair
        a.put(job_record("j1"))
        seqs = []
        lock = threading.Lock()

        def append(store, count):
            for n in range(count):
                seq = store.append_event("j1", {"n": n})
                with lock:
                    seqs.append(seq)

        threads = [
            threading.Thread(target=append, args=(a, 20)),
            threading.Thread(target=append, args=(b, 20)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(seqs) == list(range(1, 41))  # dense, no duplicates


class TestOpenStore:
    def test_none_and_memory_urls(self):
        assert isinstance(open_store(None), MemoryJobStore)
        assert isinstance(open_store("memory://"), MemoryJobStore)

    def test_sqlite_url_and_bare_path(self, tmp_path):
        with open_store(f"sqlite://{tmp_path}/a.db") as store:
            assert isinstance(store, SqliteJobStore)
        with open_store(str(tmp_path / "b.db")) as store:
            assert isinstance(store, SqliteJobStore)

    def test_bad_urls_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            open_store("sqlite://")
        with pytest.raises(ValueError):
            open_store("http://example.com/store")
        with pytest.raises(ValueError):
            open_store(str(tmp_path / "missing-dir" / "x.db"))
