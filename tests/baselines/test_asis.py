"""As-is evaluation and the bolted-on single-backup-site DR."""

from __future__ import annotations

import pytest

from repro.baselines import ASIS_BACKUP_SITE, asis_plan, asis_with_dr_plan
from repro.baselines.asis import _median_backup_site


class TestAsIs:
    def test_uses_current_estate(self, asis_capable_state):
        plan = asis_plan(asis_capable_state)
        assert set(plan.datacenters_used) == {"old-a", "old-b"}
        assert plan.solver == "as-is"
        assert not plan.has_dr

    def test_cost_matches_current_prices(self, asis_capable_state):
        plan = asis_plan(asis_capable_state)
        state = asis_capable_state
        expected_fixed = sum(dc.fixed_monthly_cost for dc in state.current_datacenters)
        assert plan.breakdown.fixed == pytest.approx(expected_fixed)
        assert plan.breakdown.space > 0

    def test_missing_current_placement_rejected(self, asis_capable_state):
        asis_capable_state.app_groups[0].current_datacenter = None
        with pytest.raises(ValueError, match="no current data center"):
            asis_plan(asis_capable_state)


class TestAsIsWithDR:
    def test_single_backup_site(self, asis_capable_state):
        plan = asis_with_dr_plan(asis_capable_state)
        assert plan.has_dr
        assert set(plan.backup_servers) == {ASIS_BACKUP_SITE}
        assert set(plan.secondary.values()) == {ASIS_BACKUP_SITE}

    def test_pool_is_worst_single_site_load(self, asis_capable_state):
        state = asis_capable_state
        plan = asis_with_dr_plan(state)
        load = {}
        for g in state.app_groups:
            load[g.current_datacenter] = load.get(g.current_datacenter, 0) + g.servers
        assert plan.backup_servers[ASIS_BACKUP_SITE] == max(load.values())

    def test_dr_cost_added(self, asis_capable_state):
        base = asis_plan(asis_capable_state)
        with_dr = asis_with_dr_plan(asis_capable_state)
        assert with_dr.total_cost > base.total_cost
        assert with_dr.breakdown.dr_purchase > 0

    def test_no_current_estate_rejected(self, tiny_state):
        tiny_state.app_groups[0].current_datacenter = "ghost"
        with pytest.raises(ValueError):
            asis_with_dr_plan(tiny_state)


class TestMedianBackupSite:
    def test_prices_are_medians(self, asis_capable_state):
        state = asis_capable_state
        site = _median_backup_site(state, capacity=50)
        powers = sorted(dc.power_cost_per_kw for dc in state.current_datacenters)
        assert site.power_cost_per_kw == pytest.approx(
            (powers[0] + powers[-1]) / 2 if len(powers) == 2 else powers[len(powers) // 2]
        )
        assert site.capacity == 50
        assert site.name == ASIS_BACKUP_SITE

    def test_latency_table_covers_user_locations(self, asis_capable_state):
        site = _median_backup_site(asis_capable_state, capacity=10)
        assert set(site.latency_to_users) == {"east", "west"}

    def test_empty_estate_rejected(self, tiny_state):
        with pytest.raises(ValueError, match="no current data centers"):
            _median_backup_site(tiny_state, capacity=1)
