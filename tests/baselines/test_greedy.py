"""Greedy baseline."""

from __future__ import annotations

import pytest

from repro.baselines import GreedyPlanError, greedy_plan
from repro.core import ApplicationGroup, AsIsState, plan_consolidation

from ..conftest import make_datacenter


class TestGreedy:
    def test_produces_valid_plan(self, tiny_state):
        plan = greedy_plan(tiny_state)
        from repro.core import validate_plan

        validate_plan(tiny_state, plan)
        assert plan.solver == "greedy"

    def test_capacity_respected(self, user_locations):
        targets = [make_datacenter("d0", capacity=60), make_datacenter("d1", capacity=60)]
        groups = [ApplicationGroup(f"g{i}", 25, users={"east": 1.0}) for i in range(4)]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        plan = greedy_plan(state)
        load = {}
        for g in state.app_groups:
            load[plan.placement[g.name]] = load.get(plan.placement[g.name], 0) + 25
        assert all(v <= 60 for v in load.values())

    def test_sees_latency(self, tiny_state):
        # Unlike manual, greedy prices the latency penalty per placement.
        plan = greedy_plan(tiny_state)
        assert plan.latency_violations == 0

    def test_never_better_than_lp(self, tiny_state):
        greedy = greedy_plan(tiny_state)
        lp = plan_consolidation(tiny_state, backend="highs")
        assert lp.total_cost <= greedy.total_cost + 1e-6

    def test_raises_when_stuck(self, user_locations):
        targets = [make_datacenter("d0", capacity=12), make_datacenter("d1", capacity=12)]
        groups = [ApplicationGroup(f"g{i}", 8, users={"east": 1.0}) for i in range(3)]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(GreedyPlanError, match="fits nowhere"):
            greedy_plan(state)

    def test_respects_forbidden_sites(self, tiny_state):
        tiny_state.app_groups[0].forbidden_datacenters = frozenset({"mid", "cheap-far"})
        plan = greedy_plan(tiny_state)
        assert plan.placement["erp"] == "east-dc"

    def test_vpn_wan_model(self, tiny_state):
        plan = greedy_plan(tiny_state, wan_model="vpn")
        assert plan.breakdown.wan > 0


class TestGreedyDR:
    def test_secondary_differs_from_primary(self, tiny_state):
        plan = greedy_plan(tiny_state, enable_dr=True)
        assert plan.has_dr
        for g in plan.placement:
            assert plan.placement[g] != plan.secondary[g]

    def test_pools_sized_by_shared_rule(self, tiny_state):
        from repro.core import shared_backup_requirements

        plan = greedy_plan(tiny_state, enable_dr=True)
        expected = shared_backup_requirements(
            tiny_state.app_groups, plan.placement, plan.secondary
        )
        assert plan.backup_servers == expected

    def test_capacity_includes_pools(self, tiny_state):
        plan = greedy_plan(tiny_state, enable_dr=True)
        load = {}
        for g in tiny_state.app_groups:
            load[plan.placement[g.name]] = (
                load.get(plan.placement[g.name], 0) + g.servers
            )
        for name, pool in plan.backup_servers.items():
            load[name] = load.get(name, 0) + pool
        for name, used in load.items():
            assert used <= tiny_state.target(name).capacity

    def test_dr_never_better_than_lp_dr(self, tiny_state):
        greedy = greedy_plan(tiny_state, enable_dr=True)
        lp = plan_consolidation(tiny_state, enable_dr=True, backend="highs")
        assert lp.total_cost <= greedy.total_cost + 1e-6

    def test_raises_when_no_dr_site(self, user_locations):
        # Two sites exactly fitting primaries: no room for any pool.
        targets = [make_datacenter("d0", capacity=25), make_datacenter("d1", capacity=25)]
        groups = [ApplicationGroup("a", 25, users={"east": 1.0}),
                  ApplicationGroup("b", 25, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(GreedyPlanError, match="DR site"):
            greedy_plan(state, enable_dr=True)
