"""Manual consolidation heuristic."""

from __future__ import annotations

import pytest

from repro.baselines import ManualPlanError, manual_plan
from repro.baselines.manual import _choose_sites
from repro.core import ApplicationGroup, AsIsState

from ..conftest import make_datacenter


class TestSiteChoice:
    def test_ranks_by_estimated_per_server_cost(self, tiny_state):
        sites = _choose_sites(tiny_state, 2)
        assert [s.name for s in sites] == ["cheap-far", "mid"]

    def test_k_bounds(self, tiny_state):
        assert len(_choose_sites(tiny_state, 99)) == 3


class TestManualPlan:
    def test_consolidates_into_k_sites(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=2)
        assert len(set(plan.placement.values())) <= 2
        assert plan.solver == "manual"

    def test_k_one(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=1)
        assert len(set(plan.placement.values())) == 1

    def test_invalid_k(self, asis_capable_state):
        with pytest.raises(ValueError):
            manual_plan(asis_capable_state, k=0)

    def test_ignores_latency(self, asis_capable_state):
        # Manual picks cheap-far (cheapest) which is 40 ms from everyone:
        # the latency-sensitive groups land there anyway.
        plan = manual_plan(asis_capable_state, k=1)
        assert plan.latency_violations > 0

    def test_spills_when_site_full(self, user_locations):
        targets = [
            make_datacenter("small-cheap", capacity=50, space_base=50.0),
            make_datacenter("big-costly", capacity=500, space_base=200.0),
        ]
        groups = [ApplicationGroup(f"g{i}", 30, users={"east": 1.0}) for i in range(4)]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        plan = manual_plan(state, k=1)
        # One group fits the chosen cheap site; the rest must spill.
        assert "big-costly" in set(plan.placement.values())

    def test_capacity_never_violated(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=2)
        load = {}
        for g in asis_capable_state.app_groups:
            dc = plan.placement[g.name]
            load[dc] = load.get(dc, 0) + g.servers
        for name, used in load.items():
            assert used <= asis_capable_state.target(name).capacity

    def test_respects_placement_constraints(self, asis_capable_state):
        asis_capable_state.app_groups[0].forbidden_datacenters = frozenset(
            {"cheap-far", "mid"}
        )
        plan = manual_plan(asis_capable_state, k=2)
        assert plan.placement["erp"] == "east-dc"

    def test_raises_when_truly_stuck(self, user_locations):
        targets = [make_datacenter("d0", capacity=10), make_datacenter("d1", capacity=10)]
        groups = [ApplicationGroup(f"g{i}", 8, users={"east": 1.0}) for i in range(3)]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(ManualPlanError):
            manual_plan(state, k=1)


class TestManualDR:
    def test_backups_mirrored(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=1, enable_dr=True)
        assert plan.has_dr
        # All groups share one primary, so they share one backup site.
        assert len(set(plan.secondary.values())) == 1
        primary = next(iter(plan.placement.values()))
        backup = next(iter(plan.secondary.values()))
        assert primary != backup

    def test_backup_site_is_nearest_unused(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=1, enable_dr=True)
        used = set(plan.placement.values())
        backups = set(plan.secondary.values())
        assert not (used & backups)

    def test_dr_purchase_counted(self, asis_capable_state):
        plan = manual_plan(asis_capable_state, k=1, enable_dr=True)
        assert plan.breakdown.dr_purchase > 0

    def test_needs_enough_sites(self, user_locations):
        targets = [make_datacenter("only", capacity=500)]
        groups = [ApplicationGroup("a", 10, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(ManualPlanError, match="backup"):
            manual_plan(state, k=1, enable_dr=True)
