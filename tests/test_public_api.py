"""Public-API snapshot: fail loudly when the facade changes silently.

If a test here fails, the public surface changed.  That is sometimes
intended — then update the snapshot below *and* the docs
(``docs/architecture.md``, section "Incremental re-solve & the public
API") in the same commit.
"""

from __future__ import annotations

import dataclasses

import repro
from repro.lp import SolveOptions

PUBLIC_API = {
    "ApplicationGroup",
    "AsIsState",
    "ControllerConfig",
    "CostParameters",
    "DataCenter",
    "DirectiveConflictError",
    "ETransformPlanner",
    "IterativeSession",
    "JobManager",
    "LatencyPenaltyFunction",
    "METHODS",
    "MigrationConfig",
    "OnlineController",
    "PlanResult",
    "PlannerOptions",
    "ReplayConfig",
    "ServiceClient",
    "ServiceConfig",
    "SimulatorConfig",
    "SolveCache",
    "SolveOptions",
    "StepCostFunction",
    "TransformationPlan",
    "UserLocation",
    "__version__",
    "asis_plan",
    "asis_with_dr_plan",
    "evaluate_plan",
    "greedy_plan",
    "improve_plan",
    "latency_line_scenario",
    "load_enterprise1",
    "load_federal",
    "load_florida",
    "manual_plan",
    "plan_consolidation",
    "plan_migration",
    "run_replay",
    "run_robustness",
    "run_sensitivity",
    "simulate_plan",
    "solve",
    "split_oversized_groups",
    "tradeoff_line_scenario",
}

SOLVE_OPTION_FIELDS = {
    "time_limit",
    "mip_rel_gap",
    "node_limit",
    "gap_tolerance",
    "max_iterations",
    "relaxation_engine",
    "cover_cut_rounds",
    "node_resolve",
    "presolve",
    "warm_start",
}


class TestPublicSurface:
    def test_repro_all_matches_snapshot(self):
        assert set(repro.__all__) == PUBLIC_API

    def test_everything_in_all_is_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_solve_options_fields_match_snapshot(self):
        fields = {f.name for f in dataclasses.fields(SolveOptions)}
        assert fields == SOLVE_OPTION_FIELDS

    def test_solve_options_is_frozen(self):
        opts = SolveOptions()
        with pytest_raises_frozen():
            opts.node_limit = 1

    def test_facade_names_resolve_to_canonical_objects(self):
        from repro.api import solve as deep_solve
        from repro.core.iterative import IterativeSession as deep_session
        from repro.core.planner import plan_consolidation as deep_plan
        from repro.lp.solvers import solve as lp_solve

        assert repro.IterativeSession is deep_session
        assert repro.plan_consolidation is deep_plan
        # repro.solve is now the unified *planning* entry point; the
        # LP-level solve stays reachable at repro.lp.solve.
        assert repro.solve is deep_solve
        assert repro.lp.solve is lp_solve


def pytest_raises_frozen():
    import pytest

    return pytest.raises(dataclasses.FrozenInstanceError)
