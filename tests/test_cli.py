"""CLI subcommands (exercised in-process through main())."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_state


@pytest.fixture
def state_file(tiny_state, tmp_path):
    # tiny_state has no current estate; add one for `asis`/`compare`.
    path = tmp_path / "state.json"
    save_state(tiny_state, str(path))
    return str(path)


@pytest.fixture
def full_state_file(asis_capable_state, tmp_path):
    path = tmp_path / "full.json"
    save_state(asis_capable_state, str(path))
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_backend_choices_are_free_text(self):
        args = build_parser().parse_args(["plan", "x.json", "--backend", "highs"])
        assert args.backend == "highs"


class TestDataset:
    def test_generates_file(self, tmp_path, capsys):
        out = tmp_path / "e1.json"
        code = main(["dataset", "enterprise1", str(out), "--scale", "0.1"])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["name"] == "enterprise1"
        assert "wrote" in capsys.readouterr().out

    def test_unknown_dataset(self, tmp_path, capsys):
        code = main(["dataset", "narnia", str(tmp_path / "x.json")])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestPlan:
    def test_plan_report_printed(self, state_file, capsys):
        code = main(["plan", state_file, "--backend", "highs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Transformation plan" in out
        assert "TOTAL" in out

    def test_plan_output_file(self, state_file, tmp_path, capsys):
        out_file = tmp_path / "plan.json"
        code = main([
            "plan", state_file, "--backend", "highs", "--output", str(out_file),
        ])
        assert code == 0
        data = json.loads(out_file.read_text())
        assert set(data["placement"]) == {"erp", "web", "batch", "bi"}

    def test_plan_with_dr_and_lp_export(self, state_file, tmp_path, capsys):
        lp_file = tmp_path / "model.lp"
        code = main([
            "plan", state_file, "--backend", "highs", "--dr",
            "--lp-export", str(lp_file), "--mip-gap", "0.01",
        ])
        assert code == 0
        assert "Binaries" in lp_file.read_text()
        assert "disaster recovery" in capsys.readouterr().out

    def test_vpn_wan_model(self, state_file, capsys):
        assert main(["plan", state_file, "--backend", "highs",
                     "--wan-model", "vpn"]) == 0


class TestProfileAndTrace:
    def test_profile_prints_stats_block(self, state_file, capsys):
        code = main([
            "plan", state_file, "--backend", "branch_bound", "--profile",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Solver statistics" in out
        assert "nodes explored" in out
        assert "best-bound gap" in out

    def test_profile_with_presolve_reports_reductions(self, state_file, capsys):
        code = main([
            "plan", state_file, "--backend", "highs", "--profile", "--presolve",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Solver statistics" in out
        assert "presolve" in out

    def test_trace_writes_one_json_record_per_solve(self, state_file, tmp_path):
        trace = tmp_path / "out.jsonl"
        code = main([
            "plan", state_file, "--backend", "highs", "--trace", str(trace),
        ])
        assert code == 0
        lines = trace.read_text().splitlines()
        assert len(lines) >= 1
        for line in lines:
            record = json.loads(line)
            assert record["event"] == "solve"
            assert record["backend"] == "highs"
            assert record["stats"] is not None

    def test_trace_unwritable_path_is_clean_error(self, state_file, tmp_path, capsys):
        bad = tmp_path / "no-such-dir" / "t.jsonl"
        code = main(["plan", state_file, "--backend", "highs",
                     "--trace", str(bad)])
        assert code == 2
        assert "cannot open trace file" in capsys.readouterr().err

    def test_trace_disabled_after_command(self, state_file, tmp_path):
        from repro.telemetry import trace_enabled

        trace = tmp_path / "out.jsonl"
        assert main(["plan", state_file, "--backend", "highs",
                     "--trace", str(trace)]) == 0
        assert not trace_enabled()


class TestCompare:
    def test_compare_table(self, full_state_file, capsys):
        code = main(["compare", full_state_file, "--backend", "highs"])
        assert code == 0
        out = capsys.readouterr().out
        for algorithm in ("as-is", "manual", "greedy", "etransform"):
            assert algorithm in out


class TestAsIs:
    def test_asis_report(self, full_state_file, capsys):
        assert main(["asis", full_state_file]) == 0
        assert "Transformation plan" in capsys.readouterr().out

    def test_asis_with_dr(self, full_state_file, capsys):
        assert main(["asis", full_state_file, "--dr"]) == 0
        assert "Backup pools" in capsys.readouterr().out


class TestMigrate:
    def test_migrate_report(self, full_state_file, capsys):
        assert main(["migrate", full_state_file, "--backend", "highs"]) == 0
        out = capsys.readouterr().out
        assert "Migration plan" in out
        assert "payback" in out

    def test_wave_budget_flag(self, full_state_file, capsys):
        assert main([
            "migrate", full_state_file, "--backend", "highs",
            "--wave-budget", "40",
        ]) == 0
        assert "waves" in capsys.readouterr().out


class TestSimulate:
    def test_simulate_report(self, state_file, capsys):
        code = main([
            "simulate", state_file, "--dr", "--backend", "highs",
            "--mtbf-hours", "2000", "--horizon-months", "24",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "availability" in out


class TestAnalysisCommands:
    def test_sensitivity(self, state_file, capsys):
        assert main(["sensitivity", state_file, "wan", "--backend", "highs"]) == 0
        out = capsys.readouterr().out
        assert "elasticity" in out

    def test_robustness(self, state_file, capsys):
        assert main([
            "robustness", state_file, "--samples", "2", "--backend", "highs",
        ]) == 0
        assert "regret" in capsys.readouterr().out


class TestSweepJobs:
    """`sweep --jobs N` must reach the experiment fan-out."""

    def test_latency_sweep_receives_jobs(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.experiments.harness import SweepPoint, SweepSeries
        from repro.experiments.latency_sweep import LatencySweepResult

        seen = {}

        def fake_sweep(backend="auto", solver_options=None, jobs=1):
            seen["jobs"] = jobs
            series = SweepSeries(
                name="All users in location 0",
                points=[SweepPoint(0.0, {
                    "total_cost": 1.0, "space_cost": 1.0, "mean_latency_ms": 1.0,
                })],
            )
            return LatencySweepResult(series=[series])

        monkeypatch.setattr(cli, "run_latency_sweep", fake_sweep)
        assert cli.main(["sweep", "latency", "--jobs", "3"]) == 0
        assert seen["jobs"] == 3
        assert "Fig 7(a)" in capsys.readouterr().out

    def test_dr_sweep_receives_jobs(self, monkeypatch, capsys):
        import repro.cli as cli
        from repro.experiments.dr_cost_sweep import DRCostSweepResult
        from repro.experiments.harness import SweepPoint

        seen = {}

        def fake_sweep(backend="auto", solver_options=None, jobs=1):
            seen["jobs"] = jobs
            return DRCostSweepResult(points=[
                SweepPoint(1.0, {"datacenters_used": 2.0, "dr_servers": 5.0}),
            ])

        monkeypatch.setattr(cli, "run_dr_cost_sweep", fake_sweep)
        assert cli.main(["sweep", "dr-cost", "--jobs", "2"]) == 0
        assert seen["jobs"] == 2
        assert "Fig 8" in capsys.readouterr().out

    def test_jobs_defaults_to_one(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "latency"])
        assert args.jobs == 1


class TestRefine:
    @pytest.fixture
    def script_file(self, tmp_path):
        def write(text: str) -> str:
            path = tmp_path / "refine.txt"
            path.write_text(text)
            return str(path)

        return write

    def test_scripted_session_reports_per_step_timing(
        self, state_file, script_file, capsys
    ):
        script = script_file(
            "# steer batch away from wherever it landed\n"
            "cap mid 3\n"
            "undo\n"
        )
        code = main(["refine", state_file, script, "--backend", "highs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "initial plan" in out
        assert "cap mid 3" in out
        assert "undo" in out
        assert "2 directives" in out
        assert "fingerprint hits" in out

    def test_cold_flag_disables_the_cache(self, state_file, script_file, capsys):
        script = script_file("cap mid 3\n")
        code = main(["refine", state_file, script, "--cold", "--backend", "highs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cold rebuild" in out
        assert "fingerprint hits" not in out

    def test_conflicting_script_is_a_clean_error(
        self, state_file, script_file, capsys
    ):
        script = script_file("pin batch mid\nforbid batch mid\n")
        code = main(["refine", state_file, script, "--backend", "highs"])
        assert code == 2
        assert "conflicts with earlier directive" in capsys.readouterr().err

    def test_malformed_script_is_a_clean_error(self, state_file, script_file, capsys):
        script = script_file("pin onlyonearg\n")
        code = main(["refine", state_file, script])
        assert code == 2
        assert "takes 2 operand" in capsys.readouterr().err

    def test_unknown_verb_is_a_clean_error(self, state_file, script_file, capsys):
        script = script_file("teleport batch mid\n")
        code = main(["refine", state_file, script])
        assert code == 2
        assert "unknown directive" in capsys.readouterr().err


class TestReplay:
    @pytest.fixture
    def online_state_file(self, tmp_path):
        from repro.datasets import online_line_scenario

        path = tmp_path / "online.json"
        save_state(
            online_line_scenario(
                n_groups=16, total_servers=400, n_datacenters=5,
                capacity=220, seed=11,
            ),
            str(path),
        )
        return str(path)

    def test_replay_prints_delta_table(self, online_state_file, capsys):
        code = main([
            "replay", "--input", online_state_file, "--backend", "highs",
            "--trace-profile", "diurnal", "--horizon-days", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "online replay (incremental" in out
        assert "reason" in out          # the delta table header
        assert "oscillating moves: 0" in out

    def test_replay_json_record(self, online_state_file, tmp_path, capsys):
        record = tmp_path / "replay.json"
        code = main([
            "replay", "--input", online_state_file, "--backend", "highs",
            "--trace-profile", "flash", "--horizon-days", "4",
            "--json", str(record),
        ])
        assert code == 0
        payload = json.loads(record.read_text())
        assert payload["incremental"] is True
        assert payload["deltas"], "flash profile should emit deltas"
        # Deltas carry moves, not full placements.
        assert all(0 < len(d["moves"]) < 16 for d in payload["deltas"])

    def test_replay_full_mode(self, online_state_file, capsys):
        code = main([
            "replay", "--input", online_state_file, "--backend", "highs",
            "--trace-profile", "flash", "--horizon-days", "4", "--full",
        ])
        assert code == 0
        assert "full re-plan" in capsys.readouterr().out

    def test_replay_bad_thresholds_exit_2(self, online_state_file, capsys):
        code = main([
            "replay", "--input", online_state_file,
            "--underload", "0.9", "--target", "0.7",
        ])
        assert code == 2
        assert "utilization" in capsys.readouterr().err

    def test_replay_missing_state_file(self, tmp_path, capsys):
        code = main(["replay", "--input", str(tmp_path / "nope.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err


class TestInputRobustness:
    """Operational input problems exit 2 with a one-line diagnostic."""

    COMMANDS = ("plan", "compare", "asis", "migrate", "simulate")

    @pytest.mark.parametrize("command", COMMANDS)
    def test_missing_state_file(self, command, tmp_path, capsys):
        path = str(tmp_path / "nope.json")
        code = main([command, path])
        err = capsys.readouterr().err
        assert code == 2
        assert "not found" in err
        assert "nope.json" in err
        assert "Traceback" not in err

    def test_state_path_is_a_directory(self, tmp_path, capsys):
        code = main(["plan", str(tmp_path)])
        assert code == 2
        assert "is a directory" in capsys.readouterr().err

    def test_malformed_json_names_the_position(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text('{"schema_version": 1,,}')
        code = main(["plan", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "not valid JSON" in err
        assert "line 1" in err
        assert "broken.json" in err

    def test_missing_required_field_is_named(self, state_file, tmp_path, capsys):
        data = json.loads(open(state_file).read())
        del data["app_groups"]
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps(data))
        code = main(["plan", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "missing required field" in err
        assert "app_groups" in err

    def test_wrong_schema_version_is_invalid(self, state_file, tmp_path, capsys):
        data = json.loads(open(state_file).read())
        data["schema_version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        code = main(["plan", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "is invalid" in err

    def test_sensitivity_and_robustness_check_inputs_too(self, tmp_path, capsys):
        missing = str(tmp_path / "gone.json")
        assert main(["sensitivity", missing, "space"]) == 2
        assert main(["robustness", missing]) == 2
        err = capsys.readouterr().err
        assert err.count("not found") == 2


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8080
        assert args.workers == 4
        assert args.journal is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "2", "--job-timeout", "10",
             "--max-retries", "0", "--journal", "j.jsonl", "--verbose"]
        )
        assert args.port == 0
        assert args.workers == 2
        assert args.job_timeout == 10.0
        assert args.max_retries == 0
        assert args.journal == "j.jsonl"
        assert args.verbose is True
