"""Unit tests for the Dantzig-Wolfe restricted master LP."""

from __future__ import annotations

import numpy as np

from repro.lp.master import MasterSolution, RestrictedMasterLP


def make_master(capacities=(100.0, 80.0), n_groups=2, big=1e6):
    return RestrictedMasterLP(
        capacities=np.array(capacities, dtype=float),
        n_groups=n_groups,
        artificial_cost=big,
    )


class TestColumnPool:
    def test_artificials_seed_the_pool(self):
        master = make_master()
        assert master.n_columns == 2
        assert master.col_target == [-1, -1]
        assert master.col_cost == [1e6, 1e6]

    def test_add_column_rejects_duplicates(self):
        master = make_master()
        assert master.add_column(0, 1, 50.0, 10.0)
        assert not master.add_column(0, 1, 50.0, 10.0)
        assert master.add_column(0, 0, 40.0, 10.0)
        assert master.has_column(0, 1)
        assert not master.has_column(1, 1)
        assert master.n_columns == 4


class TestMasterSolve:
    def test_artificial_only_master_is_feasible(self):
        master = make_master()
        solution = master.solve()
        assert solution.status == "optimal"
        # Both groups sit fully on their artificial columns.
        assert solution.artificial_weight == pytest_approx(2.0)
        assert solution.objective == pytest_approx(2e6)

    def test_columns_displace_artificials(self):
        master = make_master()
        master.add_column(0, 0, 30.0, 20.0)
        master.add_column(1, 1, 45.0, 15.0)
        solution = master.solve()
        assert solution.status == "optimal"
        assert solution.artificial_weight < 1e-9
        assert solution.objective == pytest_approx(75.0)

    def test_capacity_duals_are_nonpositive_on_binding_rows(self):
        # One target of capacity 10; two groups of 10 servers each want
        # it (cheap) but group 1 also has an expensive fallback.  The
        # capacity row binds, so its dual must be <= 0 (min problem).
        master = make_master(capacities=(10.0, 100.0), n_groups=2)
        master.add_column(0, 0, 10.0, 10.0)
        master.add_column(1, 0, 10.0, 10.0)
        master.add_column(1, 1, 90.0, 10.0)
        solution = master.solve()
        assert solution.status == "optimal"
        assert solution.artificial_weight < 1e-9
        assert solution.capacity_duals is not None
        assert (solution.capacity_duals <= 1e-9).all()
        # Site 0's scarcity is worth at least the 80-cost spread over
        # 10 servers (the exact value is degenerate: any pi0 <= -8 is
        # dual-optimal here).
        assert solution.capacity_duals[0] <= -8.0 + 1e-7
        # Dual feasibility over the pooled columns (bounds 0 <= w <= 1):
        # reduced cost c_gj - pi_j*load - mu_g is >= 0 at weight 0 and
        # <= 0 at weight 1 (nonbasic at the upper bound).
        pi, mu = solution.capacity_duals, solution.convexity_duals
        for idx in range(master.n_groups, master.n_columns):
            g, j = master.col_group[idx], master.col_target[idx]
            reduced = master.col_cost[idx] - pi[j] * master.col_load[idx] - mu[g]
            w = float(solution.weights[idx])
            if w <= 1e-9:
                assert reduced >= -1e-7
            elif w >= 1.0 - 1e-9:
                assert reduced <= 1e-7

    def test_warm_start_reused_across_column_appends(self):
        master = make_master()
        master.add_column(0, 0, 30.0, 20.0)
        master.add_column(1, 1, 45.0, 15.0)
        first = master.solve()
        assert first.status == "optimal"
        master.add_column(0, 1, 25.0, 20.0)
        second = master.solve()
        assert second.status == "optimal"
        assert second.warm_started
        assert second.objective == pytest_approx(70.0)

    def test_group_support_sorted_and_excludes_artificials(self):
        master = make_master(capacities=(10.0, 100.0), n_groups=2)
        master.add_column(0, 0, 10.0, 10.0)
        master.add_column(1, 0, 10.0, 10.0)
        master.add_column(1, 1, 90.0, 10.0)
        solution = master.solve()
        support = master.group_support(solution.weights)
        assert len(support) == 2
        for entries in support:
            assert entries, "every group keeps at least one placement column"
            weights = [w for _t, w in entries]
            assert weights == sorted(weights, reverse=True)
            assert all(t >= 0 for t, _w in entries)

    def test_infeasible_capacity_keeps_artificial_weight(self):
        # The only placement column overruns the capacity row, so the
        # master leans on the artificial and reports its weight.
        master = make_master(capacities=(5.0,), n_groups=1)
        master.add_column(0, 0, 10.0, 50.0)
        solution = master.solve()
        assert solution.status == "optimal"
        assert solution.artificial_weight > 0.5


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)
