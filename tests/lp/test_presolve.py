"""Presolve reductions — exactness verified against raw solves."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Problem, SolveStatus, VarType, quicksum, solve
from repro.lp.presolve import (
    PresolveInfeasible,
    presolve,
    solve_with_presolve,
)


class TestReductions:
    def test_fixed_variable_substituted(self):
        p = Problem()
        x = p.add_variable("x", lb=2.0, ub=2.0)
        y = p.add_variable("y", ub=10.0)
        p.add_constraint(x + y <= 5, "cap")
        p.set_objective(x + y)
        reduced, post = presolve(p)
        assert reduced.num_variables == 1
        assert post.fixed_values[x] == 2.0
        # Substitution leaves `y <= 3`, a singleton the next pass turns
        # into a bound — so the reduced model has no rows at all.
        assert reduced.num_constraints == 0
        assert reduced.variable_by_name("y").ub == pytest.approx(3.0)
        assert post.stats.fixed_variables == 1

    def test_empty_satisfied_constraint_dropped(self):
        p = Problem()
        x = p.add_variable("x", lb=1.0, ub=1.0)
        p.add_constraint(x <= 2, "loose")
        p.set_objective(x)
        reduced, post = presolve(p)
        assert reduced.num_constraints == 0
        assert post.stats.dropped_constraints >= 1

    def test_empty_violated_constraint_infeasible(self):
        p = Problem()
        x = p.add_variable("x", lb=3.0, ub=3.0)
        p.add_constraint(x <= 2, "broken")
        p.set_objective(x)
        with pytest.raises(PresolveInfeasible):
            presolve(p)

    def test_singleton_row_tightens_upper(self):
        p = Problem()
        x = p.add_variable("x", ub=100.0)
        p.add_constraint(2 * x <= 10, "single")
        p.set_objective(-x)
        reduced, post = presolve(p)
        assert reduced.num_constraints == 0
        var = reduced.variable_by_name("x")
        assert var.ub == pytest.approx(5.0)

    def test_singleton_negative_coefficient_flips_sense(self):
        p = Problem()
        x = p.add_variable("x", ub=100.0)
        p.add_constraint(-x <= -3, "single")  # x >= 3
        p.set_objective(x)
        reduced, _ = presolve(p)
        var = reduced.variable_by_name("x")
        assert var.lb == pytest.approx(3.0)

    def test_singleton_equality_fixes_and_cascades(self):
        p = Problem()
        x = p.add_variable("x", ub=10.0)
        y = p.add_variable("y", ub=10.0)
        p.add_constraint(2 * x == 4, "fix")
        p.add_constraint(x + y <= 5, "cap")
        p.set_objective(x + y)
        reduced, post = presolve(p)
        # round 1 fixes x=2, round 2 substitutes: y <= 3 singleton → bound
        assert reduced.num_constraints == 0
        assert post.fixed_values == {x: 2.0}
        assert reduced.variable_by_name("y").ub == pytest.approx(3.0)

    def test_crossing_bounds_infeasible(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=10.0)
        p.add_constraint(x <= 2, "hi")
        p.add_constraint(x >= 5, "lo")
        p.set_objective(x)
        with pytest.raises(PresolveInfeasible):
            presolve(p)

    def test_integer_bound_gap_infeasible(self):
        p = Problem()
        x = p.add_integer("x", lb=0, ub=10)
        p.add_constraint(3 * x >= 7, "lo")   # x >= 2.33
        p.add_constraint(3 * x <= 8, "hi")   # x <= 2.67 → no integer
        p.set_objective(x)
        with pytest.raises(PresolveInfeasible):
            presolve(p)

    def test_eq_singleton_outside_bounds_infeasible(self):
        # Regression: `x == 5` with `x <= 2` used to overwrite the bounds
        # with 5 *before* the crossing check and "solve" happily.
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=2.0)
        p.add_constraint(x == 5, "pin")
        p.set_objective(x)
        with pytest.raises(PresolveInfeasible):
            presolve(p)

    def test_eq_singleton_below_lower_bound_infeasible(self):
        p = Problem()
        x = p.add_variable("x", lb=3.0, ub=10.0)
        p.add_constraint(2 * x == 4, "pin")  # implies x == 2 < lb
        p.set_objective(x)
        with pytest.raises(PresolveInfeasible):
            presolve(p)

    def test_eq_singleton_inside_bounds_still_fixes(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=10.0)
        y = p.add_variable("y", ub=10.0)
        p.add_constraint(x == 5, "pin")
        p.add_constraint(x + y <= 8, "cap")
        p.set_objective(-(x + y))
        reduced, post = presolve(p)
        assert post.fixed_values[x] == pytest.approx(5.0)
        assert reduced.variable_by_name("y").ub == pytest.approx(3.0)

    def test_integer_bounds_snapped_to_hull(self):
        # Regression: fractional implied bounds on an integer variable
        # must round to ceil/floor, not survive as-is.
        p = Problem()
        x = p.add_integer("x", lb=0, ub=10)
        p.add_constraint(3 * x >= 4, "lo")   # x >= 1.33 → x >= 2
        p.add_constraint(3 * x <= 25, "hi")  # x <= 8.33 → x <= 8
        p.set_objective(x)
        reduced, _post = presolve(p)
        var = reduced.variable_by_name("x")
        assert var.lb == pytest.approx(2.0)
        assert var.ub == pytest.approx(8.0)

    def test_original_problem_untouched(self):
        p = Problem()
        x = p.add_variable("x", ub=100.0)
        p.add_constraint(x <= 10, "single")
        p.set_objective(x)
        presolve(p)
        assert x.ub == 100.0
        assert p.num_constraints == 1


class TestSolveWithPresolve:
    def test_matches_raw_solve(self, tiny_state):
        from repro.core import ConsolidationModel

        model = ConsolidationModel(tiny_state)
        raw = solve(model.problem, backend="highs")
        pre = solve_with_presolve(model.problem, backend="highs")
        assert pre.status is SolveStatus.OPTIMAL
        assert pre.objective == pytest.approx(raw.objective, rel=1e-6)

    def test_fixed_variables_restored(self):
        p = Problem()
        x = p.add_variable("x", lb=4.0, ub=4.0)
        y = p.add_variable("y", ub=10.0)
        p.add_constraint(x + y <= 6, "cap")
        p.set_objective(-(x + y))
        sol = solve_with_presolve(p, backend="highs")
        assert sol.value(x) == 4.0
        assert sol.value(y) == pytest.approx(2.0)
        assert sol.objective == pytest.approx(-6.0)
        assert "presolve" in sol.solver

    def test_eq_crossing_singleton_infeasible_end_to_end(self):
        # Regression: used to come back OPTIMAL with x "fixed" at 5
        # outside its own bounds.
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=2.0)
        y = p.add_variable("y", ub=4.0)
        p.add_constraint(x == 5, "pin")
        p.add_constraint(x + y <= 6, "cap")
        p.set_objective(x + y)
        sol = solve_with_presolve(p, backend="highs")
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.solver == "presolve"

    def test_infeasible_detected_without_solver(self):
        p = Problem()
        x = p.add_variable("x", lb=1.0, ub=1.0)
        p.add_constraint(x >= 2, "broken")
        p.set_objective(x)
        sol = solve_with_presolve(p, backend="highs")
        assert sol.status is SolveStatus.INFEASIBLE
        assert sol.solver == "presolve"


@st.composite
def random_reducible_model(draw):
    """Models salted with fixed variables and singleton rows."""
    p = Problem()
    n = draw(st.integers(min_value=2, max_value=5))
    xs = []
    for i in range(n):
        kind = draw(st.sampled_from(["fixed", "bounded", "binary"]))
        if kind == "fixed":
            v = draw(st.integers(min_value=0, max_value=3))
            xs.append(p.add_variable(f"x{i}", lb=float(v), ub=float(v)))
        elif kind == "binary":
            xs.append(p.add_binary(f"x{i}"))
        else:
            xs.append(p.add_variable(f"x{i}", ub=float(draw(st.integers(1, 8)))))
    coef = st.integers(min_value=-4, max_value=4)
    for j in range(draw(st.integers(min_value=1, max_value=4))):
        kind = draw(st.sampled_from(["row", "singleton"]))
        if kind == "singleton":
            var = draw(st.sampled_from(xs))
            p.add_constraint(var <= draw(st.integers(0, 8)), f"s{j}")
        else:
            expr = quicksum(draw(coef) * x for x in xs)
            p.add_constraint(expr <= draw(st.integers(0, 25)), f"c{j}")
    p.set_objective(quicksum(draw(coef) * x for x in xs))
    return p


@given(random_reducible_model())
@settings(max_examples=40, deadline=None)
def test_presolve_preserves_the_optimum(p):
    raw = solve(p, backend="highs")
    try:
        pre = solve_with_presolve(p, backend="highs")
    except PresolveInfeasible:  # pragma: no cover - surfaced as status
        pre = None
    assert pre is not None
    assert pre.status == raw.status
    if raw.status is SolveStatus.OPTIMAL:
        assert pre.objective == pytest.approx(raw.objective, rel=1e-6, abs=1e-6)
        # Expanded solution must be feasible for the *original* model.
        assert p.is_feasible(pre.values)
