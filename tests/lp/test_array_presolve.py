"""Unit tests for the array-level presolve.

Each reduction class gets a targeted instance, and a randomized sweep
checks the global contract: presolving must never change the optimum.
A presolved instance is re-solved (bounds from the result, rows sliced
by the keep masks) and compared against the raw solve through HiGHS and
the builtin revised simplex.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.array_presolve import presolve_arrays
from repro.lp.matrix_lp import solve_lp_arrays
from repro.lp.sparse import CSCMatrix

NO_EQ = dict(a_eq=np.zeros((0, 2)), b_eq=np.zeros(0))


class TestSingletonRows:
    def test_le_singleton_becomes_upper_bound(self):
        # 2x <= 4 is the bound x <= 2; the row must vanish.
        res = presolve_arrays(
            c=np.array([-1.0, 0.0]),
            a_ub=np.array([[2.0, 0.0]]), b_ub=np.array([4.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0), **NO_EQ,
        )
        assert not res.infeasible
        assert not res.keep_ub[0]
        assert res.singleton_rows == 1
        assert res.ub[0] == pytest.approx(2.0)

    def test_negative_coefficient_flips_direction(self):
        # -3x <= -6 is the bound x >= 2.
        res = presolve_arrays(
            c=np.array([1.0, 0.0]),
            a_ub=np.array([[-3.0, 0.0]]), b_ub=np.array([-6.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0), **NO_EQ,
        )
        assert not res.infeasible
        assert res.lb[0] == pytest.approx(2.0)

    def test_eq_singleton_fixes_the_column(self):
        res = presolve_arrays(
            c=np.array([1.0, 1.0]),
            a_ub=np.zeros((0, 2)), b_ub=np.zeros(0),
            a_eq=np.array([[0.0, 2.0]]), b_eq=np.array([3.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0),
        )
        assert not res.infeasible
        assert not res.keep_eq[0]
        assert res.lb[1] == pytest.approx(1.5)
        assert res.ub[1] == pytest.approx(1.5)

    def test_eq_singleton_outside_bounds_is_infeasible(self):
        res = presolve_arrays(
            c=np.array([1.0, 1.0]),
            a_ub=np.zeros((0, 2)), b_ub=np.zeros(0),
            a_eq=np.array([[2.0, 0.0]]), b_eq=np.array([30.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0),
        )
        assert res.infeasible


class TestRedundantRowsAndTightening:
    def test_redundant_le_row_dropped(self):
        # With x, y in [0, 1], x + y <= 5 can never bind.
        res = presolve_arrays(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([5.0]),
            lb=np.zeros(2), ub=np.ones(2), **NO_EQ,
        )
        assert not res.keep_ub[0]
        assert res.rows_dropped == 1

    def test_activity_bound_tightening(self):
        # x + y <= 1 with y >= 0 forces x <= 1 (from ub=10).
        res = presolve_arrays(
            c=np.array([-1.0, -1.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([1.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0), **NO_EQ,
        )
        assert res.ub[0] == pytest.approx(1.0)
        assert res.ub[1] == pytest.approx(1.0)
        assert res.bounds_tightened >= 2

    def test_min_activity_infeasibility(self):
        # x + y <= 1 with both lower bounds at 1: min activity 2 > 1.
        res = presolve_arrays(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([1.0]),
            lb=np.ones(2), ub=np.full(2, 10.0), **NO_EQ,
        )
        assert res.infeasible

    def test_integer_bounds_snap(self):
        # 3x <= 4 tightens integral x to ub=1 (floor of 4/3).
        res = presolve_arrays(
            c=np.array([-1.0, 0.0]),
            a_ub=np.array([[3.0, 0.0]]), b_ub=np.array([4.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0), **NO_EQ,
            integrality=np.array([1, 0]),
        )
        assert res.ub[0] == pytest.approx(1.0)

    def test_csc_input_accepted(self):
        a = CSCMatrix.from_dense(np.array([[2.0, 0.0]]))
        res = presolve_arrays(
            c=np.array([-1.0, 0.0]), a_ub=a, b_ub=np.array([4.0]),
            lb=np.zeros(2), ub=np.full(2, 10.0), **NO_EQ,
        )
        assert res.ub[0] == pytest.approx(2.0)

    def test_no_reduction_is_reported(self):
        res = presolve_arrays(
            c=np.array([1.0, 1.0]),
            a_ub=np.array([[1.0, 1.0]]), b_ub=np.array([1.0]),
            lb=np.zeros(2), ub=np.ones(2), **NO_EQ,
        )
        assert not res.infeasible
        assert not res.reduced


class TestOptimumPreservation:
    @pytest.mark.parametrize("seed", range(25))
    def test_presolved_solve_matches_raw(self, seed):
        rng = np.random.default_rng(8800 + seed)
        n = int(rng.integers(3, 8))
        m = int(rng.integers(2, 6))
        lb = np.round(rng.uniform(-2.0, 0.0, size=n), 3)
        ub = lb + np.round(rng.uniform(0.5, 6.0, size=n), 3)
        c = np.round(rng.uniform(-5.0, 5.0, size=n), 3)
        a_ub = np.round(rng.uniform(-2.0, 2.0, size=(m, n)), 3)
        # Plant singleton and wide-rhs rows so reductions actually fire.
        a_ub[0, 1:] = 0.0
        a_ub[0, 0] = 1.0
        x0 = rng.uniform(lb, ub)
        b_ub = a_ub @ x0 + np.round(rng.uniform(0.1, 2.0, size=m), 3)
        b_ub[-1] += 50.0  # redundant row
        kw = dict(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=np.zeros((0, n)),
                  b_eq=np.zeros(0), lb=lb, ub=ub)
        raw = solve_lp_arrays(engine="highs", **kw)

        res = presolve_arrays(**kw)
        if res.infeasible:
            assert raw.status == "infeasible"
            return
        red = solve_lp_arrays(
            engine="highs", c=c,
            a_ub=a_ub[res.keep_ub], b_ub=b_ub[res.keep_ub],
            a_eq=np.zeros((0, n)), b_eq=np.zeros(0),
            lb=res.lb, ub=res.ub,
        )
        assert red.status == raw.status
        if raw.status == "optimal":
            assert red.objective == pytest.approx(
                raw.objective, rel=1e-6, abs=1e-6
            )
        # The builtin engine on the reduced arrays agrees too.
        bres = solve_lp_arrays(
            engine="builtin", c=c,
            a_ub=a_ub[res.keep_ub], b_ub=b_ub[res.keep_ub],
            a_eq=np.zeros((0, n)), b_eq=np.zeros(0),
            lb=res.lb, ub=res.ub,
        )
        assert bres.status == raw.status
        if raw.status == "optimal":
            assert bres.objective == pytest.approx(
                raw.objective, rel=1e-6, abs=1e-6
            )

    def test_empty_column_fixing_off_by_default(self):
        # A costed column in no row stays free unless explicitly enabled.
        res = presolve_arrays(
            c=np.array([0.0, 1.0]),
            a_ub=np.array([[1.0, 0.0]]), b_ub=np.array([1.0]),
            lb=np.zeros(2), ub=np.full(2, 3.0), **NO_EQ,
        )
        assert res.cols_fixed == 0
        assert res.lb[1] == pytest.approx(0.0)
        assert res.ub[1] == pytest.approx(3.0)

    def test_empty_column_fixing_opt_in(self):
        res = presolve_arrays(
            c=np.array([0.0, 1.0]),
            a_ub=np.array([[1.0, 0.0]]), b_ub=np.array([1.0]),
            lb=np.zeros(2), ub=np.full(2, 3.0), **NO_EQ,
            fix_empty_columns=True,
        )
        # min +1*y over [0, 3] fixes y at its lower bound.
        assert res.cols_fixed >= 1
        assert res.lb[1] == pytest.approx(0.0)
        assert res.ub[1] == pytest.approx(0.0)


class TestSparseHelpers:
    def test_row_nnz(self):
        a = CSCMatrix.from_dense(
            np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        )
        np.testing.assert_array_equal(a.row_nnz(), [2, 0, 2])

    def test_take_rows(self):
        dense = np.array([[1.0, 0.0, 2.0], [5.0, 6.0, 0.0], [3.0, 4.0, 0.0]])
        a = CSCMatrix.from_dense(dense)
        keep = np.array([True, False, True])
        sub = a.take_rows(keep)
        assert sub.shape == (2, 3)
        np.testing.assert_allclose(sub.to_dense(), dense[keep])
