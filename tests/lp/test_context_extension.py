"""Row-append context extension: family, bordered factors, cache parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import Problem, SolveStatus, quicksum
from repro.lp.branch_bound import solve_branch_and_bound
from repro.lp.matrix_lp import RelaxationContext, solve_lp_arrays
from repro.lp.options import SolveOptions
from repro.lp.revised_simplex import (
    BASIC,
    SparseBoundedLP,
    bordered_binv,
    extend_warm_pair,
)
from repro.lp.solvers import SolveCache


def arrays():
    """min -x - 2y - z, one coupling row; all bounds finite."""
    return dict(
        c=np.array([-1.0, -2.0, -1.0]),
        a_ub=np.array([[1.0, 1.0, 1.0]]),
        b_ub=np.array([6.0]),
        a_eq=np.zeros((0, 3)),
        b_eq=np.zeros(0),
        lb=np.zeros(3),
        ub=np.array([4.0, 3.0, 5.0]),
    )


def dense_of(lp: SparseBoundedLP) -> np.ndarray:
    out = np.zeros(lp.a.shape)
    for j in range(lp.a.shape[1]):
        idx, dat = lp.a.col(j)
        out[idx, j] = dat
    return out


def basis_matrix(lp: SparseBoundedLP, basis: np.ndarray) -> np.ndarray:
    """Dense basis matrix: structural columns from ``a``, slacks as units."""
    a = dense_of(lp)
    cols = []
    for j in basis:
        j = int(j)
        if j < lp.n:
            cols.append(a[:, j])
        else:
            e = np.zeros(lp.m)
            e[j - lp.n] = 1.0
            cols.append(e)
    return np.column_stack(cols)


class TestFamilyAppend:
    def test_rows_append_below_existing_stack(self):
        kw = arrays()
        lp = SparseBoundedLP(kw["c"], kw["a_ub"], kw["b_ub"], kw["a_eq"], kw["b_eq"])
        a_new = np.array([[1.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        lp.append_le_rows(a_new, np.array([3.0, 2.0]))
        assert lp.m == 3
        np.testing.assert_allclose(
            dense_of(lp), np.vstack([kw["a_ub"], a_new])
        )
        np.testing.assert_allclose(lp.b, [6.0, 3.0, 2.0])
        # New slacks are plain <= slacks: [0, inf).
        np.testing.assert_allclose(lp.slack_lb, np.zeros(3))
        assert np.isinf(lp.slack_ub[1:]).all()

    def test_extend_warm_pair_adds_basic_slacks(self):
        kw = arrays()
        lp = SparseBoundedLP(kw["c"], kw["a_ub"], kw["b_ub"], kw["a_eq"], kw["b_eq"])
        basis = np.array([1], dtype=np.int64)  # y basic in the single row
        vstat = np.zeros(lp.n + lp.m, dtype=np.int8)
        lp.append_le_rows(np.array([[1.0, 0.0, 0.0]]), np.array([2.0]))
        ext = extend_warm_pair(lp, basis, vstat)
        assert ext is not None
        basis_ext, vstat_ext = ext
        np.testing.assert_array_equal(basis_ext, [1, lp.n + 1])
        assert vstat_ext[-1] == BASIC
        # A pair from a family this one cannot descend from is refused.
        assert extend_warm_pair(lp, basis, np.zeros(2, dtype=np.int8)) is None


class TestBorderedBinv:
    def test_matches_dense_inverse_of_extended_basis(self):
        kw = arrays()
        ctx = RelaxationContext(engine="builtin", **kw)
        root = ctx.solve()
        assert root.status == "optimal"
        _, basis, _ = root.warm_token
        lp = ctx._family
        m_old = lp.m
        binv_old = np.linalg.inv(basis_matrix(lp, basis))
        lp.append_le_rows(
            np.array([[1.0, 1.0, 0.0], [0.5, 0.0, 2.0]]), np.array([4.0, 7.0])
        )
        new_slacks = np.arange(lp.n + m_old, lp.n + lp.m, dtype=np.int64)
        basis_ext = np.concatenate([np.asarray(basis, dtype=np.int64), new_slacks])
        binv_ext = bordered_binv(lp, basis_ext, binv_old, m_old)
        assert binv_ext is not None
        np.testing.assert_allclose(
            binv_ext, np.linalg.inv(basis_matrix(lp, basis_ext)), atol=1e-9
        )

    def test_size_mismatch_refused(self):
        kw = arrays()
        lp = SparseBoundedLP(kw["c"], kw["a_ub"], kw["b_ub"], kw["a_eq"], kw["b_eq"])
        assert bordered_binv(lp, np.array([0], dtype=np.int64), np.eye(1), 1) is None


class TestContextExtension:
    @pytest.mark.parametrize("engine", ["builtin", "highs"])
    def test_extended_solve_matches_cold_rebuild(self, engine):
        kw = arrays()
        ctx = RelaxationContext(engine=engine, **kw)
        root = ctx.solve()
        a_app = np.array([[0.0, 1.0, 1.0]])
        b_app = np.array([2.5])
        assert ctx.extend_rows(a_app, b_app)
        assert ctx.row_extensions == 1
        res = ctx.solve(warm=ctx.extend_warm_token(root.warm_token))
        fresh = solve_lp_arrays(
            engine="highs",
            c=kw["c"],
            a_ub=np.vstack([kw["a_ub"], a_app]),
            b_ub=np.concatenate([kw["b_ub"], b_app]),
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=kw["lb"], ub=kw["ub"],
        )
        assert res.status == fresh.status == "optimal"
        assert res.objective == pytest.approx(fresh.objective, abs=1e-8)
        np.testing.assert_allclose(res.x, fresh.x, atol=1e-7)

    def test_extended_token_reenters_via_dual_simplex(self):
        kw = arrays()
        ctx = RelaxationContext(engine="builtin", **kw)
        root = ctx.solve()
        assert ctx.extend_rows(np.array([[0.0, 1.0, 1.0]]), np.array([2.5]))
        token = ctx.extend_warm_token(root.warm_token)
        assert token is not None
        res = ctx.solve(warm=token)
        assert res.status == "optimal"
        assert res.warm_started
        assert ctx.extension_dual_entries >= 1

    def test_tableau_context_refuses_extension(self):
        kw = arrays()
        ctx = RelaxationContext(engine="tableau", **kw)
        ctx.solve()
        assert not ctx.extend_rows(np.array([[1.0, 0.0, 0.0]]), np.array([1.0]))


class TestExtensionPresolve:
    def test_appended_row_tightens_the_bound_box(self):
        kw = arrays()
        ctx = RelaxationContext(
            engine="builtin", presolve=True,
            integrality=np.ones(3, dtype=bool), **kw,
        )
        ctx.solve()
        before = ctx.presolve_bounds_tightened
        # x + y + z >= everything is already capped at 6; forcing
        # x <= 0.4 with x integral must fix x to 0 in the eff box.
        assert ctx.extend_rows(np.array([[1.0, 0.0, 0.0]]), np.array([0.4]))
        assert ctx.presolve_bounds_tightened > before
        assert ctx._eff_ub[0] == pytest.approx(0.0)
        res = ctx.solve()
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(0.0, abs=1e-9)

    def test_infeasible_append_detected_at_extension_time(self):
        kw = arrays()
        ctx = RelaxationContext(engine="builtin", presolve=True, **kw)
        ctx.solve()
        # x + y + z <= -1 with nonnegative bounds: hopeless.
        assert ctx.extend_rows(np.array([[1.0, 1.0, 1.0]]), np.array([-1.0]))
        assert ctx.solve().status == "infeasible"


class TestReducedCosts:
    @pytest.mark.parametrize("engine", ["builtin", "highs"])
    def test_matches_hand_computed_duals(self, engine):
        # min -x - 2y st x + y <= 6, x <= 4, y <= 3: optimum (3, 3),
        # row dual -1, so d = c - A'y = (0, -1).
        ctx = RelaxationContext(
            engine=engine,
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([6.0]),
            a_eq=np.zeros((0, 2)), b_eq=np.zeros(0),
            lb=np.zeros(2), ub=np.array([4.0, 3.0]),
        )
        res = ctx.solve()
        d = ctx.reduced_costs(res.duals)
        assert d is not None
        np.testing.assert_allclose(d, [0.0, -1.0], atol=1e-8)

    def test_mismatched_or_missing_duals_return_none(self):
        kw = arrays()
        ctx = RelaxationContext(engine="builtin", **kw)
        assert ctx.reduced_costs(None) is None
        assert ctx.reduced_costs(np.zeros(5)) is None


class TestReducedCostFixing:
    def problem(self):
        # min -3x - y st x + y <= 1.5, binaries: LP root (1, 0.5) with
        # objective -3.5; integer optimum (1, 0) at -3.
        p = Problem("rc-fix")
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(x + y <= 1.5)
        p.set_objective(-3 * x - y)
        return p

    def test_seeded_solve_fixes_at_root_and_matches_cold(self):
        cold = solve_branch_and_bound(self.problem())
        seeded = solve_branch_and_bound(
            self.problem(), warm_start={"x": 1.0, "y": 0.0}
        )
        assert cold.status is seeded.status is SolveStatus.OPTIMAL
        assert seeded.objective == pytest.approx(cold.objective)
        assert seeded.stats.extra.get("warm_start_incumbent") == 1.0
        assert seeded.stats.extra.get("warm_start_objective") == pytest.approx(-3.0)
        # At the root, x sits at its upper bound with |d| = 2 >= the
        # 0.5 cutoff slack: it must be fixed there.
        assert seeded.stats.extra.get("reduced_cost_fixed", 0) >= 1

    def test_unseeded_solve_never_fixes(self):
        cold = solve_branch_and_bound(self.problem())
        assert "reduced_cost_fixed" not in cold.stats.extra


class TestCacheExtension:
    def mip(self):
        p = Problem("cache-ext")
        xs = [p.add_binary(f"x{i}") for i in range(6)]
        p.add_constraint(quicksum((i + 1) * x for i, x in enumerate(xs)) <= 9)
        p.set_objective(-quicksum((2 * i + 3) * x for i, x in enumerate(xs)))
        return p, xs

    def test_appended_row_extends_instead_of_rebuilding(self):
        p, xs = self.mip()
        cache = SolveCache()
        options = SolveOptions()
        first = cache.solve(p, "branch_bound", options)
        assert first.status is SolveStatus.OPTIMAL
        rebuilds = cache.context_rebuilds
        p.add_constraint(xs[0] + xs[1] + xs[2] <= 1)
        second = cache.solve(p, "branch_bound", options)
        assert cache.context_extensions == 1
        assert cache.context_rebuilds == rebuilds  # no cold restandardize
        fresh = solve_branch_and_bound(p)
        assert second.status is SolveStatus.OPTIMAL
        assert second.objective == pytest.approx(fresh.objective)
        assert p.is_feasible(second.values)
        assert second.stats.context_extended == 1

    def test_extension_keeps_fingerprint_chain_distinct(self):
        p, xs = self.mip()
        cache = SolveCache()
        options = SolveOptions()
        cache.solve(p, "branch_bound", options)
        p.add_constraint(xs[3] + xs[4] <= 1)
        a = cache.solve(p, "branch_bound", options)
        hits = cache.hits
        again = cache.solve(p, "branch_bound", options)
        assert cache.hits == hits + 1  # extended structure is cacheable
        assert again.objective == pytest.approx(a.objective)

    def test_removal_to_a_cached_structure_is_a_fingerprint_hit(self):
        # Popping a directive restores an already-seen structure; the
        # fingerprint cache answers it without touching the context.
        p, xs = self.mip()
        cache = SolveCache()
        options = SolveOptions()
        first = cache.solve(p, "branch_bound", options)
        p.add_constraint(xs[0] + xs[1] <= 1)
        cache.solve(p, "branch_bound", options)
        hits = cache.hits
        p.truncate_constraints(len(p.constraints) - 1)
        out = cache.solve(p, "branch_bound", options)
        assert cache.hits == hits + 1
        assert out.objective == pytest.approx(first.objective)

    def test_removal_to_a_new_structure_rebuilds(self):
        p, xs = self.mip()
        base = p.num_constraints
        p.add_constraint(xs[0] + xs[1] <= 1)
        p.add_constraint(xs[2] + xs[3] <= 1)
        cache = SolveCache()
        options = SolveOptions()
        cache.solve(p, "branch_bound", options)
        rebuilds = cache.context_rebuilds
        # Dropping both rows lands on a structure the cache never saw
        # as a context: families cannot shrink in place, so it rebuilds.
        p.truncate_constraints(base)
        out = cache.solve(p, "branch_bound", options)
        assert cache.context_rebuilds == rebuilds + 1
        assert out.status is SolveStatus.OPTIMAL
