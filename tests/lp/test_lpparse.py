"""LP-file reader + writer/reader round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Problem, SolveStatus, VarType, quicksum, solve, write_lp_string
from repro.lp.lpparse import LPParseError, parse_lp_string, read_lp_file


SAMPLE = """
\\* a comment *\\
Minimize
 obj: 2 x + 3 y - z
Subject To
 cap: x + y <= 10
 low: y - 2 z >= -4
 tie: x - y = 1
Bounds
 0 <= x <= 8
 z <= 5
 y free
Generals
 x
Binaries
 z
End
"""


class TestParsing:
    def test_sample_structure(self):
        p = parse_lp_string(SAMPLE)
        assert p.num_variables == 3
        assert p.num_constraints == 3
        x = p.variable_by_name("x")
        y = p.variable_by_name("y")
        z = p.variable_by_name("z")
        assert x.vtype is VarType.INTEGER
        assert (x.lb, x.ub) == (0.0, 8.0)
        assert y.lb is None and y.ub is None
        assert z.vtype is VarType.BINARY
        assert (z.lb, z.ub) == (0.0, 1.0)

    def test_objective_coefficients(self):
        p = parse_lp_string(SAMPLE)
        x = p.variable_by_name("x")
        z = p.variable_by_name("z")
        assert p.objective.coefficient(x) == 2.0
        assert p.objective.coefficient(z) == -1.0

    def test_constraint_normalization(self):
        p = parse_lp_string(SAMPLE)
        by_name = {c.name: c for c in p.constraints}
        assert by_name["low"].rhs == pytest.approx(-4.0)
        assert by_name["tie"].rhs == pytest.approx(1.0)

    def test_maximize(self):
        p = parse_lp_string("Maximize\n obj: x\nSubject To\n c: x <= 3\nEnd\n")
        assert p.sense == "maximize"

    def test_rhs_on_left(self):
        # Variables may appear on the right of the relation.
        p = parse_lp_string("Minimize\n obj: x\nSubject To\n c: 4 <= x + y\nEnd\n")
        con = p.constraints[0]
        sol_expr = con.expr
        assert con.sense.value == "<="
        # normalized: 4 - x - y <= 0 → -x - y <= -4
        assert con.rhs == pytest.approx(-4.0)

    def test_wrapped_constraints(self):
        text = (
            "Minimize\n obj: x0\nSubject To\n"
            " big: x0 + x1 + x2\n   + x3 + x4 <= 3\nEnd\n"
        )
        p = parse_lp_string(text)
        assert len(p.constraints[0].expr.terms()) == 5

    def test_missing_objective_rejected(self):
        with pytest.raises(LPParseError, match="objective"):
            parse_lp_string("Subject To\n c: x <= 1\nEnd\n")

    def test_constraint_without_relation_rejected(self):
        with pytest.raises(LPParseError):
            parse_lp_string("Minimize\n obj: x\nSubject To\n c: x + 3 y\nEnd\n")

    def test_double_relation_rejected(self):
        with pytest.raises(LPParseError):
            parse_lp_string("Minimize\n obj: x\nSubject To\n c: x <= 3 <= 4\nEnd\n")

    def test_empty_rejected(self):
        with pytest.raises(LPParseError):
            parse_lp_string("")

    def test_bad_bound_line_rejected(self):
        with pytest.raises(LPParseError, match="bound"):
            parse_lp_string("Minimize\n obj: x\nBounds\n x banana\nEnd\n")

    def test_fixed_bound(self):
        p = parse_lp_string("Minimize\n obj: x\nBounds\n x = 4\nEnd\n")
        x = p.variable_by_name("x")
        assert (x.lb, x.ub) == (4.0, 4.0)

    def test_negative_infinity_lower(self):
        p = parse_lp_string("Minimize\n obj: x\nBounds\n -inf <= x <= 2\nEnd\n")
        x = p.variable_by_name("x")
        assert x.lb is None and x.ub == 2.0

    def test_read_lp_file(self, tmp_path):
        path = tmp_path / "m.lp"
        path.write_text(SAMPLE)
        p = read_lp_file(str(path))
        assert p.num_constraints == 3


class TestRoundTrip:
    def build(self):
        p = Problem("rt")
        x = p.add_variable("x", lb=0.0, ub=4.0)
        y = p.add_variable("y", lb=None, ub=None)
        z = p.add_binary("z[a,b]")
        i = p.add_integer("count", lb=0, ub=9)
        p.add_constraint(x + 2 * y - z <= 4, "cap")
        p.add_constraint(y + i >= 1, "low")
        p.add_constraint(x - i == 0, "tie")
        p.set_objective(x + y + 5 * z + 2 * i)
        return p

    def test_written_model_parses(self):
        original = self.build()
        parsed = parse_lp_string(write_lp_string(original))
        assert parsed.num_variables == original.num_variables
        assert parsed.num_constraints == original.num_constraints
        assert parsed.num_integer_variables == original.num_integer_variables

    def test_round_trip_preserves_optimum(self):
        original = self.build()
        parsed = parse_lp_string(write_lp_string(original))
        a = solve(original, backend="highs")
        b = solve(parsed, backend="highs")
        assert a.status is SolveStatus.OPTIMAL
        assert b.status is SolveStatus.OPTIMAL
        assert a.objective == pytest.approx(b.objective, rel=1e-9)

    def test_consolidation_model_round_trips(self, tiny_state):
        from repro.core import ConsolidationModel

        model = ConsolidationModel(tiny_state)
        parsed = parse_lp_string(write_lp_string(model.problem))
        a = solve(model.problem, backend="highs")
        b = solve(parsed, backend="highs")
        assert b.objective == pytest.approx(a.objective, rel=1e-9)


@st.composite
def random_small_milp(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=1, max_value=4))
    p = Problem("rand")
    xs = []
    for i in range(n):
        integral = draw(st.booleans())
        if integral:
            xs.append(p.add_binary(f"x{i}"))
        else:
            xs.append(p.add_variable(f"x{i}", ub=draw(st.integers(1, 9))))
    coef = st.integers(min_value=-5, max_value=5)
    for j in range(m):
        row = quicksum(draw(coef) * x for x in xs)
        rhs = draw(st.integers(min_value=0, max_value=20))
        p.add_constraint(row <= rhs, f"c{j}")
    p.set_objective(quicksum(draw(coef) * x for x in xs))
    return p


@given(random_small_milp())
@settings(max_examples=40, deadline=None)
def test_random_models_round_trip_through_lp_format(p):
    parsed = parse_lp_string(write_lp_string(p))
    a = solve(p, backend="highs")
    b = solve(parsed, backend="highs")
    assert a.status == b.status
    if a.status is SolveStatus.OPTIMAL:
        assert a.objective == pytest.approx(b.objective, rel=1e-7, abs=1e-7)
