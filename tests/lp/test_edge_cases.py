"""Solver-stack edge cases that the happy-path tests skip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import (
    Problem,
    Solution,
    SolveStatus,
    Variable,
    quicksum,
    solve,
)
from repro.lp.branch_bound import solve_branch_and_bound
from repro.lp.matrix_lp import solve_lp_arrays
from repro.lp.simplex import solve_standard_form


class TestSimplexLimits:
    def test_iteration_limit_reported(self):
        # A genuine LP with the pivot budget set to zero mid-phase-2.
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        c = np.array([-1.0, -2.0, 0.0])
        res = solve_standard_form(a, b, c, max_iterations=1)
        assert res.status in ("iteration_limit", "optimal")
        if res.status == "iteration_limit":
            assert res.x is None

    def test_tiny_coefficients(self):
        a = np.array([[1e-6, 1.0]])
        b = np.array([1.0])
        c = np.array([0.0, -1.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-1.0)

    def test_builtin_engine_iteration_limit_is_error(self):
        kw = dict(
            c=np.array([-1.0, -2.0]),
            a_ub=np.array([[1.0, 1.0]]),
            b_ub=np.array([4.0]),
            a_eq=np.zeros((0, 2)),
            b_eq=np.zeros(0),
            lb=np.zeros(2),
            ub=np.array([3.0, 2.0]),
        )
        res = solve_lp_arrays(engine="builtin", max_iterations=1, **kw)
        assert res.status in ("error", "optimal")


class TestBranchBoundLimits:
    def wide_model(self):
        p = Problem()
        xs = [p.add_binary(f"x{i}") for i in range(14)]
        p.add_constraint(quicksum(3 * x for x in xs) <= 20)
        p.set_objective(-quicksum((i % 5 + 1) * x for i, x in enumerate(xs)))
        return p

    def test_time_limit_returns_incumbent_or_error(self):
        sol = solve_branch_and_bound(self.wide_model(), time_limit=0.0)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR)
        assert "time limit" in sol.message

    def test_node_limit_message(self):
        sol = solve_branch_and_bound(self.wide_model(), node_limit=2)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR)
        if sol.status is SolveStatus.ERROR:
            assert "node limit" in sol.message

    def test_gap_tolerance_accepts_near_optimal(self):
        p = self.wide_model()
        exact = solve_branch_and_bound(p)
        loose = solve_branch_and_bound(p, gap_tolerance=5.0)
        assert loose.status is SolveStatus.OPTIMAL
        # A 5-unit gap may stop early but never returns worse than 5 off.
        assert loose.objective <= exact.objective + 5.0


class TestSolutionType:
    def test_restrict(self):
        x = Variable("x")
        y = Variable("y")
        sol = Solution(SolveStatus.OPTIMAL, 1.0, {x: 2.0})
        out = sol.restrict({"ex": x, "why": y})
        assert out == {"ex": 2.0, "why": 0.0}

    def test_nan_objective_when_no_solution(self):
        sol = Solution(SolveStatus.INFEASIBLE)
        assert sol.objective != sol.objective  # NaN

    def test_as_name_dict_empty(self):
        assert Solution(SolveStatus.ERROR).as_name_dict() == {}


class TestDegenerateModels:
    def test_zero_objective(self):
        p = Problem()
        x = p.add_binary("x")
        p.add_constraint(x <= 1)
        p.set_objective(0)
        sol = solve(p, backend="highs")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == 0.0

    def test_single_variable_problem_all_backends(self):
        for backend in ("highs", "branch_bound", "rounding"):
            p = Problem()
            x = p.add_binary("x")
            p.set_objective(-x)
            sol = solve(p, backend=backend)
            assert sol.status.has_solution
            assert sol.value(x) == pytest.approx(1.0)

    def test_duplicate_constraints_harmless(self):
        p = Problem()
        x = p.add_variable("x", ub=5.0)
        p.add_constraint(x <= 3, "a")
        p.add_constraint(x <= 3, "b")
        p.set_objective(-x)
        for backend in ("highs", "simplex", "branch_bound"):
            sol = solve(p, backend=backend)
            assert sol.objective == pytest.approx(-3.0)

    def test_variable_absent_from_constraints(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        y = p.add_variable("y", ub=2.0)
        p.add_constraint(x <= 1)
        p.set_objective(-(x + y))
        sol = solve(p, backend="highs")
        assert sol.value(y) == pytest.approx(2.0)

    def test_equality_with_negative_rhs_builtin(self):
        # Exercises the b<0 row-flip in standardization.
        p = Problem()
        x = p.add_variable("x", lb=None, ub=None)
        p.add_constraint(x == -5)
        p.set_objective(x)
        sol = solve(p, backend="simplex")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.value(x) == pytest.approx(-5.0)
