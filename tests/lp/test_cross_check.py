"""Three-way engine agreement on seeded random bounded LPs.

Fifty deterministic instances (mixed inequality/equality rows, finite
boxes, some infeasible by construction) must agree across all three LP
engines — the sparse revised simplex (``builtin``), the dense tableau
(``tableau``) and HiGHS — on status, on the objective to 1e-6 when
optimal, and on the *feasibility of the recovered solution* (the
objective matching means nothing if the point violates a row).  This is
the contract that lets the branch-and-bound relaxation engine be
swapped freely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.matrix_lp import RelaxationContext, solve_lp_arrays

ENGINES = ("builtin", "tableau", "highs")


def _random_instance(seed: int) -> dict:
    rng = np.random.default_rng(1234 + seed)
    n = int(rng.integers(2, 7))
    m_ub = int(rng.integers(1, 5))
    lb = np.round(rng.uniform(-2.0, 0.0, size=n), 3)
    ub = lb + np.round(rng.uniform(0.5, 4.0, size=n), 3)
    c = np.round(rng.uniform(-5.0, 5.0, size=n), 3)
    a_ub = np.round(rng.uniform(-2.0, 2.0, size=(m_ub, n)), 3)
    x0 = rng.uniform(lb, ub)
    # Centering b_ub near A @ x0 keeps most instances feasible; the
    # negative noise tail makes a deterministic minority infeasible.
    b_ub = a_ub @ x0 + np.round(rng.uniform(-1.5, 1.5, size=m_ub), 3)
    if seed % 3 == 0:
        m_eq = int(rng.integers(1, 3))
        a_eq = np.round(rng.uniform(-1.0, 1.0, size=(m_eq, n)), 3)
        b_eq = a_eq @ x0
    else:
        a_eq = np.zeros((0, n))
        b_eq = np.zeros(0)
    return dict(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, lb=lb, ub=ub)


def _assert_feasible(x: np.ndarray, kw: dict, lb=None, ub=None, tol: float = 1e-6):
    """The recovered point must satisfy every row and every bound."""
    lb = kw["lb"] if lb is None else lb
    ub = kw["ub"] if ub is None else ub
    assert (x >= lb - tol).all(), "lower bound violated"
    assert (x <= ub + tol).all(), "upper bound violated"
    if kw["a_ub"].shape[0]:
        assert (kw["a_ub"] @ x <= kw["b_ub"] + tol).all(), "<= row violated"
    if kw["a_eq"].shape[0]:
        assert np.abs(kw["a_eq"] @ x - kw["b_eq"]).max() <= tol, "= row violated"


@pytest.mark.parametrize("seed", range(50))
def test_three_way_agreement(seed):
    kw = _random_instance(seed)
    results = {eng: solve_lp_arrays(engine=eng, **kw) for eng in ENGINES}
    statuses = {eng: r.status for eng, r in results.items()}
    assert len(set(statuses.values())) == 1, f"status split: {statuses}"
    if results["highs"].status == "optimal":
        ref = results["highs"].objective
        for eng in ("builtin", "tableau"):
            assert results[eng].objective == pytest.approx(ref, rel=1e-6, abs=1e-6), eng
            _assert_feasible(results[eng].x, kw)


@pytest.mark.parametrize("seed", range(0, 50, 7))
@pytest.mark.parametrize("engine", ["builtin", "tableau"])
def test_warm_started_children_agree_with_highs(seed, engine):
    """Cached + warm-started child solves must match fresh HiGHS solves."""
    kw = _random_instance(seed)
    ctx = RelaxationContext(engine=engine, **kw)
    root = ctx.solve()
    if root.status != "optimal":
        pytest.skip("root relaxation infeasible for this seed")
    rng = np.random.default_rng(9000 + seed)
    n = kw["c"].shape[0]
    for _ in range(4):
        lb = kw["lb"].copy()
        ub = kw["ub"].copy()
        j = int(rng.integers(0, n))
        mid = float(rng.uniform(lb[j], ub[j]))
        if rng.random() < 0.5:
            lb[j] = mid
        else:
            ub[j] = mid
        child = ctx.solve(lb, ub, warm=root.warm_token)
        ref = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=ub,
        )
        assert child.status == ref.status
        if ref.status == "optimal":
            assert child.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)
            _assert_feasible(child.x, kw, lb=lb, ub=ub)


@pytest.mark.parametrize("seed", range(0, 50, 11))
@pytest.mark.parametrize("node_resolve", ["dual", "primal"])
def test_revised_warm_chains_stay_consistent(seed, node_resolve):
    """Grandchild solves warm-started off children must still match HiGHS.

    The revised core's tokens carry (basis, vstat) rather than a column
    layout, so chains of warm starts across successive bound tightenings
    exercise the phase-1 repair path on bases that drifted two solves
    back.  Run once through the dual re-solve path (the default) and
    once forcing primal restarts, so both node paths stay covered.
    """
    kw = _random_instance(seed)
    ctx = RelaxationContext(engine="builtin", node_resolve=node_resolve, **kw)
    node = ctx.solve()
    if node.status != "optimal":
        pytest.skip("root relaxation infeasible for this seed")
    rng = np.random.default_rng(4200 + seed)
    lb, ub = kw["lb"].copy(), kw["ub"].copy()
    n = kw["c"].shape[0]
    for _ in range(5):
        j = int(rng.integers(0, n))
        mid = float(rng.uniform(lb[j], ub[j]))
        if rng.random() < 0.5:
            lb[j] = mid
        else:
            ub[j] = mid
        child = ctx.solve(lb, ub, warm=node.warm_token)
        ref = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=ub,
        )
        assert child.status == ref.status
        if child.status != "optimal":
            break
        assert child.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)
        _assert_feasible(child.x, kw, lb=lb, ub=ub)
        node = child
    if node_resolve == "dual":
        assert ctx.dual_entries > 0, "dual path was never attempted"


@pytest.mark.parametrize("seed", range(0, 50, 9))
def test_dual_children_match_tableau_and_highs(seed):
    """Child and grandchild dual re-solves vs the tableau oracle and HiGHS.

    The tableau context runs presolve-free and restarts primal phase 1 at
    every node, so it cross-checks both new subsystems at once: the array
    presolve threaded into the builtin context and the dual simplex the
    warm re-solves enter.  Each branch tightens one bound off the parent
    (child) and then one more off the child (grandchild), mimicking a
    depth-2 branch-and-bound dive.
    """
    kw = _random_instance(seed)
    dual_ctx = RelaxationContext(engine="builtin", node_resolve="dual", **kw)
    tab_ctx = RelaxationContext(engine="tableau", **kw)
    root = dual_ctx.solve()
    assert root.status == tab_ctx.solve().status
    if root.status != "optimal":
        pytest.skip("root relaxation infeasible for this seed")
    rng = np.random.default_rng(7100 + seed)
    n = kw["c"].shape[0]

    def tighten(lb, ub):
        lb, ub = lb.copy(), ub.copy()
        j = int(rng.integers(0, n))
        mid = float(rng.uniform(lb[j], ub[j]))
        if rng.random() < 0.5:
            lb[j] = mid
        else:
            ub[j] = mid
        return lb, ub

    for _ in range(3):
        lb1, ub1 = tighten(kw["lb"], kw["ub"])
        child = dual_ctx.solve(lb1, ub1, warm=root.warm_token)
        oracle = tab_ctx.solve(lb1, ub1)
        assert child.status == oracle.status
        if child.status == "optimal":
            assert child.objective == pytest.approx(
                oracle.objective, rel=1e-6, abs=1e-6
            )
            _assert_feasible(child.x, kw, lb=lb1, ub=ub1)
            lb2, ub2 = tighten(lb1, ub1)
            grand = dual_ctx.solve(lb2, ub2, warm=child.warm_token)
            ref = solve_lp_arrays(
                engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
                a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb2, ub=ub2,
            )
            assert grand.status == ref.status
            if ref.status == "optimal":
                assert grand.objective == pytest.approx(
                    ref.objective, rel=1e-6, abs=1e-6
                )
                _assert_feasible(grand.x, kw, lb=lb2, ub=ub2)
    assert dual_ctx.dual_entries > 0, "dual path was never attempted"
