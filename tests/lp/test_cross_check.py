"""Builtin-simplex vs HiGHS agreement on seeded random bounded LPs.

Fifty deterministic instances (mixed inequality/equality rows, finite
boxes, some infeasible by construction) must agree on status and — when
optimal — on the objective to 1e-6.  This is the contract that lets the
branch-and-bound relaxation engine be swapped freely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.matrix_lp import RelaxationContext, solve_lp_arrays


def _random_instance(seed: int) -> dict:
    rng = np.random.default_rng(1234 + seed)
    n = int(rng.integers(2, 7))
    m_ub = int(rng.integers(1, 5))
    lb = np.round(rng.uniform(-2.0, 0.0, size=n), 3)
    ub = lb + np.round(rng.uniform(0.5, 4.0, size=n), 3)
    c = np.round(rng.uniform(-5.0, 5.0, size=n), 3)
    a_ub = np.round(rng.uniform(-2.0, 2.0, size=(m_ub, n)), 3)
    x0 = rng.uniform(lb, ub)
    # Centering b_ub near A @ x0 keeps most instances feasible; the
    # negative noise tail makes a deterministic minority infeasible.
    b_ub = a_ub @ x0 + np.round(rng.uniform(-1.5, 1.5, size=m_ub), 3)
    if seed % 3 == 0:
        m_eq = int(rng.integers(1, 3))
        a_eq = np.round(rng.uniform(-1.0, 1.0, size=(m_eq, n)), 3)
        b_eq = a_eq @ x0
    else:
        a_eq = np.zeros((0, n))
        b_eq = np.zeros(0)
    return dict(c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, lb=lb, ub=ub)


@pytest.mark.parametrize("seed", range(50))
def test_builtin_agrees_with_highs(seed):
    kw = _random_instance(seed)
    ours = solve_lp_arrays(engine="builtin", **kw)
    ref = solve_lp_arrays(engine="highs", **kw)
    assert ours.status == ref.status
    if ref.status == "optimal":
        assert ours.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)


@pytest.mark.parametrize("seed", range(0, 50, 7))
def test_warm_started_children_agree_with_highs(seed):
    """Cached + warm-started child solves must match fresh HiGHS solves."""
    kw = _random_instance(seed)
    ctx = RelaxationContext(engine="builtin", **kw)
    root = ctx.solve()
    if root.status != "optimal":
        pytest.skip("root relaxation infeasible for this seed")
    rng = np.random.default_rng(9000 + seed)
    n = kw["c"].shape[0]
    for _ in range(4):
        lb = kw["lb"].copy()
        ub = kw["ub"].copy()
        j = int(rng.integers(0, n))
        mid = float(rng.uniform(lb[j], ub[j]))
        if rng.random() < 0.5:
            lb[j] = mid
        else:
            ub[j] = mid
        child = ctx.solve(lb, ub, warm=root.warm_token)
        ref = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=ub,
        )
        assert child.status == ref.status
        if ref.status == "optimal":
            assert child.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)
