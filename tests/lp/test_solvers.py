"""Backend registry and cross-backend agreement tests."""

from __future__ import annotations

import pytest

from repro.lp import (
    Problem,
    Solution,
    SolveStatus,
    available_backends,
    quicksum,
    register_backend,
    solve,
)


def assignment_problem():
    """3 items → 2 bins, with costs; a miniature of the paper's MILP."""
    p = Problem("assign")
    costs = {(0, 0): 4, (0, 1): 2, (1, 0): 3, (1, 1): 5, (2, 0): 1, (2, 1): 6}
    x = {}
    for (i, j), _ in costs.items():
        x[(i, j)] = p.add_binary(f"x{i}{j}")
    for i in range(3):
        p.add_constraint(quicksum(x[(i, j)] for j in range(2)) == 1)
    # bin capacities (weights all 1, cap 2)
    for j in range(2):
        p.add_constraint(quicksum(x[(i, j)] for i in range(3)) <= 2)
    p.set_objective(quicksum(c * x[k] for k, c in costs.items()))
    return p


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        for expected in ("auto", "branch_bound", "highs", "rounding", "simplex"):
            assert expected in names

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            solve(Problem(), backend="cplex")

    def test_register_custom_backend(self):
        def fake(problem, **options):
            return Solution(SolveStatus.ERROR, solver="fake", message="hi")

        register_backend("fake-test", fake)
        sol = solve(Problem(), backend="fake-test")
        assert sol.solver == "fake"
        with pytest.raises(ValueError):
            register_backend("fake-test", fake)


class TestCrossBackendAgreement:
    def test_exact_backends_agree(self):
        p = assignment_problem()
        highs = solve(p, backend="highs")
        bb = solve(p, backend="branch_bound")
        assert highs.status is SolveStatus.OPTIMAL
        assert bb.status is SolveStatus.OPTIMAL
        assert highs.objective == pytest.approx(bb.objective)
        assert highs.objective == pytest.approx(2 + 3 + 1)  # optimal split

    def test_auto_is_exact(self):
        p = assignment_problem()
        sol = solve(p, backend="auto")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(6.0)

    def test_rounding_feasible_but_maybe_suboptimal(self):
        p = assignment_problem()
        sol = solve(p, backend="rounding")
        if sol.status is SolveStatus.FEASIBLE:
            assert sol.objective >= 6.0 - 1e-9
            values = sol.values
            assert p.is_feasible(values)

    def test_simplex_rejects_mips(self):
        with pytest.raises(ValueError, match="pure LPs only"):
            solve(assignment_problem(), backend="simplex")

    def test_simplex_lp_matches_highs_lp(self):
        p = Problem()
        x = p.add_variable("x", ub=4.0)
        y = p.add_variable("y", ub=4.0)
        p.add_constraint(x + y <= 6)
        p.add_constraint(x - y >= -2)
        p.set_objective(-(3 * x + 2 * y))
        s1 = solve(p, backend="simplex")
        s2 = solve(p, backend="highs")
        assert s1.objective == pytest.approx(s2.objective)


class TestSolutionType:
    def test_value_lookup_and_default(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        sol = solve(p, backend="highs")
        assert sol.value(x) == pytest.approx(1.0)
        from repro.lp import Variable

        ghost = Variable("ghost")
        assert sol.value(ghost, 0.5) == 0.5
        with pytest.raises(KeyError):
            sol.value(ghost)

    def test_as_name_dict(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        sol = solve(p, backend="highs")
        assert sol.as_name_dict() == {"x": pytest.approx(1.0)}

    def test_status_has_solution_flags(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.ERROR.has_solution


class TestOptionForwarding:
    """solve(...) must pass extra keyword options through to backends."""

    def test_custom_backend_receives_options(self):
        seen = {}

        def recorder(problem, **options):
            seen.update(options)
            return Solution(SolveStatus.ERROR, solver="recorder")

        register_backend("recorder-test", recorder)
        solve(
            Problem(),
            backend="recorder-test",
            node_limit=7,
            cover_cut_rounds=2,
            time_limit=1.5,
        )
        assert seen == {"node_limit": 7, "cover_cut_rounds": 2, "time_limit": 1.5}

    def test_node_limit_reaches_branch_bound(self):
        # With a node limit of 1 the 8-item knapsack cannot finish; the
        # limit only bites if the option actually reaches the backend.
        p = Problem("knap")
        xs = [p.add_binary(f"x{i}") for i in range(8)]
        p.add_constraint(
            quicksum((i + 1) * x for i, x in enumerate(xs)) <= 12
        )
        p.set_objective(-quicksum((8 - i) * x for i, x in enumerate(xs)))
        sol = solve(p, backend="branch_bound", node_limit=1)
        assert "node limit reached" in sol.message

    def test_cover_cut_rounds_reach_branch_bound(self):
        p = Problem("knap")
        xs = [p.add_binary(f"x{i}") for i in range(4)]
        p.add_constraint(quicksum([5 * xs[0], 4 * xs[1], 3 * xs[2], 2 * xs[3]]) <= 10)
        p.set_objective(-quicksum([10 * xs[0], 40 * xs[1], 30 * xs[2], 50 * xs[3]]))
        sol = solve(p, backend="branch_bound", cover_cut_rounds=3)
        assert sol.status is SolveStatus.OPTIMAL
        # Stats must witness that the cut loop actually ran (or found
        # nothing to cut, in which case rounds stay 0 but solving is
        # still exact); the forwarded option shows up in the record.
        assert sol.stats is not None
        assert sol.stats.cut_rounds >= 0

    def test_relaxation_engine_forwarded(self):
        p = assignment_problem()
        sol = solve(p, backend="branch_bound", relaxation_engine="builtin")
        assert sol.solver == "branch_bound[builtin]"
        assert sol.status is SolveStatus.OPTIMAL


class TestRegisterBackendDuplicates:
    def test_duplicate_name_rejected(self):
        def fake(problem, **options):
            return Solution(SolveStatus.ERROR, solver="dup")

        register_backend("dup-test", fake)
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dup-test", fake)

    def test_builtin_names_cannot_be_shadowed(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("highs", lambda problem, **options: None)


class TestAutoFallback:
    def test_auto_falls_back_to_builtin_branch_bound_without_scipy(
        self, monkeypatch
    ):
        """`auto` must degrade to branch_bound[builtin] when scipy is gone.

        The highs module import is lazy precisely so this path can fire;
        poisoning sys.modules makes any `import scipy` raise ImportError.
        """
        import sys

        monkeypatch.delitem(sys.modules, "repro.lp.highs", raising=False)
        monkeypatch.setitem(sys.modules, "scipy", None)
        p = assignment_problem()
        sol = solve(p, backend="auto")
        assert sol.solver == "branch_bound[builtin]"
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(6.0)
        assert sol.stats is not None
        assert sol.stats.nodes_explored > 0

    def test_auto_uses_highs_when_available(self):
        sol = solve(assignment_problem(), backend="auto")
        assert sol.solver.startswith("highs")


class TestSolveStatsAttached:
    def test_branch_bound_solution_carries_real_stats(self):
        """Regression: stats used to be discarded before Solution was built."""
        p = assignment_problem()
        # The builtin relaxation engine counts its own pivots; HiGHS may
        # solve tiny node LPs entirely in presolve and report 0.
        sol = solve(p, backend="branch_bound", relaxation_engine="builtin")
        stats = sol.stats
        assert stats is not None
        assert stats.nodes_explored > 0
        assert stats.lp_iterations > 0
        import math

        assert math.isfinite(stats.best_bound)
        assert stats.best_bound == pytest.approx(sol.objective)
        assert stats.mip_gap == pytest.approx(0.0, abs=1e-9)
        assert stats.elapsed_seconds >= 0.0

    def test_simplex_solution_carries_phase_split(self):
        p = Problem()
        x = p.add_variable("x", ub=4.0)
        y = p.add_variable("y", ub=4.0)
        p.add_constraint(x + y <= 6)
        p.set_objective(-(3 * x + 2 * y))
        sol = solve(p, backend="simplex")
        stats = sol.stats
        assert stats is not None
        assert stats.lp_iterations == stats.phase1_iterations + stats.phase2_iterations
        assert stats.lp_iterations == sol.iterations
        assert stats.backend == "simplex"

    def test_highs_solution_carries_timing_and_gap(self):
        sol = solve(assignment_problem(), backend="highs")
        stats = sol.stats
        assert stats is not None
        assert stats.backend == "highs"
        assert stats.elapsed_seconds > 0.0
        assert stats.mip_gap == pytest.approx(0.0, abs=1e-6)

    def test_rounding_solution_carries_stats(self):
        sol = solve(assignment_problem(), backend="rounding")
        assert sol.stats is not None
        assert sol.stats.backend == "rounding"


class TestHighsStatuses:
    def test_infeasible(self):
        p = Problem()
        x = p.add_binary("x")
        p.add_constraint(x >= 2)
        p.set_objective(x)
        assert solve(p, backend="highs").status is SolveStatus.INFEASIBLE

    def test_unbounded_lp(self):
        p = Problem()
        x = p.add_variable("x", lb=None, ub=None)
        p.set_objective(x)
        assert solve(p, backend="highs").status is SolveStatus.UNBOUNDED

    def test_equality_constraints(self):
        p = Problem()
        x = p.add_variable("x")
        y = p.add_variable("y")
        p.add_constraint(x + y == 5)
        p.set_objective(x + 2 * y)
        sol = solve(p, backend="highs")
        assert sol.objective == pytest.approx(5.0)

    def test_maximize(self):
        p = Problem(sense="maximize")
        x = p.add_variable("x", ub=3.0)
        p.set_objective(2 * x + 1)
        sol = solve(p, backend="highs")
        assert sol.objective == pytest.approx(7.0)
