"""Backend registry and cross-backend agreement tests."""

from __future__ import annotations

import pytest

from repro.lp import (
    Problem,
    Solution,
    SolveStatus,
    available_backends,
    quicksum,
    register_backend,
    solve,
)


def assignment_problem():
    """3 items → 2 bins, with costs; a miniature of the paper's MILP."""
    p = Problem("assign")
    costs = {(0, 0): 4, (0, 1): 2, (1, 0): 3, (1, 1): 5, (2, 0): 1, (2, 1): 6}
    x = {}
    for (i, j), _ in costs.items():
        x[(i, j)] = p.add_binary(f"x{i}{j}")
    for i in range(3):
        p.add_constraint(quicksum(x[(i, j)] for j in range(2)) == 1)
    # bin capacities (weights all 1, cap 2)
    for j in range(2):
        p.add_constraint(quicksum(x[(i, j)] for i in range(3)) <= 2)
    p.set_objective(quicksum(c * x[k] for k, c in costs.items()))
    return p


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        for expected in ("auto", "branch_bound", "highs", "rounding", "simplex"):
            assert expected in names

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            solve(Problem(), backend="cplex")

    def test_register_custom_backend(self):
        def fake(problem, **options):
            return Solution(SolveStatus.ERROR, solver="fake", message="hi")

        register_backend("fake-test", fake)
        sol = solve(Problem(), backend="fake-test")
        assert sol.solver == "fake"
        with pytest.raises(ValueError):
            register_backend("fake-test", fake)


class TestCrossBackendAgreement:
    def test_exact_backends_agree(self):
        p = assignment_problem()
        highs = solve(p, backend="highs")
        bb = solve(p, backend="branch_bound")
        assert highs.status is SolveStatus.OPTIMAL
        assert bb.status is SolveStatus.OPTIMAL
        assert highs.objective == pytest.approx(bb.objective)
        assert highs.objective == pytest.approx(2 + 3 + 1)  # optimal split

    def test_auto_is_exact(self):
        p = assignment_problem()
        sol = solve(p, backend="auto")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(6.0)

    def test_rounding_feasible_but_maybe_suboptimal(self):
        p = assignment_problem()
        sol = solve(p, backend="rounding")
        if sol.status is SolveStatus.FEASIBLE:
            assert sol.objective >= 6.0 - 1e-9
            values = sol.values
            assert p.is_feasible(values)

    def test_simplex_rejects_mips(self):
        with pytest.raises(ValueError, match="pure LPs only"):
            solve(assignment_problem(), backend="simplex")

    def test_simplex_lp_matches_highs_lp(self):
        p = Problem()
        x = p.add_variable("x", ub=4.0)
        y = p.add_variable("y", ub=4.0)
        p.add_constraint(x + y <= 6)
        p.add_constraint(x - y >= -2)
        p.set_objective(-(3 * x + 2 * y))
        s1 = solve(p, backend="simplex")
        s2 = solve(p, backend="highs")
        assert s1.objective == pytest.approx(s2.objective)


class TestSolutionType:
    def test_value_lookup_and_default(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        sol = solve(p, backend="highs")
        assert sol.value(x) == pytest.approx(1.0)
        from repro.lp import Variable

        ghost = Variable("ghost")
        assert sol.value(ghost, 0.5) == 0.5
        with pytest.raises(KeyError):
            sol.value(ghost)

    def test_as_name_dict(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        sol = solve(p, backend="highs")
        assert sol.as_name_dict() == {"x": pytest.approx(1.0)}

    def test_status_has_solution_flags(self):
        assert SolveStatus.OPTIMAL.has_solution
        assert SolveStatus.FEASIBLE.has_solution
        assert not SolveStatus.INFEASIBLE.has_solution
        assert not SolveStatus.UNBOUNDED.has_solution
        assert not SolveStatus.ERROR.has_solution


class TestHighsStatuses:
    def test_infeasible(self):
        p = Problem()
        x = p.add_binary("x")
        p.add_constraint(x >= 2)
        p.set_objective(x)
        assert solve(p, backend="highs").status is SolveStatus.INFEASIBLE

    def test_unbounded_lp(self):
        p = Problem()
        x = p.add_variable("x", lb=None, ub=None)
        p.set_objective(x)
        assert solve(p, backend="highs").status is SolveStatus.UNBOUNDED

    def test_equality_constraints(self):
        p = Problem()
        x = p.add_variable("x")
        y = p.add_variable("y")
        p.add_constraint(x + y == 5)
        p.set_objective(x + 2 * y)
        sol = solve(p, backend="highs")
        assert sol.objective == pytest.approx(5.0)

    def test_maximize(self):
        p = Problem(sense="maximize")
        x = p.add_variable("x", ub=3.0)
        p.set_objective(2 * x + 1)
        sol = solve(p, backend="highs")
        assert sol.objective == pytest.approx(7.0)
