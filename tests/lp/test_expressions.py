"""Unit and property tests for the linear-expression algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.lp import LinExpr, Sense, Variable, VarType, quicksum


def v(name="x", lb=0.0, ub=None, vtype=VarType.CONTINUOUS):
    return Variable(name, lb=lb, ub=ub, vtype=vtype)


class TestVariable:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_binary_forces_unit_bounds(self):
        var = Variable("b", lb=-5, ub=7, vtype=VarType.BINARY)
        assert var.lb == 0.0
        assert var.ub == 1.0

    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError):
            Variable("x", lb=3.0, ub=2.0)

    def test_none_bounds_mean_unbounded(self):
        var = Variable("x", lb=None, ub=None)
        assert var.lb is None and var.ub is None

    def test_is_integral(self):
        assert Variable("i", vtype=VarType.INTEGER).is_integral
        assert Variable("b", vtype=VarType.BINARY).is_integral
        assert not Variable("c").is_integral

    def test_identity_hash_distinguishes_same_name(self):
        a, b = Variable("x"), Variable("x")
        assert a is not b
        assert len({a, b}) == 2

    def test_repr_mentions_name(self):
        assert "x" in repr(Variable("x"))


class TestLinExprAlgebra:
    def test_variable_plus_number(self):
        x = v()
        expr = x + 3
        assert expr.coefficient(x) == 1.0
        assert expr.constant == 3.0

    def test_radd(self):
        x = v()
        expr = 3 + x
        assert expr.coefficient(x) == 1.0
        assert expr.constant == 3.0

    def test_subtraction(self):
        x, y = v("x"), v("y")
        expr = 2 * x - y - 1
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == -1.0
        assert expr.constant == -1.0

    def test_rsub(self):
        x = v()
        expr = 5 - x
        assert expr.coefficient(x) == -1.0
        assert expr.constant == 5.0

    def test_scalar_multiplication_both_sides(self):
        x = v()
        assert (x * 3).coefficient(x) == 3.0
        assert (3 * x).coefficient(x) == 3.0

    def test_division(self):
        x = v()
        assert (x / 4).coefficient(x) == 0.25

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            v() / 0

    def test_expr_times_expr_rejected(self):
        x, y = v("x"), v("y")
        with pytest.raises(TypeError):
            x.to_expr() * y.to_expr()

    def test_negation(self):
        x = v()
        expr = -(2 * x + 1)
        assert expr.coefficient(x) == -2.0
        assert expr.constant == -1.0

    def test_cancellation_drops_term(self):
        x = v()
        expr = x - x
        assert expr.is_constant()
        assert x not in expr.terms()

    def test_zero_coefficients_never_stored(self):
        x = v()
        assert LinExpr({x: 0.0}).is_constant()

    def test_multiply_by_zero_clears_terms(self):
        x = v()
        expr = (2 * x + 1) * 0
        assert expr.is_constant()
        assert expr.constant == 0.0

    def test_nan_constant_rejected(self):
        with pytest.raises(ValueError):
            v() + float("nan")

    def test_nan_scalar_rejected(self):
        with pytest.raises(ValueError):
            v() * float("nan")

    def test_evaluate(self):
        x, y = v("x"), v("y")
        expr = 2 * x + 3 * y - 4
        assert expr.evaluate({x: 1.0, y: 2.0}) == pytest.approx(4.0)

    def test_evaluate_missing_variable(self):
        x = v()
        with pytest.raises(KeyError):
            (x + 1).evaluate({})

    def test_non_variable_key_rejected(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 1.0})  # type: ignore[dict-item]


class TestQuicksum:
    def test_mixed_items(self):
        x, y = v("x"), v("y")
        expr = quicksum([x, 2 * y, 5, x])
        assert expr.coefficient(x) == 2.0
        assert expr.coefficient(y) == 2.0
        assert expr.constant == 5.0

    def test_empty(self):
        expr = quicksum([])
        assert expr.is_constant()
        assert expr.constant == 0.0

    def test_generator_input(self):
        xs = [v(f"x{i}") for i in range(5)]
        expr = quicksum(x * i for i, x in enumerate(xs))
        assert expr.coefficient(xs[0]) == 0.0
        assert expr.coefficient(xs[4]) == 4.0

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            quicksum(["nope"])

    def test_matches_builtin_sum(self):
        xs = [v(f"x{i}") for i in range(4)]
        a = quicksum(xs)
        b = sum(xs[1:], xs[0].to_expr())
        assert a.terms() == b.terms()


class TestConstraints:
    def test_le_normalization(self):
        x, y = v("x"), v("y")
        con = 2 * x + 1 <= y + 5
        assert con.sense is Sense.LE
        assert con.rhs == pytest.approx(4.0)
        assert con.expr.coefficient(x) == 2.0
        assert con.expr.coefficient(y) == -1.0
        assert con.expr.constant == 0.0

    def test_ge(self):
        x = v()
        con = x >= 3
        assert con.sense is Sense.GE
        assert con.rhs == 3.0

    def test_eq_builds_constraint(self):
        x = v()
        con = x.to_expr() == 7
        assert con.sense is Sense.EQ
        assert con.rhs == 7.0

    def test_variable_eq_number(self):
        x = v()
        con = x == 2
        assert con.sense is Sense.EQ

    def test_satisfaction(self):
        x = v()
        con = x <= 5
        assert con.is_satisfied({x: 5.0})
        assert con.is_satisfied({x: 4.0})
        assert not con.is_satisfied({x: 5.1})

    def test_violation_magnitude(self):
        x = v()
        assert (x <= 5).violation({x: 7.0}) == pytest.approx(2.0)
        assert (x >= 5).violation({x: 3.0}) == pytest.approx(2.0)
        assert (x.to_expr() == 5).violation({x: 3.0}) == pytest.approx(2.0)
        assert (x <= 5).violation({x: 1.0}) == 0.0

    def test_with_name(self):
        x = v()
        con = (x <= 1).with_name("cap")
        assert con.name == "cap"
        assert "cap" in repr(con)

    def test_invalid_rhs(self):
        x = v()
        with pytest.raises(TypeError):
            x <= "big"  # type: ignore[operator]


# -- property-based ----------------------------------------------------------
coef = st.floats(min_value=-100, max_value=100, allow_nan=False)
val = st.floats(min_value=-10, max_value=10, allow_nan=False)


@given(a=coef, b=coef, c=coef, x_val=val, y_val=val)
def test_evaluate_is_linear(a, b, c, x_val, y_val):
    x, y = Variable("x"), Variable("y")
    expr = a * x + b * y + c
    expected = a * x_val + b * y_val + c
    assert math.isclose(expr.evaluate({x: x_val, y: y_val}), expected, abs_tol=1e-6)


@given(a=coef, b=coef, k=st.floats(min_value=-50, max_value=50, allow_nan=False), x_val=val)
def test_scaling_distributes(a, b, k, x_val):
    x = Variable("x")
    lhs = ((a * x + b) * k).evaluate({x: x_val})
    rhs = k * (a * x_val + b)
    assert math.isclose(lhs, rhs, abs_tol=1e-6)


@given(coeffs=st.lists(coef, min_size=1, max_size=8), x_val=val)
def test_quicksum_equals_sequential_addition(coeffs, x_val):
    xs = [Variable(f"x{i}") for i in range(len(coeffs))]
    values = {x: x_val for x in xs}
    quick = quicksum(c * x for c, x in zip(coeffs, xs))
    slow = LinExpr()
    for c, x in zip(coeffs, xs):
        slow = slow + c * x
    assert math.isclose(quick.evaluate(values), slow.evaluate(values), abs_tol=1e-6)


@given(a=coef, b=coef, x_val=val)
def test_addition_commutes(a, b, x_val):
    x = Variable("x")
    e1 = (a * x) + (b * x + 1)
    e2 = (b * x + 1) + (a * x)
    assert math.isclose(e1.evaluate({x: x_val}), e2.evaluate({x: x_val}), abs_tol=1e-6)
