"""Typed SolveOptions, the legacy-kwargs shim, and the SolveCache."""

from __future__ import annotations

import pytest

from repro.lp import (
    Problem,
    SolveCache,
    SolveOptions,
    problem_fingerprint,
    quicksum,
    solve,
    structure_fingerprint,
)
from repro.lp.options import BACKEND_OPTION_FIELDS, options_from_kwargs


class TestSolveOptionsValidation:
    def test_defaults_valid_everywhere(self):
        for backend in BACKEND_OPTION_FIELDS:
            SolveOptions().validate_for(backend)

    def test_rejects_field_backend_ignores(self):
        opts = SolveOptions(mip_rel_gap=0.01)
        with pytest.raises(ValueError, match="mip_rel_gap"):
            opts.validate_for("branch_bound")
        with pytest.raises(ValueError, match="node_limit"):
            SolveOptions(node_limit=5).validate_for("highs")
        with pytest.raises(ValueError, match="time_limit"):
            SolveOptions(time_limit=1.0).validate_for("simplex")

    def test_error_lists_supported_options(self):
        with pytest.raises(ValueError, match="supported options"):
            SolveOptions(cover_cut_rounds=1).validate_for("highs")

    def test_unknown_backend_accepts_everything(self):
        SolveOptions(mip_rel_gap=0.5, node_limit=3).validate_for("my_custom")

    def test_field_invariants(self):
        with pytest.raises(ValueError):
            SolveOptions(time_limit=0.0)
        with pytest.raises(ValueError):
            SolveOptions(node_limit=0)
        with pytest.raises(ValueError):
            SolveOptions(relaxation_engine="cplex")
        with pytest.raises(ValueError):
            SolveOptions(cover_cut_rounds=-1)

    def test_replace_returns_validated_copy(self):
        opts = SolveOptions().replace(time_limit=2.0)
        assert opts.time_limit == 2.0
        assert SolveOptions().time_limit is None  # frozen original untouched

    def test_non_default_fields_only_reports_changes(self):
        assert SolveOptions().non_default_fields() == {}
        assert SolveOptions(node_limit=7).non_default_fields() == {"node_limit": 7}


class TestLegacyKwargsShim:
    def test_kwargs_warn_deprecation(self):
        with pytest.warns(DeprecationWarning, match="SolveOptions"):
            opts = options_from_kwargs("branch_bound", {"node_limit": 9})
        assert opts.node_limit == 9

    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="unknown solver option"):
            options_from_kwargs("highs", {"tim_limit": 1.0})

    def test_solve_accepts_legacy_kwargs(self):
        p = Problem("shim")
        x = p.add_binary("x")
        p.set_objective(-x)
        with pytest.warns(DeprecationWarning):
            sol = solve(p, backend="branch_bound", node_limit=50)
        assert sol.objective == pytest.approx(-1.0)

    def test_options_and_kwargs_together_rejected(self):
        p = Problem("both")
        x = p.add_binary("x")
        p.set_objective(-x)
        with pytest.raises(TypeError, match="not both"):
            solve(p, backend="branch_bound", options=SolveOptions(), node_limit=5)


def knapsack(n: int = 6) -> Problem:
    p = Problem("knap")
    xs = [p.add_binary(f"x{i}") for i in range(n)]
    p.add_constraint(quicksum(x * (i + 1) for i, x in enumerate(xs)) <= n)
    p.set_objective(-quicksum(x * (2 * i + 1) for i, x in enumerate(xs)))
    return p


class TestFingerprints:
    def test_bound_edit_changes_full_but_not_structure(self):
        p = knapsack()
        full, structural = problem_fingerprint(p), structure_fingerprint(p)
        p.variables[0].ub = 0.0
        assert problem_fingerprint(p) != full
        assert structure_fingerprint(p) == structural

    def test_new_row_changes_both(self):
        p = knapsack()
        full, structural = problem_fingerprint(p), structure_fingerprint(p)
        xs = p.variables
        p.add_constraint(xs[0] + xs[1] <= 1)
        assert problem_fingerprint(p) != full
        assert structure_fingerprint(p) != structural

    def test_constraint_display_name_is_ignored(self):
        a, b = knapsack(), knapsack()
        xs = b.variables
        # same row, different display name: same model
        a.add_constraint(a.variables[0] <= 1, "pretty")
        b.add_constraint(xs[0] <= 1, "c_ugly")
        assert problem_fingerprint(a) == problem_fingerprint(b)


class TestSolveCache:
    def test_identical_resolve_is_a_hit(self):
        p = knapsack()
        cache = SolveCache()
        first = solve(p, backend="branch_bound", cache=cache)
        second = solve(p, backend="branch_bound", cache=cache)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_tightening_kept_optimum_short_circuits(self):
        p = knapsack()
        cache = SolveCache()
        first = solve(p, backend="branch_bound", cache=cache)
        loser = next(v for v in p.variables if first.value(v) < 0.5)
        loser.ub = 0.0  # forbids a variable the optimum never used
        again = solve(p, backend="branch_bound", cache=cache)
        assert again.objective == first.objective
        assert cache.tightening_reuses == 1

    def test_tightening_that_cuts_optimum_resolves(self):
        p = knapsack()
        cache = SolveCache()
        first = solve(p, backend="branch_bound", cache=cache)
        winner = next(v for v in p.variables if first.value(v) > 0.5)
        winner.ub = 0.0
        again = solve(p, backend="branch_bound", cache=cache)
        assert cache.tightening_reuses == 0
        assert again.objective > first.objective  # minimization got worse
        assert again.value(winner) == 0.0

    def test_loosening_never_short_circuits(self):
        p = Problem("loose")
        x = p.add_integer("x", lb=0, ub=3)
        p.add_constraint(x >= 1)
        p.set_objective(x)
        cache = SolveCache()
        solve(p, backend="branch_bound", cache=cache)
        x.ub = 5.0  # loosened: region grew, the shortcut would be unsound
        solve(p, backend="branch_bound", cache=cache)
        assert cache.tightening_reuses == 0
        assert cache.misses == 2

    def test_context_reused_across_bound_changes(self):
        p = knapsack()
        cache = SolveCache()
        opts = SolveOptions(relaxation_engine="builtin")
        first = solve(p, backend="branch_bound", options=opts, cache=cache)
        winner = next(v for v in p.variables if first.value(v) > 0.5)
        winner.ub = 0.0
        solve(p, backend="branch_bound", options=opts, cache=cache)
        assert cache.context_rebuilds == 1
        assert cache.context_reuses == 1

    def test_added_row_extends_context_in_place(self):
        p = knapsack()
        cache = SolveCache()
        opts = SolveOptions(relaxation_engine="builtin")
        first = solve(p, backend="branch_bound", options=opts, cache=cache)
        winner = next(v for v in p.variables if first.value(v) > 0.5)
        p.add_constraint(winner <= 0)
        second = solve(p, backend="branch_bound", options=opts, cache=cache)
        # The appended inequality extends the cached context instead of
        # forcing a rebuild, and the answer matches a cold solve.
        assert cache.context_rebuilds == 1
        assert cache.context_extensions == 1
        cold = solve(p, backend="branch_bound", options=opts, cache=SolveCache())
        assert second.objective == pytest.approx(cold.objective)
        assert second.value(winner) == pytest.approx(0.0, abs=1e-6)

    def test_removed_row_rebuilds_context(self):
        p = knapsack()
        cache = SolveCache()
        opts = SolveOptions(relaxation_engine="builtin")
        keep = len(p.constraints)
        p.add_constraint(p.variables[0] <= 1)
        solve(p, backend="branch_bound", options=opts, cache=cache)
        p.truncate_constraints(keep)
        solve(p, backend="branch_bound", options=opts, cache=cache)
        assert cache.context_rebuilds == 2
        assert cache.context_extensions == 0

    def test_clear_forgets_everything(self):
        p = knapsack()
        cache = SolveCache()
        solve(p, backend="branch_bound", cache=cache)
        cache.clear()
        assert cache.last_solution is None
        solve(p, backend="branch_bound", cache=cache)
        assert cache.misses == 2

    def test_eviction_respects_max_solutions(self):
        p = knapsack()
        cache = SolveCache(max_solutions=1)
        solve(p, backend="branch_bound", cache=cache)
        p.variables[0].ub = 0.0
        solve(p, backend="branch_bound", cache=cache)
        p.variables[0].ub = 1.0  # back to the first state: evicted by entry 2
        solve(p, backend="branch_bound", cache=cache)
        assert cache.hits == 0
        assert len(cache._solutions) == 1

    def test_works_with_highs_backend_too(self):
        p = knapsack()
        cache = SolveCache()
        first = solve(p, backend="highs", cache=cache)
        second = solve(p, backend="highs", cache=cache)
        assert second is first
        assert cache.hits == 1
