"""HiGHS backend specifics."""

from __future__ import annotations

import pytest

from repro.lp import Problem, SolveStatus, quicksum
from repro.lp.highs import solve_with_highs


class TestMILP:
    def test_empty_constraint_model(self):
        p = Problem()
        x = p.add_binary("x")
        p.set_objective(-x)
        sol = solve_with_highs(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-1.0)

    def test_values_rounded_to_integers(self):
        p = Problem()
        xs = [p.add_binary(f"x{i}") for i in range(5)]
        p.add_constraint(quicksum(xs) <= 3)
        p.set_objective(-quicksum((i + 1) * x for i, x in enumerate(xs)))
        sol = solve_with_highs(p)
        for x in xs:
            assert sol.value(x) in (0.0, 1.0)

    def test_mip_rel_gap_option(self):
        p = Problem()
        xs = [p.add_binary(f"x{i}") for i in range(8)]
        p.add_constraint(quicksum((i + 1) * x for i, x in enumerate(xs)) <= 12)
        p.set_objective(-quicksum((8 - i) * x for i, x in enumerate(xs)))
        sol = solve_with_highs(p, mip_rel_gap=0.5)
        assert sol.status.has_solution

    def test_time_limit_option_accepted(self):
        p = Problem()
        x = p.add_binary("x")
        p.set_objective(x)
        sol = solve_with_highs(p, time_limit=10.0)
        assert sol.status is SolveStatus.OPTIMAL

    def test_objective_constant_preserved(self):
        p = Problem()
        x = p.add_binary("x")
        p.set_objective(x + 100)
        sol = solve_with_highs(p)
        assert sol.objective == pytest.approx(100.0)

    def test_maximize_mip(self):
        p = Problem(sense="maximize")
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(x + y <= 1)
        p.set_objective(3 * x + 2 * y + 1)
        sol = solve_with_highs(p)
        assert sol.objective == pytest.approx(4.0)

    def test_integer_variable_with_bounds(self):
        p = Problem()
        x = p.add_integer("x", lb=2, ub=7)
        p.set_objective(x)
        sol = solve_with_highs(p)
        assert sol.value(x) == pytest.approx(2.0)


class TestLP:
    def test_pure_lp_goes_through_linprog(self):
        p = Problem()
        x = p.add_variable("x", ub=5.0)
        p.set_objective(-x)
        sol = solve_with_highs(p)
        assert sol.solver == "highs-lp"
        assert sol.objective == pytest.approx(-5.0)

    def test_lp_with_mixed_row_senses(self):
        p = Problem()
        x = p.add_variable("x")
        y = p.add_variable("y")
        p.add_constraint(x + y <= 10)
        p.add_constraint(x - y >= -3)
        p.add_constraint(x + 2 * y == 8)
        p.set_objective(x + y)
        sol = solve_with_highs(p)
        assert sol.status is SolveStatus.OPTIMAL
        values = sol.values
        assert p.is_feasible(values)

    def test_lp_infeasible(self):
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.add_constraint(x >= 2)
        p.set_objective(x)
        assert solve_with_highs(p).status is SolveStatus.INFEASIBLE


def test_silencer_restores_stdout(capfd):
    from repro.lp.highs import _silence_native_stdout
    import os

    with _silence_native_stdout():
        os.write(1, b"hidden\n")
    print("visible")
    out = capfd.readouterr().out
    assert "visible" in out
    assert "hidden" not in out
