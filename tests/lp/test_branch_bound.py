"""Branch-and-bound MILP solver: unit cases + equivalence with HiGHS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Problem, SolveStatus, quicksum, solve
from repro.lp.branch_bound import solve_branch_and_bound


def knapsack(weights, values, cap):
    p = Problem("knap")
    xs = [p.add_binary(f"x{i}") for i in range(len(weights))]
    p.add_constraint(quicksum(w * x for w, x in zip(weights, xs)) <= cap)
    p.set_objective(-quicksum(v * x for v, x in zip(values, xs)))
    return p, xs


class TestBranchBound:
    @pytest.mark.parametrize("engine", ["highs", "builtin"])
    def test_knapsack_optimum(self, engine):
        p, xs = knapsack([3, 4, 2], [4, 5, 3], 6)
        sol = solve_branch_and_bound(p, relaxation_engine=engine)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-8.0)

    def test_pure_lp_passthrough(self):
        p = Problem()
        x = p.add_variable("x", ub=2.0)
        p.set_objective(-x)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-2.0)

    def test_infeasible_mip(self):
        p = Problem()
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(x + y >= 3)
        p.set_objective(x + y)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0)
        z = p.add_binary("z")
        p.set_objective(-x + z)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_general_integer_variables(self):
        p = Problem()
        x = p.add_integer("x", lb=0, ub=10)
        y = p.add_integer("y", lb=0, ub=10)
        p.add_constraint(2 * x + 3 * y <= 12)
        p.set_objective(-(3 * x + 4 * y))
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        # optimum: x=6,y=0 → -18 vs x=3,y=2 → -17; x=6 wins
        assert sol.objective == pytest.approx(-18.0)

    def test_values_are_integral(self):
        p, xs = knapsack([5, 4, 3, 2], [10, 40, 30, 50], 10)
        sol = solve_branch_and_bound(p)
        for x in xs:
            v = sol.value(x)
            assert v == pytest.approx(round(v))

    def test_node_limit_degrades_gracefully(self):
        p, xs = knapsack(list(range(1, 9)), list(range(8, 0, -1)), 12)
        sol = solve_branch_and_bound(p, node_limit=1)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR)

    def test_fractional_costs(self):
        p = Problem()
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(1.5 * x + 2.5 * y <= 3.0)
        p.set_objective(-(1.1 * x + 1.9 * y))
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-1.9)

    def test_mixed_integer_and_continuous(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=5.0)
        z = p.add_binary("z")
        # x can only be positive when the binary facility is open.
        p.add_constraint(x <= 5 * z)
        p.set_objective(-(2 * x) + 3 * z)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-7.0)  # open: -10 + 3


class TestSearchStats:
    """The stats record attached to every branch-and-bound solution."""

    def test_stats_survive_into_solution(self):
        p, _ = knapsack([5, 4, 3, 2], [10, 40, 30, 50], 10)
        sol = solve_branch_and_bound(p)
        stats = sol.stats
        assert stats is not None
        assert stats.nodes_explored > 0
        assert stats.nodes_explored == sol.iterations
        assert stats.lp_iterations > 0
        assert np.isfinite(stats.best_bound)

    def test_optimal_solve_closes_the_gap(self):
        p, _ = knapsack([3, 4, 2], [4, 5, 3], 6)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.stats.best_bound == pytest.approx(sol.objective)
        assert sol.stats.mip_gap == pytest.approx(0.0, abs=1e-9)
        assert sol.stats.incumbent == pytest.approx(sol.objective)

    def test_gap_trajectory_recorded(self):
        p, _ = knapsack([5, 4, 3, 2], [10, 40, 30, 50], 10)
        sol = solve_branch_and_bound(p)
        trajectory = sol.stats.gap_trajectory
        assert len(trajectory) >= 1
        # The last recorded point must reflect the closed bound.
        assert trajectory[-1].best_bound == pytest.approx(sol.objective)

    def test_node_limit_message_reports_gap(self):
        p, _ = knapsack(list(range(1, 9)), list(range(8, 0, -1)), 12)
        sol = solve_branch_and_bound(p, node_limit=1)
        assert "node limit reached" in sol.message
        # Either a gap percentage or an explicit no-incumbent marker.
        assert "gap" in sol.message or "no incumbent" in sol.message

    def test_maximize_best_bound_in_user_space(self):
        p = Problem(sense="maximize")
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(x + y <= 1)
        p.set_objective(2 * x + 3 * y)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(3.0)
        assert sol.stats.best_bound == pytest.approx(3.0)

    def test_cut_stats_counted(self):
        p, _ = knapsack([5, 4, 3, 2], [10, 40, 30, 50], 10)
        sol = solve_branch_and_bound(p, cover_cut_rounds=3)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.stats.cut_rounds <= 3
        assert sol.stats.cuts_added >= sol.stats.cut_rounds


class TestNonRootUnbounded:
    """A non-root unbounded relaxation must not assert MILP unboundedness.

    With exact node LPs a child relaxation can never be unbounded when
    the root was bounded (child feasible sets shrink), so the defensive
    path is exercised by stubbing the relaxation solver.
    """

    @staticmethod
    def _stub_relaxations(monkeypatch, responses):
        from repro.lp import branch_bound as bb

        calls = iter(responses)

        def fake_context_solve(self, lb=None, ub=None, warm=None):
            return next(calls)

        monkeypatch.setattr(bb.RelaxationContext, "solve", fake_context_solve)

    def test_no_incumbent_reports_error_not_unbounded(self, monkeypatch):
        from repro.lp.matrix_lp import ArrayLPResult

        p, _ = knapsack([1, 1], [1, 2], 1)
        fractional = np.array([0.5, 0.5])
        self._stub_relaxations(
            monkeypatch,
            [
                ArrayLPResult("optimal", fractional, -1.5, 3),
                ArrayLPResult("unbounded", None, -np.inf, 1),
            ],
        )
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.ERROR
        assert "no incumbent" in sol.message
        assert "unbounded ray" in sol.message

    def test_incumbent_survives_unbounded_ray(self, monkeypatch):
        from repro.lp.matrix_lp import ArrayLPResult

        p, _ = knapsack([1, 1], [1, 2], 1)
        fractional = np.array([0.5, 0.5])
        integral = np.array([0.0, 1.0])
        self._stub_relaxations(
            monkeypatch,
            [
                ArrayLPResult("optimal", fractional, -2.5, 3),
                ArrayLPResult("optimal", integral, -2.0, 2),
                ArrayLPResult("unbounded", None, -np.inf, 1),
            ],
        )
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.FEASIBLE
        assert "incumbent" in sol.message
        assert sol.objective == pytest.approx(-2.0)

    def test_root_unbounded_milp_still_unbounded(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0)
        z = p.add_binary("z")
        p.set_objective(-x + z)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.UNBOUNDED
        assert "root relaxation unbounded" in sol.message


@st.composite
def random_knapsack(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    weights = draw(st.lists(st.integers(min_value=1, max_value=9), min_size=n, max_size=n))
    values = draw(st.lists(st.integers(min_value=1, max_value=9), min_size=n, max_size=n))
    cap = draw(st.integers(min_value=1, max_value=sum(weights)))
    return weights, values, cap


@given(random_knapsack())
@settings(max_examples=40, deadline=None)
def test_branch_bound_matches_highs(data):
    weights, values, cap = data
    p, _ = knapsack(weights, values, cap)
    ours = solve_branch_and_bound(p, relaxation_engine="highs")
    ref = solve(p, backend="highs")
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status is SolveStatus.OPTIMAL
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


@given(random_knapsack())
@settings(max_examples=15, deadline=None)
def test_builtin_relaxation_agrees_with_highs_relaxation(data):
    weights, values, cap = data
    p, _ = knapsack(weights, values, cap)
    a = solve_branch_and_bound(p, relaxation_engine="builtin")
    b = solve_branch_and_bound(p, relaxation_engine="highs")
    assert a.objective == pytest.approx(b.objective, abs=1e-6)
