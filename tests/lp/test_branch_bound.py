"""Branch-and-bound MILP solver: unit cases + equivalence with HiGHS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Problem, SolveStatus, quicksum, solve
from repro.lp.branch_bound import solve_branch_and_bound


def knapsack(weights, values, cap):
    p = Problem("knap")
    xs = [p.add_binary(f"x{i}") for i in range(len(weights))]
    p.add_constraint(quicksum(w * x for w, x in zip(weights, xs)) <= cap)
    p.set_objective(-quicksum(v * x for v, x in zip(values, xs)))
    return p, xs


class TestBranchBound:
    @pytest.mark.parametrize("engine", ["highs", "builtin"])
    def test_knapsack_optimum(self, engine):
        p, xs = knapsack([3, 4, 2], [4, 5, 3], 6)
        sol = solve_branch_and_bound(p, relaxation_engine=engine)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-8.0)

    def test_pure_lp_passthrough(self):
        p = Problem()
        x = p.add_variable("x", ub=2.0)
        p.set_objective(-x)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-2.0)

    def test_infeasible_mip(self):
        p = Problem()
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(x + y >= 3)
        p.set_objective(x + y)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.INFEASIBLE

    def test_unbounded(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0)
        z = p.add_binary("z")
        p.set_objective(-x + z)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.UNBOUNDED

    def test_general_integer_variables(self):
        p = Problem()
        x = p.add_integer("x", lb=0, ub=10)
        y = p.add_integer("y", lb=0, ub=10)
        p.add_constraint(2 * x + 3 * y <= 12)
        p.set_objective(-(3 * x + 4 * y))
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        # optimum: x=6,y=0 → -18 vs x=3,y=2 → -17; x=6 wins
        assert sol.objective == pytest.approx(-18.0)

    def test_values_are_integral(self):
        p, xs = knapsack([5, 4, 3, 2], [10, 40, 30, 50], 10)
        sol = solve_branch_and_bound(p)
        for x in xs:
            v = sol.value(x)
            assert v == pytest.approx(round(v))

    def test_node_limit_degrades_gracefully(self):
        p, xs = knapsack(list(range(1, 9)), list(range(8, 0, -1)), 12)
        sol = solve_branch_and_bound(p, node_limit=1)
        assert sol.status in (SolveStatus.FEASIBLE, SolveStatus.ERROR)

    def test_fractional_costs(self):
        p = Problem()
        x = p.add_binary("x")
        y = p.add_binary("y")
        p.add_constraint(1.5 * x + 2.5 * y <= 3.0)
        p.set_objective(-(1.1 * x + 1.9 * y))
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-1.9)

    def test_mixed_integer_and_continuous(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=5.0)
        z = p.add_binary("z")
        # x can only be positive when the binary facility is open.
        p.add_constraint(x <= 5 * z)
        p.set_objective(-(2 * x) + 3 * z)
        sol = solve_branch_and_bound(p)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(-7.0)  # open: -10 + 3


@st.composite
def random_knapsack(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    weights = draw(st.lists(st.integers(min_value=1, max_value=9), min_size=n, max_size=n))
    values = draw(st.lists(st.integers(min_value=1, max_value=9), min_size=n, max_size=n))
    cap = draw(st.integers(min_value=1, max_value=sum(weights)))
    return weights, values, cap


@given(random_knapsack())
@settings(max_examples=40, deadline=None)
def test_branch_bound_matches_highs(data):
    weights, values, cap = data
    p, _ = knapsack(weights, values, cap)
    ours = solve_branch_and_bound(p, relaxation_engine="highs")
    ref = solve(p, backend="highs")
    assert ours.status is SolveStatus.OPTIMAL
    assert ref.status is SolveStatus.OPTIMAL
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


@given(random_knapsack())
@settings(max_examples=15, deadline=None)
def test_builtin_relaxation_agrees_with_highs_relaxation(data):
    weights, values, cap = data
    p, _ = knapsack(weights, values, cap)
    a = solve_branch_and_bound(p, relaxation_engine="builtin")
    b = solve_branch_and_bound(p, relaxation_engine="highs")
    assert a.objective == pytest.approx(b.objective, abs=1e-6)
