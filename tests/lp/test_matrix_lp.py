"""Array-level LP interface used by branch-and-bound nodes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp.matrix_lp import solve_lp_arrays


def arrays(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, lb=None, ub=None):
    n = len(c)
    return dict(
        c=np.array(c, dtype=float),
        a_ub=np.array(a_ub, dtype=float) if a_ub is not None else np.zeros((0, n)),
        b_ub=np.array(b_ub, dtype=float) if b_ub is not None else np.zeros(0),
        a_eq=np.array(a_eq, dtype=float) if a_eq is not None else np.zeros((0, n)),
        b_eq=np.array(b_eq, dtype=float) if b_eq is not None else np.zeros(0),
        lb=np.array(lb, dtype=float) if lb is not None else np.zeros(n),
        ub=np.array(ub, dtype=float) if ub is not None else np.full(n, np.inf),
    )


@pytest.mark.parametrize("engine", ["highs", "builtin"])
class TestEngines:
    def test_bounded_lp(self, engine):
        kw = arrays([-1.0, -2.0], a_ub=[[1, 1]], b_ub=[4], ub=[3, 2])
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-6.0)

    def test_equality_rows(self, engine):
        kw = arrays([1.0, 1.0], a_eq=[[1, -1]], b_eq=[1], ub=[5, 5])
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(1.0)  # x=1, y=0

    def test_shifted_lower_bounds(self, engine):
        kw = arrays([1.0], lb=[2.0], ub=[9.0])
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(2.0)

    def test_free_variable(self, engine):
        kw = arrays([1.0], a_ub=[[-1.0]], b_ub=[5.0],
                    lb=[-np.inf], ub=[np.inf])  # x >= -5
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "optimal"
        assert res.x[0] == pytest.approx(-5.0)

    def test_infeasible(self, engine):
        kw = arrays([1.0], a_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])  # x<=1, x>=2
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "infeasible"

    def test_unbounded(self, engine):
        kw = arrays([-1.0])
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "unbounded"

    def test_crossed_bounds_short_circuit(self, engine):
        kw = arrays([1.0], lb=[3.0], ub=[2.0])
        res = solve_lp_arrays(engine=engine, **kw)
        assert res.status == "infeasible"


def test_unknown_engine():
    with pytest.raises(ValueError):
        solve_lp_arrays(engine="cplex", **arrays([1.0]))


bounded = st.floats(min_value=-4, max_value=4, allow_nan=False)


@given(
    c=st.lists(bounded, min_size=2, max_size=5),
    rows=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_builtin_matches_highs_on_random_bounded_lps(c, rows, seed):
    rng = np.random.default_rng(seed)
    n = len(c)
    a_ub = rng.uniform(-2, 2, size=(rows, n))
    b_ub = rng.uniform(1, 5, size=rows)  # x=0 always feasible
    kw = arrays(c, a_ub=a_ub, b_ub=b_ub, ub=[3.0] * n)
    ours = solve_lp_arrays(engine="builtin", **kw)
    ref = solve_lp_arrays(engine="highs", **kw)
    assert ours.status == ref.status == "optimal"
    assert ours.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)


class TestHighsIterationLimit:
    """Regression: HiGHS status 1 must keep its message, not a bare error."""

    def test_status_one_maps_to_iteration_limit_error(self, monkeypatch):
        import scipy.optimize

        class _Res:
            status = 1
            success = False
            nit = 7
            message = "Iteration limit reached"
            x = None
            fun = None

        monkeypatch.setattr(scipy.optimize, "linprog", lambda *a, **kw: _Res())
        res = solve_lp_arrays(engine="highs", **arrays([1.0]))
        assert res.status == "error"
        assert "iteration_limit" in res.message
        assert "Iteration limit reached" in res.message
        assert res.iterations == 7

    def test_other_errors_carry_the_solver_message(self, monkeypatch):
        import scipy.optimize

        class _Res:
            status = 4
            success = False
            nit = 3
            message = "numerical difficulties"
            x = None
            fun = None

        monkeypatch.setattr(scipy.optimize, "linprog", lambda *a, **kw: _Res())
        res = solve_lp_arrays(engine="highs", **arrays([1.0]))
        assert res.status == "error"
        assert "numerical difficulties" in res.message
