"""Pin the historical reference path against the shared sparse assembly.

``solve_lp_arrays_reference`` (the per-row Python-loop standardization
kept from before the node cache) is the oracle every cross-check leans
on, and ``to_matrix_form`` now *derives* its dense matrices from
:func:`repro.lp.sparse.constraint_blocks`.  These tests pin the two
together so the baseline cannot silently drift from what the sparse
assembly feeds the engines:

* the dense view derived from the sparse blocks must be entry-for-entry
  identical to the historical direct dense build (row order, GE
  negation, interleave included);
* the tableau context's root standardization must equal the reference
  per-row standardization matrix-for-matrix;
* reference solves must agree with the revised core on the seeded
  cross-check instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.expressions import Sense
from repro.lp.matrix_lp import (
    RelaxationContext,
    _standardize_arrays_reference,
    solve_lp_arrays,
    solve_lp_arrays_reference,
)
from repro.lp.problem import ObjectiveSense, Problem
from repro.lp.sparse import (
    CSCMatrix,
    bound_arrays,
    constraint_blocks,
    objective_arrays,
)
from repro.lp.standard_form import to_matrix_form

from .test_cross_check import _random_instance


def _seeded_problem(seed: int) -> Problem:
    """A small model with mixed senses, free vars, and a maximize sign."""
    rng = np.random.default_rng(7700 + seed)
    prob = Problem(
        f"parity{seed}",
        sense=ObjectiveSense.MAXIMIZE if seed % 2 else ObjectiveSense.MINIMIZE,
    )
    n = int(rng.integers(3, 8))
    xs = []
    for i in range(n):
        kind = rng.random()
        if kind < 0.25:
            xs.append(prob.add_variable(f"x{i}", lb=None))  # free
        elif kind < 0.5:
            xs.append(prob.add_variable(f"x{i}", lb=0.0, ub=float(rng.uniform(1, 4))))
        else:
            xs.append(prob.add_binary(f"x{i}"))
    for r in range(int(rng.integers(2, 6))):
        terms = sum(
            float(np.round(rng.uniform(-2, 2), 3)) * x
            for x in xs
            if rng.random() < 0.7
        )
        if isinstance(terms, (int, float)):  # no variable drawn
            terms = 1.0 * xs[0]
        rhs = float(np.round(rng.uniform(-3, 3), 3))
        sense = [Sense.LE, Sense.GE, Sense.EQ][r % 3]
        if sense is Sense.LE:
            prob.add_constraint(terms <= rhs)
        elif sense is Sense.GE:
            prob.add_constraint(terms >= rhs)
        else:
            prob.add_constraint(terms == rhs)
    prob.set_objective(
        sum(float(np.round(rng.uniform(-5, 5), 3)) * x for x in xs)
    )
    return prob


def _historical_dense_build(problem: Problem):
    """The pre-unification dense build, kept verbatim as the oracle."""
    variables = problem.variables
    index = {var: i for i, var in enumerate(variables)}
    n = len(variables)
    ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
    for con in problem.constraints:
        row = np.zeros(n)
        for var, coef in con.expr.terms().items():
            row[index[var]] = coef
        if con.sense is Sense.LE:
            ub_rows.append(row)
            ub_rhs.append(con.rhs)
        elif con.sense is Sense.GE:
            ub_rows.append(-row)
            ub_rhs.append(-con.rhs)
        else:
            eq_rows.append(row)
            eq_rhs.append(con.rhs)
    a_ub = np.array(ub_rows).reshape(len(ub_rows), n) if ub_rows else np.zeros((0, n))
    a_eq = np.array(eq_rows).reshape(len(eq_rows), n) if eq_rows else np.zeros((0, n))
    return a_ub, np.array(ub_rhs), a_eq, np.array(eq_rhs)


class TestDenseViewDerivation:
    @pytest.mark.parametrize("seed", range(12))
    def test_matrix_form_matches_historical_dense_build(self, seed):
        prob = _seeded_problem(seed)
        form = to_matrix_form(prob)
        a_ub, b_ub, a_eq, b_eq = _historical_dense_build(prob)
        np.testing.assert_array_equal(form.a_ub, a_ub)
        np.testing.assert_array_equal(form.b_ub, b_ub)
        np.testing.assert_array_equal(form.a_eq, a_eq)
        np.testing.assert_array_equal(form.b_eq, b_eq)

    @pytest.mark.parametrize("seed", range(12))
    def test_sparse_block_views_are_consistent(self, seed):
        prob = _seeded_problem(seed)
        blocks = constraint_blocks(prob)
        dense = blocks.to_dense()
        np.testing.assert_array_equal(CSCMatrix.from_blocks(blocks).to_dense(), dense)
        np.testing.assert_array_equal(CSCMatrix.from_dense(dense).to_dense(), dense)
        # Objective/bounds come off the same traversal order.
        c, _c0, sign = objective_arrays(prob)
        lb, ub, integrality = bound_arrays(prob)
        assert c.shape == (blocks.n_cols,)
        assert lb.shape == ub.shape == integrality.shape == (blocks.n_cols,)
        assert sign in (1.0, -1.0)

    def test_csc_matvec_rmatvec_match_dense(self):
        rng = np.random.default_rng(3)
        dense = rng.normal(size=(7, 5))
        dense[rng.random(dense.shape) < 0.5] = 0.0
        mat = CSCMatrix.from_dense(dense)
        x = rng.normal(size=5)
        y = rng.normal(size=7)
        np.testing.assert_allclose(mat.matvec(x), dense @ x, atol=1e-12)
        np.testing.assert_allclose(mat.rmatvec(y), dense.T @ y, atol=1e-12)


class TestReferenceStandardization:
    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_tableau_root_assembly_equals_reference(self, seed):
        """The tableau context's cached root build is the reference build."""
        kw = _random_instance(seed)
        ctx = RelaxationContext(engine="tableau", **kw)
        a, b, cost, _key = ctx._assemble(kw["lb"], kw["ub"])
        a_ref, b_ref, cost_ref, _plus, _minus = _standardize_arrays_reference(**kw)
        np.testing.assert_allclose(a, a_ref, atol=1e-12)
        np.testing.assert_allclose(b, b_ref, atol=1e-12)
        np.testing.assert_allclose(cost, cost_ref, atol=1e-12)

    @pytest.mark.parametrize("seed", range(0, 50, 5))
    def test_reference_solves_agree_with_revised_core(self, seed):
        kw = _random_instance(seed)
        ref = solve_lp_arrays_reference(**kw)
        rev = solve_lp_arrays(engine="builtin", **kw)
        assert ref.status == rev.status
        if ref.status == "optimal":
            assert rev.objective == pytest.approx(ref.objective, rel=1e-6, abs=1e-6)
