"""From-scratch simplex: unit cases plus property tests against HiGHS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import solve_standard_form


class TestStandardFormSolver:
    def test_simple_optimum(self):
        # min -x1 - 2x2  s.t. x1 + x2 + s = 4; bounds via extra rows.
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        c = np.array([-1.0, -2.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-8.0)

    def test_degenerate_problem(self):
        # Redundant constraints causing degeneracy.
        a = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.0)

    def test_infeasible(self):
        # x1 = 1 and x1 = 2 simultaneously.
        a = np.array([[1.0], [1.0]])
        b = np.array([1.0, 2.0])
        c = np.array([1.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "infeasible"

    def test_unbounded(self):
        # min -x1 with x1 - x2 = 0 (both can grow forever).
        a = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "unbounded"

    def test_no_constraints_zero_optimum(self):
        res = solve_standard_form(np.zeros((0, 2)), np.zeros(0), np.array([1.0, 2.0]))
        assert res.status == "optimal"
        assert res.objective == 0.0

    def test_no_constraints_unbounded(self):
        res = solve_standard_form(np.zeros((0, 1)), np.zeros(0), np.array([-1.0]))
        assert res.status == "unbounded"

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 1)), np.array([-1.0]), np.ones(1))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 2)), np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 2)), np.ones(1), np.ones(3))

    def test_solution_satisfies_constraints(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, size=(3, 6))
        x_feas = rng.uniform(0, 1, size=6)
        b = a @ x_feas  # feasible by construction
        c = rng.uniform(-1, 1, size=6)
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert np.allclose(a @ res.x, b, atol=1e-7)
        assert (res.x >= -1e-9).all()


@st.composite
def random_feasible_lp(draw):
    """Random standard-form LP that is feasible by construction."""
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=m, max_value=7))
    elems = st.floats(min_value=-3, max_value=3, allow_nan=False)
    a = np.array(
        draw(
            st.lists(
                st.lists(elems, min_size=n, max_size=n), min_size=m, max_size=m
            )
        )
    )
    # Coefficients below the solvers' tolerances are ambiguous (HiGHS
    # presolve treats them as zero, our simplex does not): snap to zero.
    a[np.abs(a) < 1e-6] = 0.0
    x_feas = np.array(
        draw(st.lists(st.floats(min_value=0, max_value=3, allow_nan=False),
                      min_size=n, max_size=n))
    )
    b = a @ x_feas
    # Standard form wants b >= 0: flip offending rows.
    neg = b < 0
    a[neg] *= -1
    b[neg] *= -1
    c = np.array(draw(st.lists(elems, min_size=n, max_size=n)))
    # Same ambiguity for costs: a reduced cost inside HiGHS's dual
    # tolerance reads "optimal" there but can drive our exact simplex
    # to "unbounded" along a zero row.
    c[np.abs(c) < 1e-6] = 0.0
    return a, b, c


@given(random_feasible_lp())
@settings(max_examples=60, deadline=None)
def test_simplex_matches_highs_on_random_lps(lp):
    a, b, c = lp
    ours = solve_standard_form(a, b, c)
    ref = linprog(c, A_eq=a, b_eq=b, bounds=[(0, None)] * len(c), method="highs")
    if ref.status == 0:
        assert ours.status == "optimal"
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)
    elif ref.status == 3:
        assert ours.status == "unbounded"
    elif ref.status == 2:
        assert ours.status == "infeasible"


class TestBlandTieBreak:
    """Regression: Bland ties must break on basic-variable index, not row."""

    def test_tie_breaks_on_basic_variable_index(self):
        from repro.lp.simplex import _choose_leaving

        # Two rows tied at ratio 1.0; row 0's basic variable is 7, row
        # 1's is 3.  Bland must evict the lower *variable* (row 1).
        tableau = np.array(
            [
                [1.0, 0.0, 2.0, 2.0],
                [0.0, 1.0, 2.0, 2.0],
                [0.0, 0.0, -1.0, 0.0],
            ]
        )
        basis = [7, 3]
        assert _choose_leaving(tableau, col=2, nrows=2, basis=basis, bland=True) == 1
        # Outside Bland mode the cheap lowest-row tie-break is kept.
        assert _choose_leaving(tableau, col=2, nrows=2, basis=basis, bland=False) == 0

    def test_beale_cycling_example_terminates(self):
        # Beale's classic cycling LP: Dantzig pricing with a row-index
        # tie-break cycles forever; Bland on variable indices terminates.
        # min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4, optimum -0.05.
        a = np.array(
            [
                [0.25, -60.0, -0.04, 9.0, 1.0, 0.0, 0.0],
                [0.5, -90.0, -0.02, 3.0, 0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0],
            ]
        )
        b = np.array([0.0, 0.0, 1.0])
        c = np.array([-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0])
        res = solve_standard_form(a, b, c, max_iterations=500)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-0.05, abs=1e-9)


class TestRedundantRows:
    """Phase 2 with a redundant constraint (artificial basic at zero)."""

    def test_duplicate_row_is_harmless(self):
        # Row 2 is 2x row 1: phase 1 leaves an artificial basic in a
        # zero row; phase 2 must still reach the true optimum.
        a = np.array([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        b = np.array([2.0, 4.0])
        c = np.array([-1.0, 0.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.0)
        assert np.allclose(a @ res.x, b)


class TestWarmStart:
    def _lp(self):
        # min -x1 - 2 x2  s.t.  x1 + x2 + s1 = 4, x2 + s2 = 3.
        a = np.array([[1.0, 1.0, 1.0, 0.0], [0.0, 1.0, 0.0, 1.0]])
        b = np.array([4.0, 3.0])
        c = np.array([-1.0, -2.0, 0.0, 0.0])
        return a, b, c

    def test_optimal_result_reports_basis(self):
        a, b, c = self._lp()
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.basis is not None and len(res.basis) == a.shape[0]
        # The reported basis reproduces the solution when re-factorized.
        x = np.zeros(a.shape[1])
        x[res.basis] = np.linalg.solve(a[:, res.basis], b)
        assert np.allclose(x, res.x, atol=1e-9)

    def test_feasible_warm_basis_skips_phase_one(self):
        a, b, c = self._lp()
        cold = solve_standard_form(a, b, c)
        warm = solve_standard_form(a, b, c, warm_basis=cold.basis)
        assert warm.status == "optimal"
        assert warm.warm_started
        assert warm.phase1_iterations == 0
        assert warm.objective == pytest.approx(cold.objective)

    def test_warm_basis_survives_rhs_change(self):
        # Tighten the rhs so the old optimum is infeasible: the warm
        # start must still land on the new optimum.
        a, b, c = self._lp()
        cold = solve_standard_form(a, b, c)
        b2 = np.array([4.0, 1.0])
        warm = solve_standard_form(a, b2, c, warm_basis=cold.basis)
        fresh = solve_standard_form(a, b2, c)
        assert warm.status == fresh.status == "optimal"
        assert warm.objective == pytest.approx(fresh.objective)

    def test_garbage_warm_basis_falls_back_to_cold(self):
        a, b, c = self._lp()
        res = solve_standard_form(a, b, c, warm_basis=[0, 0])  # duplicate
        assert res.status == "optimal"
        assert not res.warm_started
        singular = solve_standard_form(a, b, c, warm_basis=[99, 1])
        assert singular.status == "optimal"
        assert not singular.warm_started
