"""From-scratch simplex: unit cases plus property tests against HiGHS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lp.simplex import solve_standard_form


class TestStandardFormSolver:
    def test_simple_optimum(self):
        # min -x1 - 2x2  s.t. x1 + x2 + s = 4; bounds via extra rows.
        a = np.array([[1.0, 1.0, 1.0]])
        b = np.array([4.0])
        c = np.array([-1.0, -2.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-8.0)

    def test_degenerate_problem(self):
        # Redundant constraints causing degeneracy.
        a = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 1.0, 0.0, 1.0]])
        b = np.array([2.0, 2.0])
        c = np.array([-1.0, -1.0, 0.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.0)

    def test_infeasible(self):
        # x1 = 1 and x1 = 2 simultaneously.
        a = np.array([[1.0], [1.0]])
        b = np.array([1.0, 2.0])
        c = np.array([1.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "infeasible"

    def test_unbounded(self):
        # min -x1 with x1 - x2 = 0 (both can grow forever).
        a = np.array([[1.0, -1.0]])
        b = np.array([0.0])
        c = np.array([-1.0, 0.0])
        res = solve_standard_form(a, b, c)
        assert res.status == "unbounded"

    def test_no_constraints_zero_optimum(self):
        res = solve_standard_form(np.zeros((0, 2)), np.zeros(0), np.array([1.0, 2.0]))
        assert res.status == "optimal"
        assert res.objective == 0.0

    def test_no_constraints_unbounded(self):
        res = solve_standard_form(np.zeros((0, 1)), np.zeros(0), np.array([-1.0]))
        assert res.status == "unbounded"

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 1)), np.array([-1.0]), np.ones(1))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 2)), np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            solve_standard_form(np.ones((1, 2)), np.ones(1), np.ones(3))

    def test_solution_satisfies_constraints(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 1, size=(3, 6))
        x_feas = rng.uniform(0, 1, size=6)
        b = a @ x_feas  # feasible by construction
        c = rng.uniform(-1, 1, size=6)
        res = solve_standard_form(a, b, c)
        assert res.status == "optimal"
        assert np.allclose(a @ res.x, b, atol=1e-7)
        assert (res.x >= -1e-9).all()


@st.composite
def random_feasible_lp(draw):
    """Random standard-form LP that is feasible by construction."""
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=m, max_value=7))
    elems = st.floats(min_value=-3, max_value=3, allow_nan=False)
    a = np.array(
        draw(
            st.lists(
                st.lists(elems, min_size=n, max_size=n), min_size=m, max_size=m
            )
        )
    )
    x_feas = np.array(
        draw(st.lists(st.floats(min_value=0, max_value=3, allow_nan=False),
                      min_size=n, max_size=n))
    )
    b = a @ x_feas
    # Standard form wants b >= 0: flip offending rows.
    neg = b < 0
    a[neg] *= -1
    b[neg] *= -1
    c = np.array(draw(st.lists(elems, min_size=n, max_size=n)))
    return a, b, c


@given(random_feasible_lp())
@settings(max_examples=60, deadline=None)
def test_simplex_matches_highs_on_random_lps(lp):
    a, b, c = lp
    ours = solve_standard_form(a, b, c)
    ref = linprog(c, A_eq=a, b_eq=b, bounds=[(0, None)] * len(c), method="highs")
    if ref.status == 0:
        assert ours.status == "optimal"
        assert ours.objective == pytest.approx(ref.fun, rel=1e-6, abs=1e-6)
    elif ref.status == 3:
        assert ours.status == "unbounded"
    elif ref.status == 2:
        assert ours.status == "infeasible"
