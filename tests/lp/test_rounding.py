"""Relax-and-round heuristic backend."""

from __future__ import annotations

import pytest

from repro.lp import Problem, SolveStatus, quicksum
from repro.lp.rounding import solve_with_rounding


def test_integral_relaxation_is_returned_feasible():
    # Totally unimodular assignment: LP relaxation already integral.
    p = Problem()
    x = {(i, j): p.add_binary(f"x{i}{j}") for i in range(2) for j in range(2)}
    for i in range(2):
        p.add_constraint(quicksum(x[(i, j)] for j in range(2)) == 1)
    p.set_objective(x[(0, 0)] + 2 * x[(0, 1)] + 3 * x[(1, 0)] + x[(1, 1)])
    sol = solve_with_rounding(p)
    assert sol.status is SolveStatus.FEASIBLE
    assert sol.objective == pytest.approx(2.0)


def test_rounded_point_validated_against_model():
    # Fractional relaxation whose naive rounding breaks the capacity:
    # max x1+x2 st 1.5x1 + 1.5x2 <= 2 → relax x=(0.66,0.66) rounds to
    # (1,1) infeasible → backend must report ERROR, not lie.
    p = Problem()
    a = p.add_binary("a")
    b = p.add_binary("b")
    p.add_constraint(1.5 * a + 1.5 * b <= 2)
    p.set_objective(-(a + b))
    sol = solve_with_rounding(p)
    assert sol.status in (SolveStatus.ERROR, SolveStatus.FEASIBLE)
    if sol.status is SolveStatus.FEASIBLE:
        assert p.is_feasible(sol.values)


def test_infeasible_relaxation_reported():
    p = Problem()
    x = p.add_binary("x")
    p.add_constraint(x >= 2)
    p.set_objective(x)
    assert solve_with_rounding(p).status is SolveStatus.INFEASIBLE


def test_unbounded_relaxation_reported():
    p = Problem()
    x = p.add_variable("x", lb=None, ub=None)
    p.set_objective(x)
    assert solve_with_rounding(p).status is SolveStatus.UNBOUNDED


def test_never_claims_optimal():
    p = Problem()
    x = p.add_binary("x")
    p.set_objective(x)
    sol = solve_with_rounding(p)
    assert sol.status is not SolveStatus.OPTIMAL
