"""Knapsack cover cuts: separation and cut-and-branch integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Problem, SolveStatus, quicksum, solve
from repro.lp.branch_bound import solve_branch_and_bound
from repro.lp.cuts import (
    CoverCut,
    cuts_to_rows,
    knapsack_rows,
    separate_cover_cut,
    separate_cuts,
)


class TestCoverCut:
    def test_rhs_and_violation(self):
        cut = CoverCut(row=0, members=(0, 1, 2))
        assert cut.rhs == 2
        x = np.array([0.9, 0.9, 0.9])
        assert cut.violation(x) == pytest.approx(0.7)


def _binary_bounds(n: int) -> tuple[np.ndarray, np.ndarray]:
    return np.zeros(n), np.ones(n)


class TestKnapsackRows:
    def test_selects_binary_nonnegative_rows(self):
        a = np.array([
            [3.0, 4.0, 2.0],   # usable
            [1.0, -1.0, 0.0],  # negative coefficient → skip
            [5.0, 0.0, 0.0],   # single support → skip
        ])
        b = np.array([6.0, 1.0, 3.0])
        integral = np.array([True, True, True])
        lb, ub = _binary_bounds(3)
        assert knapsack_rows(a, b, integral, lb, ub) == [0]

    def test_skips_continuous_support(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([1.5])
        integral = np.array([True, False])
        lb, ub = _binary_bounds(2)
        assert knapsack_rows(a, b, integral, lb, ub) == []

    def test_skips_nonpositive_rhs(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([0.0])
        lb, ub = _binary_bounds(2)
        assert knapsack_rows(a, b, np.array([True, True]), lb, ub) == []

    def test_skips_general_integer_support(self):
        # Regression: an integral variable with ub > 1 is NOT binary; a
        # cover cut over it would slice off integer-feasible points.
        a = np.array([[3.0, 4.0]])
        b = np.array([6.0])
        integral = np.array([True, True])
        lb = np.zeros(2)
        ub = np.array([1.0, 4.0])  # x1 is a general integer
        assert knapsack_rows(a, b, integral, lb, ub) == []

    def test_no_rows_without_bound_proof(self):
        # Regression: integrality alone never proves 0/1-ness.
        a = np.array([[3.0, 4.0, 2.0]])
        b = np.array([6.0])
        integral = np.array([True, True, True])
        assert knapsack_rows(a, b, integral) == []


class TestSeparation:
    def test_classic_fractional_point_is_cut(self):
        # max x1+x2+x3 s.t. 2x1+2x2+2x3 <= 3: LP optimum x=(.5,.5,.5),
        # cover {1,2,3} gives x1+x2+x3 <= 2... sum is 1.5 < 2: not
        # violated.  Use weights 3,3,3 cap 4: LP x=(4/9 each)? Construct
        # directly: x=(0.9, 0.9, 0.2), weights (3,3,3), cap 4 → cover
        # {0,1} (weight 6 > 4) cut x0+x1 <= 1 violated by 0.8.
        row = np.array([3.0, 3.0, 3.0])
        x = np.array([0.9, 0.9, 0.2])
        cut = separate_cover_cut(row, 4.0, x, row_index=0)
        assert cut is not None
        assert set(cut.members) == {0, 1}
        assert cut.violation(x) == pytest.approx(0.8)

    def test_no_cover_when_everything_fits(self):
        row = np.array([1.0, 1.0, 1.0])
        x = np.array([1.0, 1.0, 1.0])
        assert separate_cover_cut(row, 10.0, x, 0) is None

    def test_unviolated_cover_rejected(self):
        row = np.array([3.0, 3.0])
        x = np.array([0.1, 0.1])
        assert separate_cover_cut(row, 4.0, x, 0) is None

    def test_separate_cuts_orders_by_violation(self):
        a = np.array([
            [3.0, 3.0, 0.0],
            [0.0, 4.0, 4.0],
        ])
        b = np.array([4.0, 6.0])
        x = np.array([0.95, 0.95, 0.6])
        integral = np.array([True, True, True])
        lb, ub = _binary_bounds(3)
        cuts = separate_cuts(a, b, x, integral, lb=lb, ub=ub)
        assert cuts
        violations = [c.violation(x) for c in cuts]
        assert violations == sorted(violations, reverse=True)

    def test_cuts_to_rows(self):
        cuts = [CoverCut(0, (0, 2))]
        a, b = cuts_to_rows(cuts, 4)
        assert a.tolist() == [[1.0, 0.0, 1.0, 0.0]]
        assert b.tolist() == [1.0]


def hard_knapsack():
    """Equal-weight knapsack — notoriously fractional at the root."""
    p = Problem()
    n = 12
    xs = [p.add_binary(f"x{i}") for i in range(n)]
    p.add_constraint(quicksum(5 * x for x in xs) <= 23)
    p.set_objective(-quicksum((10 + i) * x for i, x in enumerate(xs)))
    return p


class TestCutAndBranch:
    def test_same_optimum_with_and_without_cuts(self):
        p = hard_knapsack()
        plain = solve_branch_and_bound(p)
        cut = solve_branch_and_bound(p, cover_cut_rounds=5)
        assert plain.status is SolveStatus.OPTIMAL
        assert cut.status is SolveStatus.OPTIMAL
        assert plain.objective == pytest.approx(cut.objective)

    def test_cuts_shrink_the_tree(self):
        p = hard_knapsack()
        plain = solve_branch_and_bound(p)
        cut = solve_branch_and_bound(p, cover_cut_rounds=5)
        assert cut.iterations <= plain.iterations

    def test_option_flows_through_registry(self):
        p = hard_knapsack()
        sol = solve(p, backend="branch_bound", cover_cut_rounds=3)
        assert sol.status is SolveStatus.OPTIMAL

    def test_general_integer_knapsack_keeps_true_optimum(self):
        # Regression for the binary-bounds check: minimize -(3y + 2x)
        # s.t. 2y + 4x <= 5 with y integer in [0, 2] and x binary.  The
        # LP relaxation is fractional (y = 2, x = 0.25), and treating y
        # as binary separates the cover {y, x} (2 + 4 > 5), whose cut
        # ``y + x <= 1`` slices off the true optimum y=2, x=0
        # (objective -6) and leaves -3.  No cover cut may be produced on
        # a row supported by a general integer.
        p = Problem()
        y = p.add_integer("y", lb=0, ub=2)
        x = p.add_binary("x")
        p.add_constraint(2 * y + 4 * x <= 5)
        p.set_objective(-(3 * y + 2 * x))
        plain = solve_branch_and_bound(p)
        cut = solve_branch_and_bound(p, cover_cut_rounds=5)
        assert plain.status is SolveStatus.OPTIMAL
        assert cut.status is SolveStatus.OPTIMAL
        assert plain.objective == pytest.approx(-6.0)
        assert cut.objective == pytest.approx(-6.0)
        assert cut.stats.cuts_added == 0

    def test_matches_highs_on_consolidation_model(self, tiny_state):
        from repro.core import ConsolidationModel

        model = ConsolidationModel(tiny_state)
        ref = solve(model.problem, backend="highs")
        cut = solve(model.problem, backend="branch_bound", cover_cut_rounds=3)
        assert cut.objective == pytest.approx(ref.objective, rel=1e-6)


@given(
    weights=st.lists(st.integers(min_value=1, max_value=9), min_size=3, max_size=8),
    values=st.lists(st.integers(min_value=1, max_value=9), min_size=3, max_size=8),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_cut_and_branch_never_changes_the_optimum(weights, values, seed):
    n = min(len(weights), len(values))
    weights, values = weights[:n], values[:n]
    cap = max(1, sum(weights) // 2)
    p = Problem()
    xs = [p.add_binary(f"x{i}") for i in range(n)]
    p.add_constraint(quicksum(w * x for w, x in zip(weights, xs)) <= cap)
    p.set_objective(-quicksum(v * x for v, x in zip(values, xs)))
    plain = solve_branch_and_bound(p)
    cut = solve_branch_and_bound(p, cover_cut_rounds=4)
    assert plain.objective == pytest.approx(cut.objective, abs=1e-6)
