"""Tests for the Problem container."""

from __future__ import annotations

import pytest

from repro.lp import ObjectiveSense, Problem, Variable, VarType, quicksum


class TestVariables:
    def test_add_variable(self):
        p = Problem()
        x = p.add_variable("x", lb=1.0, ub=2.0)
        assert p.variables == [x]
        assert p.num_variables == 1

    def test_duplicate_names_rejected(self):
        p = Problem()
        p.add_variable("x")
        with pytest.raises(ValueError):
            p.add_variable("x")

    def test_add_binary_and_integer(self):
        p = Problem()
        b = p.add_binary("b")
        i = p.add_integer("i", lb=0, ub=10)
        assert b.vtype is VarType.BINARY
        assert i.vtype is VarType.INTEGER
        assert p.num_integer_variables == 2
        assert p.is_mip

    def test_attach_external_variable(self):
        p = Problem()
        x = Variable("ext")
        assert p.attach_variable(x) is x
        with pytest.raises(ValueError):
            p.attach_variable(Variable("ext"))

    def test_variable_by_name(self):
        p = Problem()
        x = p.add_variable("x")
        assert p.variable_by_name("x") is x
        with pytest.raises(KeyError):
            p.variable_by_name("y")

    def test_pure_lp_is_not_mip(self):
        p = Problem()
        p.add_variable("x")
        assert not p.is_mip


class TestConstraints:
    def test_add_constraint_auto_names(self):
        p = Problem()
        x = p.add_variable("x")
        c0 = p.add_constraint(x <= 1)
        c1 = p.add_constraint(x >= 0)
        assert c0.name == "c0"
        assert c1.name == "c1"
        assert p.num_constraints == 2

    def test_explicit_name(self):
        p = Problem()
        x = p.add_variable("x")
        con = p.add_constraint(x <= 1, "cap")
        assert con.name == "cap"

    def test_unregistered_variable_rejected(self):
        p = Problem()
        rogue = Variable("rogue")
        with pytest.raises(ValueError):
            p.add_constraint(rogue <= 1)

    def test_non_constraint_rejected(self):
        p = Problem()
        with pytest.raises(TypeError):
            p.add_constraint(True)  # type: ignore[arg-type]

    def test_add_constraints_bulk(self):
        p = Problem()
        x = p.add_variable("x")
        cons = p.add_constraints([x <= 1, x >= 0])
        assert len(cons) == 2


class TestObjective:
    def test_set_objective(self):
        p = Problem()
        x = p.add_variable("x")
        p.set_objective(2 * x + 1)
        assert p.objective.coefficient(x) == 2.0
        assert p.objective.constant == 1.0

    def test_set_objective_with_sense(self):
        p = Problem()
        x = p.add_variable("x")
        p.set_objective(x, sense=ObjectiveSense.MAXIMIZE)
        assert p.sense == ObjectiveSense.MAXIMIZE

    def test_bad_sense_rejected(self):
        with pytest.raises(ValueError):
            Problem(sense="sideways")
        p = Problem()
        x = p.add_variable("x")
        with pytest.raises(ValueError):
            p.set_objective(x, sense="sideways")

    def test_unregistered_objective_variable_rejected(self):
        p = Problem()
        with pytest.raises(ValueError):
            p.set_objective(Variable("rogue") * 2)

    def test_constant_objective_allowed(self):
        p = Problem()
        p.set_objective(5)
        assert p.objective.constant == 5.0


class TestFeasibilityChecks:
    def make_problem(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=10.0)
        y = p.add_binary("y")
        p.add_constraint(x + 5 * y <= 8, "cap")
        p.set_objective(x + y)
        return p, x, y

    def test_feasible_point(self):
        p, x, y = self.make_problem()
        assert p.is_feasible({x: 3.0, y: 1.0})

    def test_constraint_violation_detected(self):
        p, x, y = self.make_problem()
        assert not p.is_feasible({x: 9.0, y: 1.0})
        violations = list(p.iter_violations({x: 9.0, y: 1.0}))
        assert len(violations) == 1
        assert violations[0][1] == pytest.approx(6.0)

    def test_bound_violation_detected(self):
        p, x, y = self.make_problem()
        assert not p.is_feasible({x: 11.0, y: 0.0})
        assert not p.is_feasible({x: -1.0, y: 0.0})

    def test_integrality_violation_detected(self):
        p, x, y = self.make_problem()
        assert not p.is_feasible({x: 1.0, y: 0.5})

    def test_missing_value_is_infeasible(self):
        p, x, y = self.make_problem()
        assert not p.is_feasible({x: 1.0})

    def test_evaluate_objective(self):
        p, x, y = self.make_problem()
        assert p.evaluate_objective({x: 2.0, y: 1.0}) == pytest.approx(3.0)


def test_stats_and_repr():
    p = Problem("m")
    xs = [p.add_binary(f"x{i}") for i in range(3)]
    p.add_constraint(quicksum(xs) <= 2)
    p.set_objective(quicksum(xs))
    stats = p.stats()
    assert stats == {
        "variables": 3,
        "integer_variables": 3,
        "constraints": 1,
        "nonzeros": 3,
    }
    assert "m" in repr(p)
