"""RelaxationContext: cached standardization, warm tokens, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.matrix_lp import (
    RelaxationContext,
    solve_lp_arrays,
    solve_lp_arrays_reference,
)


def problem():
    """min -x - 2y - z, one coupling row, y free at the root."""
    return dict(
        c=np.array([-1.0, -2.0, -1.0]),
        a_ub=np.array([[1.0, 1.0, 1.0]]),
        b_ub=np.array([6.0]),
        a_eq=np.zeros((0, 3)),
        b_eq=np.zeros(0),
        lb=np.array([0.0, -np.inf, 1.0]),
        ub=np.array([4.0, 3.0, np.inf]),
    )


class TestRootSolve:
    def test_matches_one_shot_and_reference_paths(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        cached = ctx.solve()
        one_shot = solve_lp_arrays(engine="builtin", **kw)
        reference = solve_lp_arrays_reference(**kw)
        assert cached.status == one_shot.status == reference.status == "optimal"
        assert cached.objective == pytest.approx(one_shot.objective)
        assert cached.objective == pytest.approx(reference.objective)
        np.testing.assert_allclose(cached.x, one_shot.x, atol=1e-9)

    def test_crossed_bounds_short_circuit(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        lb = kw["lb"].copy()
        lb[0] = 5.0  # above ub[0] = 4
        res = ctx.solve(lb, kw["ub"])
        assert res.status == "infeasible"

    def test_unknown_engine_raises(self):
        kw = problem()
        ctx = RelaxationContext(engine="cplex", **kw)
        with pytest.raises(ValueError):
            ctx.solve()


class TestChildNodes:
    def test_tightened_bounds_match_fresh_solves(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        for lo, hi in [(0.0, 2.0), (1.0, 4.0), (2.5, 2.5)]:
            lb = kw["lb"].copy()
            ub = kw["ub"].copy()
            lb[0], ub[0] = lo, hi
            cached = ctx.solve(lb, ub)
            fresh = solve_lp_arrays(
                engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
                a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=ub,
            )
            assert cached.status == fresh.status == "optimal"
            assert cached.objective == pytest.approx(fresh.objective, abs=1e-8)

    def test_finite_lower_bound_on_root_free_variable(self):
        # y is free at the root; a child pinning y >= 2 must go through
        # the extra low-rows path, not a shift.
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        lb = kw["lb"].copy()
        lb[1] = 2.0
        cached = ctx.solve(lb, kw["ub"])
        fresh = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=kw["ub"],
        )
        assert cached.status == fresh.status == "optimal"
        assert cached.objective == pytest.approx(fresh.objective, abs=1e-8)
        assert ctx.structural_rebuilds == 0

    def test_loosening_a_root_finite_lb_rebuilds_tableau(self):
        # The dense tableau's plus/minus column split is fixed at the
        # root, so loosening a root-finite lb forces a restandardization.
        kw = problem()
        ctx = RelaxationContext(engine="tableau", **kw)
        lb = kw["lb"].copy()
        lb[2] = -np.inf  # z was finite at the root
        res = ctx.solve(lb, kw["ub"])
        fresh = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=kw["ub"],
        )
        assert ctx.structural_rebuilds == 1
        assert res.status == fresh.status
        if fresh.status == "optimal":
            assert res.objective == pytest.approx(fresh.objective, abs=1e-8)

    def test_loosening_a_root_finite_lb_is_native_for_revised(self):
        # The revised core keeps bounds implicit, so the same loosening
        # is just another bound-array update: no rebuild at all.
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        lb = kw["lb"].copy()
        lb[2] = -np.inf
        res = ctx.solve(lb, kw["ub"])
        fresh = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=lb, ub=kw["ub"],
        )
        assert ctx.structural_rebuilds == 0
        assert res.status == fresh.status
        if fresh.status == "optimal":
            assert res.objective == pytest.approx(fresh.objective, abs=1e-8)


class TestWarmTokens:
    def test_token_reuse_is_identical_and_flagged(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        root = ctx.solve()
        assert root.warm_token is not None
        again = ctx.solve(warm=root.warm_token)
        assert again.status == "optimal"
        assert again.warm_started
        assert again.objective == pytest.approx(root.objective)
        assert ctx.warm_start_hits >= 1

    def test_mismatched_bound_pattern_ignores_token_tableau(self):
        kw = problem()
        ctx = RelaxationContext(engine="tableau", **kw)
        root = ctx.solve()
        ub = kw["ub"].copy()
        ub[2] = 9.0  # new finite ub changes the bound-row pattern
        child = ctx.solve(kw["lb"], ub, warm=root.warm_token)
        assert child.status == "optimal"
        assert not child.warm_started

    def test_changed_bound_pattern_still_warm_starts_revised(self):
        # The revised core's column layout is bound-independent, so the
        # parent basis transfers even when the bound pattern changes.
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        root = ctx.solve()
        ub = kw["ub"].copy()
        ub[2] = 9.0
        child = ctx.solve(kw["lb"], ub, warm=root.warm_token)
        assert child.status == "optimal"
        assert child.warm_started
        fresh = solve_lp_arrays(
            engine="highs", c=kw["c"], a_ub=kw["a_ub"], b_ub=kw["b_ub"],
            a_eq=kw["a_eq"], b_eq=kw["b_eq"], lb=kw["lb"], ub=ub,
        )
        assert child.objective == pytest.approx(fresh.objective, abs=1e-8)


class TestTelemetry:
    def test_counters_accumulate(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        root = ctx.solve()
        lb = kw["lb"].copy()
        lb[0] = 1.0
        ctx.solve(lb, kw["ub"], warm=root.warm_token)
        assert ctx.node_solves == 2
        assert ctx.cache_hits == 2
        assert ctx.warm_start_hits + ctx.warm_start_misses == 1
        assert ctx.conversion_seconds >= 0.0
        assert ctx.solve_seconds > 0.0

    def test_per_result_timing_split(self):
        kw = problem()
        res = solve_lp_arrays(engine="builtin", **kw)
        assert res.conversion_seconds >= 0.0
        assert res.solve_seconds >= 0.0

    def test_revised_core_counters_populated(self):
        kw = problem()
        ctx = RelaxationContext(engine="builtin", **kw)
        res = ctx.solve()
        assert res.status == "optimal"
        # Any solve with at least one pivot refactorizes once at the
        # final accuracy gate, retiring its eta file.
        assert res.refactorizations >= 1
        assert res.eta_file_length >= 1
        assert res.pricing_passes >= 1
        assert res.bound_flips >= 0
        assert ctx.refactorizations == res.refactorizations
        assert ctx.eta_file_length == res.eta_file_length
        assert ctx.pricing_passes == res.pricing_passes

    def test_tableau_engine_matches_revised(self):
        kw = problem()
        rev = solve_lp_arrays(engine="builtin", **kw)
        tab = solve_lp_arrays(engine="tableau", **kw)
        assert rev.status == tab.status == "optimal"
        assert rev.objective == pytest.approx(tab.objective, abs=1e-8)


class TestHighsEngineContext:
    def test_highs_context_delegates(self):
        kw = problem()
        ctx = RelaxationContext(engine="highs", **kw)
        res = ctx.solve()
        ref = solve_lp_arrays(engine="highs", **kw)
        assert res.status == ref.status == "optimal"
        assert res.objective == pytest.approx(ref.objective)
        assert ctx.node_solves == 1
