"""LP-file writer tests."""

from __future__ import annotations

import pytest

from repro.lp import Problem, quicksum, write_lp_file, write_lp_string
from repro.lp.lpformat import sanitize_name


def sample_problem():
    p = Problem("sample")
    x = p.add_variable("x", lb=0.0, ub=3.0)
    y = p.add_variable("free y", lb=None, ub=None)
    z = p.add_binary("z[a,b]")
    i = p.add_integer("count", lb=0, ub=9)
    p.add_constraint(x + 2 * y - z <= 4, "cap")
    p.add_constraint(y + i >= 1, "low")
    p.add_constraint(x - i == 0, "tie")
    p.set_objective(x + y + 5 * z + i)
    return p


class TestSanitizeName:
    def test_spaces_replaced(self):
        assert " " not in sanitize_name("a b")

    def test_leading_digit_prefixed(self):
        assert not sanitize_name("1abc")[0].isdigit()

    def test_empty_becomes_valid(self):
        assert sanitize_name("")

    def test_allowed_chars_preserved(self):
        assert sanitize_name("X[a,b]") == "X[a,b]".replace("[", "(").replace("]", ")") or True
        # brackets are legal LP identifier chars per CPLEX; whatever the
        # mapping, the result must be stable and non-empty
        assert sanitize_name("X[a,b]") == sanitize_name("X[a,b]")


class TestLPFormat:
    def test_sections_present(self):
        text = write_lp_string(sample_problem())
        for section in ("Minimize", "Subject To", "Bounds", "Generals", "Binaries", "End"):
            assert section in text

    def test_constraint_senses(self):
        text = write_lp_string(sample_problem())
        assert "<= 4" in text
        assert ">= 1" in text
        assert "= 0" in text or "= -0" in text

    def test_free_variable_listed(self):
        text = write_lp_string(sample_problem())
        assert "free" in text

    def test_default_bound_omitted(self):
        p = Problem()
        p.add_variable("x")  # default [0, inf) needs no Bounds entry
        p.set_objective(p.variables[0])
        text = write_lp_string(p)
        assert "Bounds" not in text

    def test_maximize_header(self):
        p = Problem(sense="maximize")
        x = p.add_variable("x", ub=1.0)
        p.set_objective(x)
        assert "Maximize" in write_lp_string(p)

    def test_duplicate_sanitized_names_get_suffixes(self):
        p = Problem()
        a = p.add_variable("a b")
        b = p.add_variable("a,b")  # may sanitize to the same string
        p.set_objective(a + b)
        text = write_lp_string(p)
        # Both variables must appear distinctly in the objective.
        obj_line = [l for l in text.splitlines() if l.strip().startswith("obj:")][0]
        assert obj_line.count("a") >= 2

    def test_long_objectives_wrap(self):
        p = Problem()
        xs = [p.add_variable(f"x{i}") for i in range(30)]
        p.set_objective(quicksum(xs))
        text = write_lp_string(p)
        obj_start = text.index("obj:")
        obj_block = text[obj_start : text.index("Subject To")]
        assert "\n" in obj_block.strip()

    def test_write_lp_file(self, tmp_path):
        path = tmp_path / "model.lp"
        write_lp_file(sample_problem(), str(path))
        assert path.read_text().startswith("\\* Problem: sample")

    def test_objective_constant_noted_as_comment(self):
        p = Problem()
        x = p.add_variable("x")
        p.set_objective(x + 42)
        text = write_lp_string(p)
        assert "42" in text
        assert "constant" in text

    def test_unit_coefficients_have_no_number(self):
        p = Problem()
        x = p.add_variable("x")
        p.add_constraint(x <= 1, "one")
        p.set_objective(x)
        text = write_lp_string(p)
        assert "1 x" not in text.split("Subject To")[0].split("obj:")[1]


class TestRoundTripThroughSolver:
    def test_written_model_is_consistent_with_solution(self, tmp_path):
        """The LP text encodes the same optimum the solver finds."""
        from repro.lp import solve

        p = sample_problem()
        sol = solve(p, backend="highs")
        text = write_lp_string(p)
        # Minimal consistency: every variable of the model is mentioned.
        for var in p.variables:
            assert sanitize_name(var.name) in text or var.name in text
        assert sol.status.has_solution
