"""Row-dual extraction from the builtin simplex engines.

The decomposition master depends on these: duals are ``y = c_B B^{-1}``
in the min-problem convention (``a_ub`` rows first, then ``a_eq``;
binding ``<=`` rows carry ``y_i <= 0``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.dual_simplex import solve_bounded_lp_dual
from repro.lp.matrix_lp import solve_lp_arrays
from repro.lp.revised_simplex import SparseBoundedLP, solve_bounded_lp
from repro.lp.sparse import CSCMatrix


def dense_csc(rows: list[list[float]]) -> CSCMatrix:
    arr = np.array(rows, dtype=float)
    m, n = arr.shape
    indptr = [0]
    indices: list[int] = []
    data: list[float] = []
    for j in range(n):
        for i in range(m):
            if arr[i, j] != 0.0:
                indices.append(i)
                data.append(arr[i, j])
        indptr.append(len(indices))
    return CSCMatrix(
        shape=(m, n),
        indptr=np.array(indptr, dtype=np.int64),
        indices=np.array(indices, dtype=np.int64),
        data=np.array(data),
    )


def knapsack_family() -> tuple[SparseBoundedLP, np.ndarray, np.ndarray]:
    # min -3x - 2y  s.t.  x + y <= 4, x <= 3;  0 <= x, y <= 10.
    # Optimum (3, 1), objective -11; row duals: y1 = -2, y2 = -1.
    family = SparseBoundedLP(
        c=np.array([-3.0, -2.0]),
        a_ub=dense_csc([[1.0, 1.0], [1.0, 0.0]]),
        b_ub=np.array([4.0, 3.0]),
        a_eq=np.zeros((0, 2)),
        b_eq=np.zeros(0),
    )
    lb = np.zeros(2)
    ub = np.full(2, 10.0)
    return family, lb, ub


class TestRevisedSimplexDuals:
    def test_binding_ub_rows_have_nonpositive_duals(self):
        family, lb, ub = knapsack_family()
        result = solve_bounded_lp(family, lb, ub)
        assert result.status == "optimal"
        assert result.duals is not None
        np.testing.assert_allclose(result.duals, [-2.0, -1.0], atol=1e-9)
        # Strong duality: b . y == objective (both bounds at 0 here).
        assert result.duals @ family.b == pytest.approx(result.objective)

    def test_eq_row_duals(self):
        # min x + 2y  s.t.  x + y == 3, x <= 1  ->  (1, 2), objective 5.
        family = SparseBoundedLP(
            c=np.array([1.0, 2.0]),
            a_ub=dense_csc([[1.0, 0.0]]),
            b_ub=np.array([1.0]),
            a_eq=dense_csc([[1.0, 1.0]]),
            b_eq=np.array([3.0]),
        )
        result = solve_bounded_lp(family, np.zeros(2), np.full(2, 10.0))
        assert result.status == "optimal"
        assert result.objective == pytest.approx(5.0)
        # Ordering: a_ub rows first, then a_eq.
        np.testing.assert_allclose(result.duals, [-1.0, 2.0], atol=1e-9)

    def test_nonbinding_row_dual_is_zero(self):
        # min -x  s.t.  x <= 2, x + 0y <= 50 (slack);  0 <= x <= 10.
        family = SparseBoundedLP(
            c=np.array([-1.0]),
            a_ub=dense_csc([[1.0], [1.0]]),
            b_ub=np.array([2.0, 50.0]),
            a_eq=np.zeros((0, 1)),
            b_eq=np.zeros(0),
        )
        result = solve_bounded_lp(family, np.zeros(1), np.full(1, 10.0))
        assert result.status == "optimal"
        np.testing.assert_allclose(result.duals, [-1.0, 0.0], atol=1e-9)


class TestDualSimplexDuals:
    def test_dual_resolve_reports_duals(self):
        # The dual driver is a warm re-solve engine: seed it with the
        # primal optimum's token, then tighten x's upper bound to 2.
        # New optimum (2, 2), objective -10; row 1 binds (y1 = -2),
        # row 2 goes slack (y2 = 0).
        family, lb, ub = knapsack_family()
        primal = solve_bounded_lp(family, lb, ub)
        assert primal.status == "optimal"
        tighter = ub.copy()
        tighter[0] = 2.0
        result = solve_bounded_lp_dual(
            family, lb, tighter, warm=(primal.basis, primal.vstat)
        )
        assert result.status == "optimal"
        assert result.objective == pytest.approx(-10.0)
        assert result.duals is not None
        np.testing.assert_allclose(result.duals, [-2.0, 0.0], atol=1e-9)

    def test_dual_and_primal_agree_on_random_bound_tightenings(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            m, n = 4, 6
            a = rng.uniform(0.0, 2.0, size=(m, n))
            family = SparseBoundedLP(
                c=rng.uniform(-3.0, 1.0, size=n),
                a_ub=dense_csc(a.tolist()),
                b_ub=rng.uniform(2.0, 8.0, size=m),
                a_eq=np.zeros((0, n)),
                b_eq=np.zeros(0),
            )
            lb = np.zeros(n)
            ub = np.full(n, 5.0)
            root = solve_bounded_lp(family, lb, ub)
            assert root.status == "optimal"
            tighter = ub.copy()
            tighter[int(rng.integers(n))] = 1.0
            primal = solve_bounded_lp(family, lb, tighter)
            dual = solve_bounded_lp_dual(
                family, lb, tighter, warm=(root.basis, root.vstat)
            )
            assert primal.status == "optimal"
            if dual.status != "optimal":
                continue  # dual_lost is "use the primal engine", not a bug
            assert primal.objective == pytest.approx(dual.objective, abs=1e-7)
            # Dual feasibility of the reported row prices (min problem,
            # <= rows): y <= 0 and reduced costs respect the bounds.
            for result in (primal, dual):
                assert (result.duals <= 1e-9).all()
                reduced = family.c - result.duals @ a
                x = result.x
                at_lower = x <= lb + 1e-9
                at_upper = x >= tighter - 1e-9
                assert (reduced[at_lower & ~at_upper] >= -1e-7).all()
                assert (reduced[at_upper & ~at_lower] <= 1e-7).all()


class TestArrayLPDuals:
    @staticmethod
    def _solve(engine: str):
        return solve_lp_arrays(
            c=np.array([-3.0, -2.0]),
            a_ub=np.array([[1.0, 1.0], [1.0, 0.0]]),
            b_ub=np.array([4.0, 3.0]),
            a_eq=np.zeros((0, 2)),
            b_eq=np.zeros(0),
            lb=np.zeros(2),
            ub=np.full(2, 10.0),
            engine=engine,
            presolve=False,
        )

    def test_builtin_array_path_carries_duals(self):
        res = self._solve("builtin")
        assert res.status == "optimal"
        assert res.duals is not None
        np.testing.assert_allclose(res.duals, [-2.0, -1.0], atol=1e-7)

    def test_highs_array_path_carries_duals(self):
        pytest.importorskip("scipy")
        res = self._solve("highs")
        assert res.status == "optimal"
        assert res.duals is not None
        np.testing.assert_allclose(res.duals, [-2.0, -1.0], atol=1e-7)
