"""Unit tests for the bounded-variable dual simplex.

The dual engine is warm-only by contract: it re-solves a family member
from a parent's ``(basis, vstat)`` token after a bound change, the
branch-and-bound child-node pattern.  Every terminal answer here is
cross-checked against a cold primal solve of the same member, and the
refusal statuses (``dual_lost`` / ``dual_infeasible``) are asserted to
appear exactly where the contract says: no token, malformed token.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.dual_simplex import DualResult, solve_bounded_lp_dual
from repro.lp.revised_simplex import SparseBoundedLP, solve_bounded_lp


def _family(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None):
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    return SparseBoundedLP(
        c,
        np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, float),
        np.zeros(0) if b_ub is None else np.asarray(b_ub, float),
        np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, float),
        np.zeros(0) if b_eq is None else np.asarray(b_eq, float),
    )


def _random_family(seed: int):
    """A random bounded LP family plus its root box (mostly feasible)."""
    rng = np.random.default_rng(5000 + seed)
    n = int(rng.integers(3, 8))
    m_ub = int(rng.integers(1, 5))
    lb = np.round(rng.uniform(-2.0, 0.0, size=n), 3)
    ub = lb + np.round(rng.uniform(0.5, 4.0, size=n), 3)
    c = np.round(rng.uniform(-5.0, 5.0, size=n), 3)
    a_ub = np.round(rng.uniform(-2.0, 2.0, size=(m_ub, n)), 3)
    x0 = rng.uniform(lb, ub)
    b_ub = a_ub @ x0 + np.round(rng.uniform(0.0, 1.5, size=m_ub), 3)
    if seed % 2 == 0:
        a_eq = np.round(rng.uniform(-1.0, 1.0, size=(1, n)), 3)
        b_eq = a_eq @ x0
    else:
        a_eq, b_eq = None, None
    return _family(c, a_ub, b_ub, a_eq, b_eq), lb, ub, rng


def _tighten(lb, ub, rng):
    lb, ub = lb.copy(), ub.copy()
    j = int(rng.integers(0, lb.shape[0]))
    mid = float(rng.uniform(lb[j], ub[j]))
    if rng.random() < 0.5:
        lb[j] = mid
    else:
        ub[j] = mid
    return lb, ub


class TestEntryContract:
    def test_cold_entry_refuses(self):
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        res = solve_bounded_lp_dual(lp, np.zeros(2), np.full(2, 2.0))
        assert res.status == "dual_lost"

    def test_malformed_token_refuses(self):
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        bad = (np.array([0, 0], dtype=np.int64), np.zeros(3, dtype=np.int8))
        res = solve_bounded_lp_dual(lp, np.zeros(2), np.full(2, 2.0), warm=bad)
        assert res.status == "dual_lost"

    def test_crossed_bounds_short_circuit(self):
        lp = _family([1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        res = solve_bounded_lp_dual(
            lp, np.array([2.0, 0.0]), np.array([1.0, 1.0])
        )
        assert res.status == "infeasible"
        assert res.iterations == 0


class TestChildResolves:
    def test_single_bound_change_matches_primal(self):
        # min -x - 2y st x + y <= 3 on [0,2]^2: optimum (1, 2).
        # Branch y <= 1: the basic x picks up the slack, optimum (2, 1).
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        lb, ub = np.zeros(2), np.full(2, 2.0)
        parent = solve_bounded_lp(lp, lb, ub)
        assert parent.status == "optimal"
        child_ub = ub.copy()
        child_ub[1] = 1.0
        res = solve_bounded_lp_dual(
            lp, lb, child_ub, warm=(parent.basis, parent.vstat)
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-4.0)
        np.testing.assert_allclose(res.x, [2.0, 1.0], atol=1e-9)
        assert res.warm_started

    def test_infeasible_child_detected(self):
        # x + y <= 1; branching both variables up to >= 1 is infeasible.
        lp = _family([1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        lb, ub = np.zeros(2), np.full(2, 5.0)
        parent = solve_bounded_lp(lp, lb, ub)
        assert parent.status == "optimal"
        child_lb = np.ones(2)
        res = solve_bounded_lp_dual(
            lp, child_lb, ub, warm=(parent.basis, parent.vstat)
        )
        assert res.status == "infeasible"

    def test_fixed_column_child(self):
        # Branch-fixing a binary to 1 (lb == ub) must not stall the walk
        # on the fixed column's unconstrained reduced-cost sign.
        lp = _family(
            [-3.0, -2.0, -1.0], a_ub=[[2.0, 3.0, 1.0]], b_ub=[4.0],
            a_eq=[[1.0, 1.0, 1.0]], b_eq=[2.0],
        )
        lb, ub = np.zeros(3), np.ones(3)
        parent = solve_bounded_lp(lp, lb, ub)
        assert parent.status == "optimal"
        child_lb = lb.copy()
        child_lb[1] = 1.0  # fix x1 = 1 (ub already 1)
        res = solve_bounded_lp_dual(
            lp, child_lb, ub, warm=(parent.basis, parent.vstat)
        )
        ref = solve_bounded_lp(lp, child_lb, ub)
        assert res.status == ref.status
        if ref.status == "optimal":
            assert res.objective == pytest.approx(ref.objective, abs=1e-8)

    @pytest.mark.parametrize("seed", range(30))
    def test_random_children_agree_with_primal(self, seed):
        lp, lb, ub, rng = _random_family(seed)
        parent = solve_bounded_lp(lp, lb, ub)
        if parent.status != "optimal":
            pytest.skip("root infeasible for this seed")
        for _ in range(3):
            clb, cub = _tighten(lb, ub, rng)
            res = solve_bounded_lp_dual(
                lp, clb, cub, warm=(parent.basis, parent.vstat)
            )
            ref = solve_bounded_lp(lp, clb, cub)
            # The dual engine may refuse (fallback statuses) but when it
            # answers, the answer must match the primal engine exactly.
            if res.status in ("dual_lost", "dual_infeasible"):
                continue
            assert res.status == ref.status
            if ref.status == "optimal":
                assert res.objective == pytest.approx(
                    ref.objective, rel=1e-6, abs=1e-6
                )
                assert (res.x >= clb - 1e-6).all()
                assert (res.x <= cub + 1e-6).all()

    @pytest.mark.parametrize("seed", range(0, 30, 3))
    def test_nested_chain_with_binv_reuse(self, seed):
        """Grandchild solves fed the parent's cached inverse stay exact."""
        lp, lb, ub, rng = _random_family(seed)
        node = solve_bounded_lp(lp, lb, ub)
        if node.status != "optimal":
            pytest.skip("root infeasible for this seed")
        binv = None
        clb, cub = lb, ub
        for _ in range(4):
            clb, cub = _tighten(clb, cub, rng)
            res = solve_bounded_lp_dual(
                lp, clb, cub, warm=(node.basis, node.vstat), binv=binv
            )
            ref = solve_bounded_lp(lp, clb, cub)
            if res.status in ("dual_lost", "dual_infeasible"):
                node = ref
                binv = None
                if ref.status != "optimal":
                    break
                continue
            assert res.status == ref.status
            if res.status != "optimal":
                break
            assert res.objective == pytest.approx(
                ref.objective, rel=1e-6, abs=1e-6
            )
            assert isinstance(res, DualResult)
            node = res
            binv = res.binv  # None unless the eta file was empty at exit

    def test_optimal_exit_exposes_binv(self):
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        lb, ub = np.zeros(2), np.full(2, 2.0)
        parent = solve_bounded_lp(lp, lb, ub)
        child_ub = ub.copy()
        child_ub[1] = 1.0
        res = solve_bounded_lp_dual(
            lp, lb, child_ub, warm=(parent.basis, parent.vstat)
        )
        assert res.status == "optimal"
        if res.binv is not None:
            # The exposed inverse must actually invert the exit basis
            # (structural columns from the CSC store, slacks as units).
            m = res.basis.shape[0]
            b_mat = np.zeros((m, m))
            for k, j in enumerate(res.basis):
                j = int(j)
                if j < lp.n:
                    idx, dat = lp.a.col(j)
                    b_mat[idx, k] = dat
                else:
                    b_mat[j - lp.n, k] = 1.0
            np.testing.assert_allclose(res.binv @ b_mat, np.eye(m), atol=1e-8)
