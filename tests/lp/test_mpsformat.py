"""MPS writer tests (validated against scipy's HiGHS via round-trip
of the LP equivalents and structural checks)."""

from __future__ import annotations

import pytest

from repro.lp import Problem, quicksum
from repro.lp.mpsformat import _short_names, write_mps_file, write_mps_string


def sample_problem():
    p = Problem("sample")
    x = p.add_variable("x", lb=0.0, ub=3.0)
    y = p.add_variable("a very long variable name", lb=None, ub=None)
    z = p.add_binary("z[a,b]")
    i = p.add_integer("count", lb=1, ub=9)
    p.add_constraint(x + 2 * y - z <= 4, "cap")
    p.add_constraint(y + i >= 1, "low")
    p.add_constraint(x - i == 0, "tie")
    p.set_objective(x + y + 5 * z + i)
    return p


class TestShortNames:
    def test_unique(self):
        mapping = _short_names(["alpha", "alpha!", "alphabetical"], "X")
        assert len(set(mapping.values())) == 3

    def test_width_limit(self):
        mapping = _short_names(["a" * 30], "X")
        assert all(len(v) <= 8 for v in mapping.values())

    def test_non_alpha_start_replaced(self):
        mapping = _short_names(["123abc"], "X")
        assert mapping["123abc"][0].isalpha()


class TestSections:
    def test_all_sections_present(self):
        text, _ = write_mps_string(sample_problem())
        for section in ("NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"):
            assert section in text

    def test_row_senses(self):
        text, _ = write_mps_string(sample_problem())
        rows_section = text.split("ROWS")[1].split("COLUMNS")[0]
        assert " L  " in rows_section
        assert " G  " in rows_section
        assert " E  " in rows_section
        assert " N  OBJ" in rows_section

    def test_integer_markers_paired(self):
        text, _ = write_mps_string(sample_problem())
        assert text.count("'INTORG'") == text.count("'INTEND'")
        assert text.count("'INTORG'") >= 1

    def test_binary_bound(self):
        text, mapping = write_mps_string(sample_problem())
        short = mapping["z[a,b]"]
        assert f" BV BND       {short}" in text

    def test_free_variable(self):
        text, mapping = write_mps_string(sample_problem())
        short = mapping["a very long variable name"]
        assert f" FR BND       {short}" in text

    def test_bounded_variable(self):
        text, mapping = write_mps_string(sample_problem())
        short = mapping["x"]
        assert f" UP BND       {short}" in text

    def test_maximize_negates_objective(self):
        p = Problem(sense="maximize")
        x = p.add_variable("x", ub=1.0)
        p.set_objective(2 * x)
        text, mapping = write_mps_string(p)
        # objective coefficient emitted as -2
        assert "-2" in text

    def test_rhs_zero_omitted(self):
        p = Problem()
        x = p.add_variable("x")
        p.add_constraint(x <= 0, "zero")
        p.set_objective(x)
        text, _ = write_mps_string(p)
        rhs_section = text.split("RHS")[1].split("BOUNDS")[0]
        assert rhs_section.strip() == ""

    def test_write_file_returns_mapping(self, tmp_path):
        path = tmp_path / "m.mps"
        mapping = write_mps_file(sample_problem(), str(path))
        assert path.read_text().endswith("ENDATA\n")
        assert set(mapping) == {v.name for v in sample_problem().variables}

    def test_consolidation_model_exports(self, tiny_state):
        from repro.core import ConsolidationModel

        model = ConsolidationModel(tiny_state)
        text, mapping = write_mps_string(model.problem)
        assert text.count("ENDATA") == 1
        assert len(mapping) == model.problem.num_variables
        # All MPS identifiers fit the fixed-format width.
        assert all(len(v) <= 8 for v in mapping.values())
