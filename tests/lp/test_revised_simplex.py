"""Unit tests for the sparse bounded-variable revised simplex core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.revised_simplex import (
    BASIC,
    REFACTOR_INTERVAL,
    RevisedResult,
    SparseBoundedLP,
    solve_bounded_lp,
)

NO_ROWS = dict(
    a_ub=np.zeros((0, 2)), b_ub=np.zeros(0), a_eq=np.zeros((0, 2)), b_eq=np.zeros(0)
)


def _family(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None):
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    return SparseBoundedLP(
        c,
        np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, float),
        np.zeros(0) if b_ub is None else np.asarray(b_ub, float),
        np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, float),
        np.zeros(0) if b_eq is None else np.asarray(b_eq, float),
    )


class TestStatuses:
    def test_simple_box_lp(self):
        # min -x - 2y st x + y <= 3, 0 <= x,y <= 2 → x=1, y=2, obj=-5.
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        res = solve_bounded_lp(lp, np.zeros(2), np.full(2, 2.0))
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-5.0)
        np.testing.assert_allclose(res.x, [1.0, 2.0], atol=1e-9)

    def test_unbounded(self):
        lp = _family([-1.0, 0.0], a_ub=[[0.0, 1.0]], b_ub=[1.0])
        res = solve_bounded_lp(lp, np.zeros(2), np.full(2, np.inf))
        assert res.status == "unbounded"
        assert res.objective == -np.inf

    def test_infeasible_rows(self):
        # x + y <= 1 with x, y >= 1 each.
        lp = _family([1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[1.0])
        res = solve_bounded_lp(lp, np.ones(2), np.full(2, np.inf))
        assert res.status == "infeasible"

    def test_crossed_bounds_short_circuit(self):
        lp = _family([1.0, 1.0], a_ub=[[1.0, 1.0]], b_ub=[4.0])
        res = solve_bounded_lp(lp, np.array([2.0, 0.0]), np.array([1.0, 1.0]))
        assert res.status == "infeasible"
        assert res.iterations == 0

    def test_equality_rows_only(self):
        # min x + y st x + y = 2, x - y = 0 → x = y = 1.
        lp = _family([1.0, 1.0], a_eq=[[1.0, 1.0], [1.0, -1.0]], b_eq=[2.0, 0.0])
        res = solve_bounded_lp(lp, np.zeros(2), np.full(2, np.inf))
        assert res.status == "optimal"
        np.testing.assert_allclose(res.x, [1.0, 1.0], atol=1e-8)

    def test_free_variable(self):
        # min y st y >= x - 3, y >= -x - 1, x free → y = -2 at x = 1.
        lp = _family(
            [0.0, 1.0], a_ub=[[1.0, -1.0], [-1.0, -1.0]], b_ub=[3.0, 1.0]
        )
        res = solve_bounded_lp(
            lp, np.array([-np.inf, -np.inf]), np.array([np.inf, np.inf])
        )
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-2.0, abs=1e-8)

    def test_iteration_limit(self):
        lp = _family([-1.0, -2.0], a_ub=[[1.0, 1.0]], b_ub=[3.0])
        res = solve_bounded_lp(lp, np.zeros(2), np.full(2, 2.0), max_iterations=1)
        assert res.status in ("iteration_limit", "optimal")


class TestNoRows:
    def test_bounds_only_minimization(self):
        lp = _family([1.0, -1.0])
        res = solve_bounded_lp(lp, np.array([-1.0, -2.0]), np.array([5.0, 3.0]))
        assert res.status == "optimal"
        np.testing.assert_allclose(res.x, [-1.0, 3.0], atol=1e-12)

    def test_bounds_only_unbounded(self):
        lp = _family([1.0, -1.0])
        res = solve_bounded_lp(lp, np.array([-np.inf, 0.0]), np.array([np.inf, 1.0]))
        assert res.status == "unbounded"


class TestBoundFlips:
    def test_flip_is_counted_and_correct(self):
        # min -x st x <= 1 slackly rowed: x enters, hits its own upper
        # bound before any basic blocks → a bound flip, no basis change.
        lp = _family([-1.0], a_ub=[[1.0]], b_ub=[10.0])
        res = solve_bounded_lp(lp, np.zeros(1), np.ones(1))
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-1.0)
        assert res.bound_flips >= 1


class TestWarmStart:
    def _kw(self):
        rng = np.random.default_rng(77)
        n, m = 8, 5
        a_ub = rng.normal(size=(m, n))
        b_ub = rng.normal(size=m) + 4.0
        return _family(rng.normal(size=n), a_ub=a_ub, b_ub=b_ub), n

    def test_warm_start_round_trip(self):
        lp, n = self._kw()
        lb, ub = np.zeros(n), np.ones(n)
        cold = solve_bounded_lp(lp, lb, ub)
        assert cold.status == "optimal"
        warm = solve_bounded_lp(lp, lb, ub, warm=(cold.basis, cold.vstat))
        assert warm.status == "optimal"
        assert warm.warm_started
        assert warm.objective == pytest.approx(cold.objective)
        # Re-solving at the optimum needs no phase-1 repair pivots.
        assert warm.phase1_iterations == 0

    def test_corrupt_token_falls_back_to_cold_start(self):
        lp, n = self._kw()
        lb, ub = np.zeros(n), np.ones(n)
        cold = solve_bounded_lp(lp, lb, ub)
        bad_basis = np.zeros_like(cold.basis)  # duplicated indices: singular
        warm = solve_bounded_lp(lp, lb, ub, warm=(bad_basis, cold.vstat))
        assert warm.status == "optimal"
        assert not warm.warm_started
        assert warm.objective == pytest.approx(cold.objective)

    def test_wrong_shape_token_falls_back(self):
        lp, n = self._kw()
        lb, ub = np.zeros(n), np.ones(n)
        warm = solve_bounded_lp(lp, lb, ub, warm=(np.array([0]), np.array([BASIC])))
        assert warm.status == "optimal"
        assert not warm.warm_started


class TestRefactorization:
    def test_long_solves_refactorize_periodically(self):
        # A dense random LP big enough to take > REFACTOR_INTERVAL pivots.
        rng = np.random.default_rng(5)
        n, m = 60, 45
        lp = _family(
            rng.normal(size=n),
            a_ub=rng.normal(size=(m, n)),
            b_ub=rng.normal(size=m) + float(n),
        )
        res = solve_bounded_lp(lp, np.zeros(n), np.ones(n))
        assert res.status == "optimal"
        if res.iterations > REFACTOR_INTERVAL:
            assert res.refactorizations >= 2
        # Every retired eta was one basis-changing pivot.
        assert res.eta_file_length <= res.iterations
        assert res.pricing_passes >= 1

    def test_counters_present_on_result(self):
        res = RevisedResult(status="optimal", x=None, objective=0.0, iterations=0)
        for name in (
            "refactorizations", "eta_file_length", "pricing_passes", "bound_flips",
        ):
            assert getattr(res, name) == 0
