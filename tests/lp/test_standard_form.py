"""Tests for Problem → matrix/standard-form conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import ObjectiveSense, Problem
from repro.lp.standard_form import to_matrix_form, to_standard_form


def small_problem():
    p = Problem()
    x = p.add_variable("x", lb=1.0, ub=4.0)
    y = p.add_variable("y", lb=None, ub=None)  # free
    z = p.add_binary("z")
    p.add_constraint(x + 2 * y <= 10, "c_le")
    p.add_constraint(y + z >= -2, "c_ge")
    p.add_constraint(x - z == 1, "c_eq")
    p.set_objective(3 * x - y + 5 * z + 7)
    return p, x, y, z


class TestMatrixForm:
    def test_shapes_and_bounds(self):
        p, x, y, z = small_problem()
        form = to_matrix_form(p)
        assert form.c.shape == (3,)
        assert form.a_ub.shape == (2, 3)  # LE row + flipped GE row
        assert form.a_eq.shape == (1, 3)
        assert form.lb[0] == 1.0 and form.ub[0] == 4.0
        assert np.isneginf(form.lb[1]) and np.isposinf(form.ub[1])
        assert form.integrality.tolist() == [0, 0, 1]

    def test_ge_rows_are_flipped(self):
        p, x, y, z = small_problem()
        form = to_matrix_form(p)
        # second ub row encodes -(y + z) <= 2
        assert form.b_ub[1] == pytest.approx(2.0)
        assert form.a_ub[1].tolist() == [0.0, -1.0, -1.0]

    def test_objective_constant_carried(self):
        p, *_ = small_problem()
        form = to_matrix_form(p)
        assert form.c0 == pytest.approx(7.0)

    def test_maximize_flips_sign(self):
        p = Problem(sense=ObjectiveSense.MAXIMIZE)
        x = p.add_variable("x")
        p.set_objective(2 * x)
        form = to_matrix_form(p)
        assert form.c[0] == pytest.approx(-2.0)
        assert form.objective_sign == -1.0

    def test_empty_constraint_matrices(self):
        p = Problem()
        p.add_variable("x")
        form = to_matrix_form(p)
        assert form.a_ub.shape == (0, 1)
        assert form.a_eq.shape == (0, 1)


class TestStandardForm:
    def test_b_nonnegative(self):
        p, *_ = small_problem()
        sf = to_standard_form(p)
        assert (sf.b >= 0).all()

    def test_recover_roundtrip(self):
        p, x, y, z = small_problem()
        sf = to_standard_form(p)
        # Construct a standard-form point representing x=2, y=-1, z=1.
        n = sf.a.shape[1]
        point = np.zeros(n)
        point[sf.plus_index[x]] = 2.0 - 1.0  # shifted by lb=1
        point[sf.plus_index[y]] = 0.0
        point[sf.minus_index[y]] = 1.0  # y = 0 - 1 = -1
        point[sf.plus_index[z]] = 1.0
        values = sf.recover(point)
        assert values[x] == pytest.approx(2.0)
        assert values[y] == pytest.approx(-1.0)
        assert values[z] == pytest.approx(1.0)

    def test_free_variable_split(self):
        p, x, y, z = small_problem()
        sf = to_standard_form(p)
        assert y in sf.minus_index
        assert x not in sf.minus_index

    def test_shift_recorded_for_bounded(self):
        p, x, y, z = small_problem()
        sf = to_standard_form(p)
        assert sf.shift[x] == 1.0

    def test_upper_bounds_become_rows(self):
        p = Problem()
        x = p.add_variable("x", lb=0.0, ub=3.0)
        p.set_objective(-x)
        sf = to_standard_form(p)
        # one row: x + slack = 3
        assert sf.a.shape[0] == 1
        assert sf.b[0] == pytest.approx(3.0)

    def test_objective_constant_includes_shift(self):
        p = Problem()
        x = p.add_variable("x", lb=2.0)
        p.set_objective(3 * x + 1)
        sf = to_standard_form(p)
        # c0 = 1 + 3*2
        assert sf.c0 == pytest.approx(7.0)


class TestFreeVariableUpperBound:
    """Regression: a free variable's ub row must keep the minus column.

    Pre-fix, ``to_standard_form`` emitted ``x_plus <= ub`` instead of
    ``x_plus - x_minus <= ub``; with a negative upper bound that row is
    unsatisfiable (``x_plus >= 0``) and a feasible problem was reported
    infeasible.
    """

    def _solve(self, problem):
        from repro.lp.simplex import solve_standard_form

        sf = to_standard_form(problem)
        res = solve_standard_form(sf.a, sf.b, sf.c)
        return sf, res

    def test_ub_row_carries_minus_column(self):
        p = Problem()
        x = p.add_variable("x", lb=None, ub=-2.0)
        p.set_objective(-x)
        sf = to_standard_form(p)
        row = sf.a[0]
        assert row[sf.plus_index[x]] == pytest.approx(1.0) or row[
            sf.plus_index[x]
        ] == pytest.approx(-1.0)  # may be sign-flipped for b >= 0
        assert row[sf.minus_index[x]] == pytest.approx(-row[sf.plus_index[x]])

    def test_negative_optimum_of_free_upper_bounded_variable(self):
        # max x  s.t.  x free, x <= -2  →  optimum x = -2 (negative).
        p = Problem()
        x = p.add_variable("x", lb=None, ub=-2.0)
        p.add_constraint(x >= -10)  # keep the LP bounded below
        p.set_objective(-x)
        sf, res = self._solve(p)
        assert res.status == "optimal"
        values = sf.recover(res.x)
        assert values[x] == pytest.approx(-2.0)

    def test_interacting_constraint_with_negative_ub(self):
        # min x + y with x free, x <= -1, y >= 0, x + y >= -3.
        p = Problem()
        x = p.add_variable("x", lb=None, ub=-1.0)
        y = p.add_variable("y", lb=0.0)
        p.add_constraint(x + y >= -3)
        p.set_objective(x + y)
        sf, res = self._solve(p)
        assert res.status == "optimal"
        assert res.objective + sf.c0 == pytest.approx(-3.0)
