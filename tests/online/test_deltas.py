"""Placement diffs, delta costing, oscillation detection."""

from __future__ import annotations

import pytest

from repro.online import PlanDelta, diff_placements, oscillating_moves
from repro.online.deltas import DeltaEconomics


class TestDiffPlacements:
    def test_only_changed_groups_move(self, online_state):
        groups = [g.name for g in online_state.app_groups]
        before = {g: "location0" for g in groups}
        after = dict(before, **{groups[0]: "location1", groups[3]: "location2"})
        moves = diff_placements(online_state, before, after)
        assert [m.group for m in moves] == [groups[0], groups[3]]
        assert all(m.from_site == "location0" for m in moves)

    def test_costing_follows_economics(self, online_state):
        group = online_state.app_groups[0]
        moves = diff_placements(
            online_state,
            {group.name: "location0"},
            {group.name: "location1"},
            DeltaEconomics(move_cost_per_server=7.0, data_gb_per_server=3.0),
        )
        (move,) = moves
        assert move.move_cost == pytest.approx(7.0 * group.servers)
        assert move.data_gb == pytest.approx(3.0 * group.servers)

    def test_deterministic_state_order(self, online_state):
        groups = [g.name for g in online_state.app_groups]
        before = {g: "location0" for g in groups}
        after = {g: "location1" for g in groups}
        moves = diff_placements(online_state, before, after)
        assert [m.group for m in moves] == groups

    def test_identical_placements_diff_empty(self, online_state):
        placement = {g.name: "location0" for g in online_state.app_groups}
        assert diff_placements(online_state, placement, placement) == []

    def test_negative_economics_rejected(self):
        with pytest.raises(ValueError):
            DeltaEconomics(move_cost_per_server=-1.0)


def delta_at(t, moves):
    from repro.migration import Move

    return PlanDelta(
        time_hours=t,
        reason="test",
        moves=[
            Move(group=g, servers=1, from_site=src, to_site=dst,
                 data_gb=0.0, move_cost=0.0)
            for g, src, dst in moves
        ],
    )


class TestOscillatingMoves:
    def test_reversal_within_window_detected(self):
        deltas = [
            delta_at(10.0, [("g", "a", "b")]),
            delta_at(50.0, [("g", "b", "a")]),
        ]
        assert oscillating_moves(deltas, window_hours=100.0) == [("g", 10.0, 50.0)]

    def test_reversal_outside_window_ignored(self):
        deltas = [
            delta_at(10.0, [("g", "a", "b")]),
            delta_at(500.0, [("g", "b", "a")]),
        ]
        assert oscillating_moves(deltas, window_hours=100.0) == []

    def test_forward_chain_is_not_an_oscillation(self):
        deltas = [
            delta_at(10.0, [("g", "a", "b")]),
            delta_at(20.0, [("g", "b", "c")]),
        ]
        assert oscillating_moves(deltas, window_hours=100.0) == []
