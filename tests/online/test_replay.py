"""Replay harness: determinism, no-thrash, incremental/full parity."""

from __future__ import annotations

import pytest

from repro.datasets import online_line_trace
from repro.online import ReplayConfig, run_replay
from repro.online.replay import build_queue
from repro.sim import EventKind, LoadEvent
from repro.sim.failures import Outage

from .conftest import OPTS

HORIZON = 96.0


def replay(state, profile, incremental=True, horizon=HORIZON):
    load, outages = online_line_trace(
        state, profile=profile, horizon_hours=horizon, seed=1
    )
    return run_replay(
        state,
        load,
        outages,
        ReplayConfig(horizon_hours=horizon, incremental=incremental),
        OPTS,
    )


def signature(result):
    """Semantic delta identity — excludes wall-clock solve times and the
    reuse annotation (``via`` differs between the warm and cold arms)."""
    return [
        (
            d.time_hours,
            d.reason,
            round(d.cost_before, 6),
            round(d.cost_after, 6),
            [(m.group, m.from_site, m.to_site) for m in d.moves],
        )
        for d in result.deltas
    ]


class TestBuildQueue:
    def test_skips_events_beyond_horizon(self):
        queue = build_queue(
            [LoadEvent(10.0, "g", 1.5), LoadEvent(96.0, "g", 2.0)], [], 96.0
        )
        assert len(queue) == 1

    def test_zero_duration_outages_dropped(self):
        queue = build_queue([], [Outage("s", 10.0, 10.0)], 96.0)
        assert len(queue) == 0

    def test_repair_at_horizon_not_queued(self):
        queue = build_queue([], [Outage("s", 10.0, 96.0)], 96.0)
        events = [queue.pop() for _ in range(len(queue))]
        assert [e.kind for e in events] == [EventKind.SITE_FAIL]

    def test_repair_before_failure_at_same_instant(self):
        queue = build_queue(
            [], [Outage("a", 5.0, 20.0), Outage("b", 20.0, 40.0)], 96.0
        )
        kinds = [queue.pop().kind for _ in range(len(queue))]
        assert kinds == [
            EventKind.SITE_FAIL,      # a fails at 5
            EventKind.SITE_REPAIR,    # a repairs at 20 ...
            EventKind.SITE_FAIL,      # ... before b fails at 20
            EventKind.SITE_REPAIR,
        ]


class TestReplay:
    def test_diurnal_emits_migration_deltas(self, online_state):
        result = replay(online_state, "diurnal")
        assert result.deltas
        n_groups = len(online_state.app_groups)
        for delta in result.deltas:
            assert 0 < len(delta.moves) < n_groups  # a diff, not a plan
        assert result.counters["online.deltas_emitted"] == len(result.deltas)
        assert result.counters["online.events_processed"] > 0

    @pytest.mark.parametrize("profile", ["diurnal", "flash"])
    def test_no_thrash_on_load_only_profiles(self, online_state, profile):
        result = replay(online_state, profile)
        assert result.oscillations() == []

    def test_same_trace_twice_is_deterministic(self, online_state):
        a = replay(online_state, "mixed")
        b = replay(online_state, "mixed")
        assert signature(a) == signature(b)

    def test_incremental_matches_full_replan(self, online_state):
        incremental = replay(online_state, "mixed", incremental=True)
        full = replay(online_state, "mixed", incremental=False)
        assert signature(incremental) == signature(full)
        assert incremental.final_cost == pytest.approx(full.final_cost)

    def test_mixed_profile_handles_the_outage(self, online_state):
        result = replay(online_state, "mixed")
        assert any("site_fail" in d.reason for d in result.deltas)
        # The estate ends on repaired capacity: final cost stays sane.
        assert result.final_cost > 0

    def test_counters_only_report_movement(self, online_state):
        # Growth's first weekly step lands past a 96h horizon: the queue
        # is empty, nothing replans, and no counter moves at all.
        result = replay(online_state, "growth")
        assert result.deltas == []
        assert result.counters == {}

    def test_result_dict_is_json_ready(self, online_state):
        import json

        result = replay(online_state, "flash")
        payload = json.loads(json.dumps(result.as_dict()))
        assert payload["incremental"] is True
        assert payload["total_moves"] == result.total_moves
        assert len(payload["deltas"]) == len(result.deltas)
        assert payload["oscillating_moves"] == 0

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            ReplayConfig(horizon_hours=0.0)
