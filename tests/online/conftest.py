"""Shared fixture: a small, well-behaved online scenario."""

from __future__ import annotations

import pytest

from repro.core.planner import PlannerOptions
from repro.datasets import online_line_scenario

OPTS = PlannerOptions(backend="highs")


@pytest.fixture
def online_state():
    """16 groups / 5 sites with ~2.5x headroom — fast and thrash-free."""
    return online_line_scenario(
        n_groups=16, total_servers=400, n_datacenters=5, capacity=220, seed=11
    )
