"""Threshold triggers, anti-thrash guards, and site policy."""

from __future__ import annotations

import pytest

from repro.online import ControllerConfig, OnlineController
from repro.sim import EventKind, EventQueue, LoadEvent

from .conftest import OPTS


def make_controller(state, **cfg) -> OnlineController:
    controller = OnlineController(state, OPTS, ControllerConfig(**cfg))
    controller.initial_plan()
    return controller


def site_groups(controller) -> dict[str, list]:
    hosted: dict[str, list] = {}
    for group in controller.state.app_groups:
        hosted.setdefault(controller.incumbent.placement[group.name], []).append(group)
    return hosted


def event(time, kind, site):
    q = EventQueue()
    q.push(time, kind, site=site)
    return q.pop()


class TestConfig:
    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValueError):
            ControllerConfig(underload_utilization=0.8, target_utilization=0.7)
        with pytest.raises(ValueError):
            ControllerConfig(overload_utilization=0.6, target_utilization=0.7)

    def test_move_penalty_is_amortized(self):
        cfg = ControllerConfig(move_cost_per_server=300.0, payback_window_months=6.0)
        assert cfg.move_penalty_per_server == pytest.approx(50.0)


class TestObserve:
    def test_unknown_group_rejected(self, online_state):
        controller = OnlineController(online_state, OPTS)
        with pytest.raises(KeyError):
            controller.observe(LoadEvent(0.0, "nope", 1.0))

    def test_unknown_site_rejected(self, online_state):
        controller = OnlineController(online_state, OPTS)
        with pytest.raises(ValueError, match="not a target"):
            controller.observe(event(0.0, EventKind.SITE_FAIL, "nope"))

    def test_unconsumable_kind_rejected(self, online_state):
        controller = OnlineController(online_state, OPTS)
        with pytest.raises(ValueError, match="cannot consume"):
            controller.observe(event(0.0, EventKind.HORIZON_END, None))

    def test_utilization_requires_incumbent(self, online_state):
        controller = OnlineController(online_state, OPTS)
        with pytest.raises(RuntimeError, match="initial_plan"):
            controller.site_utilization()


class TestTriggers:
    def test_nominal_load_settles_to_quiescence(self, online_state):
        # The offline plan packs sites to capacity; the controller's
        # first replans spread them to the target band, after which a
        # constant load produces no further triggers.
        controller = make_controller(online_state)
        for i in range(5):
            reasons = controller.trigger_reasons(i * 48.0)
            if not reasons:
                break
            controller.replan(i * 48.0, reasons)
        assert controller.trigger_reasons(5 * 48.0) == []
        assert all(
            u <= controller.config.overload_utilization
            for u in controller.site_utilization().values()
        )

    def test_overload_is_forced_and_first(self, online_state):
        controller = make_controller(online_state)
        site, groups = max(site_groups(controller).items(), key=lambda kv: len(kv[1]))
        for group in groups:
            controller.observe(LoadEvent(1.0, group.name, 3.0))
        reasons = controller.trigger_reasons(1.0)
        assert f"overload:{site}" in reasons
        assert reasons[0].startswith(("overload:", "site_fail:"))

    def test_failed_site_triggers_only_while_hosting(self, online_state):
        controller = make_controller(online_state)
        hosted = site_groups(controller)
        victim = next(iter(sorted(hosted)))
        controller.observe(event(1.0, EventKind.SITE_FAIL, victim))
        assert f"site_fail:{victim}" in controller.trigger_reasons(1.0)
        # Once retired (post-replan), the same outage stops triggering.
        controller.failed_sites.add(victim)
        assert f"site_fail:{victim}" not in controller.trigger_reasons(1.0)

    def test_underload_parks_one_site_per_replan(self, online_state):
        controller = make_controller(online_state)
        for group in online_state.app_groups:
            controller.observe(LoadEvent(1.0, group.name, 0.1))
        reasons = controller.trigger_reasons(1.0)
        assert len([r for r in reasons if r.startswith("underload:")]) == 1

    def test_underload_respects_cooldown(self, online_state):
        controller = make_controller(online_state, voluntary_cooldown_hours=24.0)
        for group in online_state.app_groups:
            controller.observe(LoadEvent(1.0, group.name, 0.1))
        assert controller.trigger_reasons(1.0)
        controller.voluntary_hold_until = 30.0
        assert controller.trigger_reasons(1.0) == []
        assert controller.trigger_reasons(31.0)


class TestReplan:
    def test_site_failure_emits_evacuation_delta(self, online_state):
        controller = make_controller(online_state)
        hosted = site_groups(controller)
        victim = next(iter(sorted(hosted)))
        delta = controller.step(1.0, [event(1.0, EventKind.SITE_FAIL, victim)])
        assert delta is not None
        assert {m.group for m in delta.moves} == {g.name for g in hosted[victim]}
        assert all(m.from_site == victim for m in delta.moves)
        assert victim not in controller.incumbent.placement.values()

    def test_delta_is_a_diff_not_a_full_plan(self, online_state):
        controller = make_controller(online_state)
        hosted = site_groups(controller)
        victim = next(iter(sorted(hosted)))
        delta = controller.step(1.0, [event(1.0, EventKind.SITE_FAIL, victim)])
        assert 0 < len(delta.moves) < len(online_state.app_groups)

    def test_voluntary_suppression_counts_thrash(self, online_state):
        # A prohibitively expensive move economy: any voluntary diff fails
        # the payback guard and is suppressed, leaving the incumbent alone.
        controller = make_controller(
            online_state, move_cost_per_server=1e9, payback_window_months=0.001
        )
        incumbent = dict(controller.incumbent.placement)
        for group in online_state.app_groups:
            controller.observe(LoadEvent(1.0, group.name, 0.1))
        reasons = controller.trigger_reasons(1.0)
        assert reasons and all(r.startswith("underload:") for r in reasons)
        assert controller.replan(1.0, reasons) is None
        assert controller.incumbent.placement == incumbent
        assert controller.parked_sites == set()  # unparked for feasibility
        assert controller.deltas == []

    def test_repair_after_failure_restores_capacity(self, online_state):
        controller = make_controller(online_state)
        hosted = site_groups(controller)
        victim = next(iter(sorted(hosted)))
        controller.step(1.0, [event(1.0, EventKind.SITE_FAIL, victim)])
        assert victim in controller.failed_sites
        controller.step(50.0, [event(50.0, EventKind.SITE_REPAIR, victim)])
        assert victim not in controller.failed_sites
        assert victim not in controller.down_sites

    def test_cap_directive_freezes_observed_factors(self, online_state):
        controller = make_controller(online_state)
        group = online_state.app_groups[0]
        controller.observe(LoadEvent(1.0, group.name, 1.75))
        site = controller.incumbent.placement[group.name]
        cap = controller._cap_directive(site)
        weights = dict(cap.weights)
        assert weights[group.name] == pytest.approx(1.75 * group.servers)
        assert cap.limit == pytest.approx(
            controller.config.target_utilization * controller.targets[site].capacity
        )

    def test_overload_unparks_parked_sites(self, online_state):
        controller = make_controller(online_state)
        controller.parked_sites.add("location4")
        controller._refresh_site_policy(["overload:location0"])
        assert controller.parked_sites == set()
        assert "location0" in controller.caps
