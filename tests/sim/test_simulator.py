"""Estate simulator semantics, driven by hand-crafted outage scripts."""

from __future__ import annotations

import pytest

from repro.core import evaluate_plan, plan_consolidation
from repro.sim import (
    FailureModelConfig,
    Outage,
    SimulatorConfig,
    compare_resilience,
    simulate_plan,
)
from repro.sim.failures import HOURS_PER_MONTH

CONFIG = SimulatorConfig(horizon_months=1.0, failover_hours=0.5)
HORIZON = CONFIG.horizon_months * HOURS_PER_MONTH


@pytest.fixture
def dr_plan(tiny_state):
    placement = {"erp": "mid", "web": "mid", "batch": "cheap-far", "bi": "cheap-far"}
    secondary = {g: "east-dc" for g in placement}
    return evaluate_plan(tiny_state, placement, secondary=secondary)


@pytest.fixture
def bare_plan(tiny_state):
    placement = {g.name: "mid" for g in tiny_state.app_groups}
    return evaluate_plan(tiny_state, placement)


class TestNoOutages:
    def test_perfect_availability(self, tiny_state, dr_plan):
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=[])
        assert report.outages == 0
        assert report.mean_availability == 1.0
        assert report.total_failovers == 0


class TestFailover:
    def test_single_failure_fails_over(self, tiny_state, dr_plan):
        outages = [Outage("mid", 100.0, 200.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        assert report.outages == 1
        # erp and web fail over; batch and bi are untouched.
        assert report.groups["erp"].failovers == 1
        assert report.groups["web"].failovers == 1
        assert report.groups["batch"].failovers == 0
        # Downtime is just the failover blip.
        assert report.groups["erp"].downtime_hours == pytest.approx(0.5)
        assert report.groups["erp"].failbacks == 1

    def test_no_dr_means_down_for_the_outage(self, tiny_state, bare_plan):
        outages = [Outage("mid", 100.0, 200.0)]
        report = simulate_plan(tiny_state, bare_plan, CONFIG, outages=outages)
        for g in ("erp", "web", "batch", "bi"):
            assert report.groups[g].downtime_hours == pytest.approx(100.0)
            assert report.groups[g].failovers == 0

    def test_availability_math(self, tiny_state, bare_plan):
        outages = [Outage("mid", 0.0, HORIZON / 2)]
        report = simulate_plan(tiny_state, bare_plan, CONFIG, outages=outages)
        assert report.mean_availability == pytest.approx(0.5)

    def test_outage_open_at_horizon(self, tiny_state, bare_plan):
        outages = [Outage("mid", HORIZON - 10.0, HORIZON)]
        report = simulate_plan(tiny_state, bare_plan, CONFIG, outages=outages)
        assert report.groups["erp"].downtime_hours == pytest.approx(10.0)


class TestPoolLimits:
    def test_pool_exhaustion_denies_failover(self, tiny_state, dr_plan):
        # Shared pool at east-dc = max(70, 85) = 85 servers.  A double
        # failure needs 155 and must produce a shortfall.
        outages = [
            Outage("mid", 100.0, 300.0),
            Outage("cheap-far", 150.0, 250.0),
        ]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        assert report.concurrent_failure_peak == 2
        assert report.shortfalls  # pool could not absorb both sites
        denied = sum(g.denied_failovers for g in report.groups.values())
        assert denied >= 1

    def test_single_failures_never_shortfall(self, tiny_state, dr_plan):
        # Sequential (non-overlapping) failures are exactly what the
        # shared pool was sized for.
        outages = [
            Outage("mid", 100.0, 150.0),
            Outage("cheap-far", 200.0, 250.0),
        ]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        assert not report.shortfalls
        assert report.total_failovers == 4

    def test_secondary_site_failure_drops_refugees(self, tiny_state, dr_plan):
        outages = [
            Outage("mid", 100.0, 400.0),
            Outage("east-dc", 200.0, 300.0),  # refuge fails underneath them
        ]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        # erp/web fail over at t=100, go down at t=200 when east-dc dies,
        # and only return when mid repairs at t=400.
        assert report.groups["erp"].downtime_hours == pytest.approx(0.5 + 200.0)


class TestValidationAndComparison:
    def test_unknown_outage_site_rejected(self, tiny_state, dr_plan):
        with pytest.raises(ValueError, match="not used by the plan"):
            simulate_plan(
                tiny_state, dr_plan, CONFIG, outages=[Outage("ghost", 0.0, 1.0)]
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SimulatorConfig(horizon_months=0)
        with pytest.raises(ValueError):
            SimulatorConfig(failover_hours=-1)

    def test_dr_plan_beats_bare_plan(self, tiny_state):
        dr = plan_consolidation(tiny_state, enable_dr=True, backend="highs")
        bare = plan_consolidation(tiny_state, backend="highs")
        config = SimulatorConfig(
            horizon_months=240.0,
            failure=FailureModelConfig(mtbf_hours=4000.0, mttr_hours=96.0, seed=11),
        )
        reports = compare_resilience(tiny_state, {"dr": dr, "bare": bare}, config)
        assert reports["dr"].mean_availability >= reports["bare"].mean_availability
        assert reports["dr"].total_failovers > 0

    def test_report_summary_text(self, tiny_state, dr_plan):
        outages = [Outage("mid", 100.0, 200.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        text = report.summary()
        assert "availability" in text
        assert "failovers" in text

    def test_sampled_simulation_runs(self, tiny_state, dr_plan):
        config = SimulatorConfig(
            horizon_months=120.0,
            failure=FailureModelConfig(mtbf_hours=2000.0, mttr_hours=48.0, seed=5),
        )
        report = simulate_plan(tiny_state, dr_plan, config)
        assert report.outages > 0
        assert 0.0 < report.mean_availability <= 1.0


class TestBlipEdgeCases:
    """Regressions for the failover-blip accounting rewrite.

    The blip used to be charged to downtime up front and *pre-subtracted*
    from secondary hours, which went negative (then was clamped, inflating
    accounted hours past the horizon) whenever the outage was shorter than
    the blip or the secondary died mid-blip.  The blip is now an explicit
    interval, so every hour lands in exactly one bucket.
    """

    def test_outage_shorter_than_blip(self, tiny_state, dr_plan):
        # 0.2 h outage with a 0.5 h blip: the group fails straight back
        # mid-blip.  Downtime is the outage, not the full blip, and
        # secondary hours are exactly zero — never negative.
        outages = [Outage("mid", 100.0, 100.2)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.downtime_hours == pytest.approx(0.2)
        assert erp.secondary_hours == 0.0
        assert erp.failovers == 1
        assert erp.failbacks == 1
        total = erp.primary_hours + erp.secondary_hours + erp.downtime_hours
        assert total == pytest.approx(HORIZON)

    def test_stale_completion_after_failback_is_ignored(self, tiny_state, dr_plan):
        # The FAILOVER_COMPLETE scheduled for the aborted blip above
        # fires at t=100.5 while the group already serves from its
        # repaired primary; it must not flip the group to "secondary".
        outages = [Outage("mid", 100.0, 100.2)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.primary_hours == pytest.approx(HORIZON - 0.2)

    def test_secondary_fails_mid_blip(self, tiny_state, dr_plan):
        # The refuge dies 0.2 h into a 0.5 h blip: the group is down for
        # the whole primary outage, with no secondary service at all and
        # no inflated accounting.
        outages = [
            Outage("mid", 100.0, 300.0),
            Outage("east-dc", 100.2, 150.0),
        ]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.secondary_hours == 0.0
        assert erp.downtime_hours == pytest.approx(200.0)
        assert erp.failovers == 1
        total = erp.primary_hours + erp.secondary_hours + erp.downtime_hours
        assert total == pytest.approx(HORIZON)

    def test_blip_open_at_horizon(self, tiny_state, dr_plan):
        # Failover starts 0.5 h before the horizon; the completion lands
        # exactly *at* the horizon and is never processed.  The open
        # blip closes as downtime and the partition still holds.
        outages = [Outage("mid", HORIZON - 0.5, HORIZON)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.downtime_hours == pytest.approx(0.5)
        assert erp.secondary_hours == 0.0
        total = erp.primary_hours + erp.secondary_hours + erp.downtime_hours
        assert total == pytest.approx(HORIZON)

    def test_repair_exactly_at_horizon(self, tiny_state, dr_plan):
        # A repair at the horizon instant is outside the simulated
        # window (drain is horizon-exclusive): the group stays on its
        # secondary until the horizon closes the interval.
        outages = [Outage("mid", HORIZON - 10.0, HORIZON)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.downtime_hours == pytest.approx(0.5)
        assert erp.secondary_hours == pytest.approx(9.5)
        total = erp.primary_hours + erp.secondary_hours + erp.downtime_hours
        assert total == pytest.approx(HORIZON)

    def test_zero_duration_outages_are_skipped(self, tiny_state, dr_plan):
        # An interval clamped to nothing affects nobody — with repairs
        # ordered before failures at equal timestamps, queueing it would
        # otherwise leave the site permanently failed.
        outages = [Outage("mid", 100.0, 100.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        assert report.outages == 0
        assert report.total_failovers == 0
        assert report.mean_availability == 1.0

    def test_back_to_back_outages_resolve_as_two(self, tiny_state, dr_plan):
        # Repair at t=200 processes before the new failure at t=200, so
        # the group fails over twice instead of being stranded.
        outages = [Outage("mid", 100.0, 200.0), Outage("mid", 200.0, 300.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.failovers == 2
        assert erp.failbacks == 2
        assert erp.downtime_hours == pytest.approx(1.0)  # two blips
        total = erp.primary_hours + erp.secondary_hours + erp.downtime_hours
        assert total == pytest.approx(HORIZON)


class TestCompareResilienceDeterminism:
    def _report_signature(self, report):
        return (
            report.outages,
            report.mean_availability,
            tuple(
                (name, g.failovers, g.downtime_hours, g.secondary_hours)
                for name, g in sorted(report.groups.items())
            ),
        )

    def test_subset_invariance(self, tiny_state):
        # The same seed must give a plan the same disasters whether it
        # is compared alongside other plans or alone: per-site outage
        # streams cannot depend on which other sites were sampled.
        dr = plan_consolidation(tiny_state, enable_dr=True, backend="highs")
        bare = plan_consolidation(tiny_state, backend="highs")
        config = SimulatorConfig(
            horizon_months=240.0,
            failure=FailureModelConfig(mtbf_hours=3000.0, mttr_hours=96.0, seed=7),
        )
        both = compare_resilience(tiny_state, {"dr": dr, "bare": bare}, config)
        alone = compare_resilience(tiny_state, {"dr": dr}, config)
        assert self._report_signature(both["dr"]) == self._report_signature(
            alone["dr"]
        )

    def test_repeatable_across_calls(self, tiny_state):
        dr = plan_consolidation(tiny_state, enable_dr=True, backend="highs")
        config = SimulatorConfig(
            horizon_months=240.0,
            failure=FailureModelConfig(mtbf_hours=3000.0, mttr_hours=96.0, seed=7),
        )
        a = compare_resilience(tiny_state, {"dr": dr}, config)
        b = compare_resilience(tiny_state, {"dr": dr}, config)
        assert self._report_signature(a["dr"]) == self._report_signature(b["dr"])


class TestModeAccounting:
    def test_hours_partition_the_horizon(self, tiny_state, dr_plan):
        outages = [Outage("mid", 100.0, 200.0), Outage("cheap-far", 300.0, 350.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        for outcome in report.groups.values():
            total = (
                outcome.primary_hours
                + outcome.secondary_hours
                + outcome.downtime_hours
            )
            assert total == pytest.approx(HORIZON)

    def test_experienced_latency_blends_sites(self, tiny_state, dr_plan):
        # erp at mid (east 8ms, west 9ms → mean 8.2) fails over to
        # east-dc (east 4, west 30 → mean 9.2) for 100 h of the month.
        outages = [Outage("mid", 100.0, 200.0)]
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=outages)
        erp = report.groups["erp"]
        assert erp.secondary_hours == pytest.approx(100.0 - 0.5)
        lat = erp.experienced_latency_ms
        assert lat is not None
        assert 8.2 < lat < 9.2  # strictly between the two site latencies

    def test_userless_groups_have_no_latency(self, tiny_state, dr_plan):
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=[])
        assert report.groups["batch"].experienced_latency_ms is None

    def test_quiet_horizon_latency_equals_primary(self, tiny_state, dr_plan):
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=[])
        erp = report.groups["erp"]
        group = tiny_state.group("erp")
        expected = group.mean_latency(tiny_state.target("mid").latency_to_users)
        assert erp.experienced_latency_ms == pytest.approx(expected)
        assert erp.primary_hours == pytest.approx(HORIZON)

    def test_report_mean_latency(self, tiny_state, dr_plan):
        report = simulate_plan(tiny_state, dr_plan, CONFIG, outages=[])
        assert report.mean_experienced_latency_ms is not None
        assert "latency" in report.summary()
