"""Load-trace generators for the online loop."""

from __future__ import annotations

import pytest

from repro.sim import (
    LoadEvent,
    diurnal_cycle,
    flash_crowd,
    growth_ramp,
    merge_traces,
)

GROUPS = ["a", "b", "c"]


def final_levels(events: list[LoadEvent]) -> dict[str, float]:
    levels: dict[str, float] = {}
    for event in events:
        levels[event.group] = event.factor
    return levels


class TestLoadEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadEvent(-1.0, "a", 1.0)
        with pytest.raises(ValueError):
            LoadEvent(0.0, "a", -0.5)


class TestDiurnalCycle:
    def test_deterministic_per_seed(self):
        a = diurnal_cycle(GROUPS, 240.0, seed=3)
        b = diurnal_cycle(GROUPS, 240.0, seed=3)
        assert a == b
        assert a != diurnal_cycle(GROUPS, 240.0, seed=4)

    def test_factors_within_band(self):
        events = diurnal_cycle(GROUPS, 240.0, amplitude=0.4)
        assert events
        for event in events:
            assert 0.6 - 1e-9 <= event.factor <= 1.4 + 1e-9

    def test_change_only_emission(self):
        events = diurnal_cycle(GROUPS, 240.0)
        last: dict[str, float] = {}
        for event in events:
            assert last.get(event.group, 1.0) != event.factor
            last[event.group] = event.factor

    def test_quantized_to_resolution(self):
        events = diurnal_cycle(GROUPS, 240.0, resolution=0.1)
        for event in events:
            assert round(event.factor / 0.1) * 0.1 == pytest.approx(event.factor)

    def test_phase_jitter_desynchronizes_groups(self):
        events = diurnal_cycle(GROUPS, 48.0, step_hours=2.0, seed=0)
        by_time: dict[float, dict[str, float]] = {}
        for event in events:
            by_time.setdefault(event.time_hours, {})[event.group] = event.factor
        # At least one instant where two groups sit at different levels.
        assert any(len(set(levels.values())) > 1 for levels in by_time.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_cycle(GROUPS, 0.0)
        with pytest.raises(ValueError):
            diurnal_cycle(GROUPS, 100.0, amplitude=1.0)


class TestFlashCrowd:
    def test_reaches_magnitude_and_returns_to_nominal(self):
        events = flash_crowd(["a"], at_hours=10.0, magnitude=2.5)
        factors = [e.factor for e in events]
        assert max(factors) == pytest.approx(2.5)
        assert final_levels(events)["a"] == 1.0

    def test_monotone_ramp_then_decay(self):
        events = flash_crowd(["a"], at_hours=0.0, magnitude=3.0)
        factors = [e.factor for e in events]
        peak = factors.index(max(factors))
        assert factors[: peak + 1] == sorted(factors[: peak + 1])
        assert factors[peak:] == sorted(factors[peak:], reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd(["a"], at_hours=-1.0)
        with pytest.raises(ValueError):
            flash_crowd(["a"], at_hours=0.0, magnitude=0.5)


class TestGrowthRamp:
    def test_compounds_monotonically(self):
        events = growth_ramp(["a"], horizon_hours=8760.0, monthly_growth=0.1)
        factors = [e.factor for e in events]
        assert factors == sorted(factors)
        assert factors[-1] > 2.0  # ~12 months of 10% compounding

    def test_zero_growth_is_silent(self):
        assert growth_ramp(GROUPS, 8760.0, monthly_growth=0.0) == []


class TestMergeTraces:
    def test_sorted_and_argument_order_independent(self):
        a = diurnal_cycle(["a"], 120.0, seed=1)
        b = flash_crowd(["b"], at_hours=50.0)
        ab, ba = merge_traces(a, b), merge_traces(b, a)
        assert ab == ba
        times = [e.time_hours for e in ab]
        assert times == sorted(times)
