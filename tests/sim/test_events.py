"""Discrete-event queue."""

from __future__ import annotations

import pytest

from repro.sim import Event, EventKind, EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.SITE_FAIL, "a")
        q.push(1.0, EventKind.SITE_FAIL, "b")
        q.push(3.0, EventKind.SITE_REPAIR, "b")
        times = [q.pop().time_hours for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_stable_tiebreak(self):
        q = EventQueue()
        q.push(2.0, EventKind.SITE_FAIL, "first")
        q.push(2.0, EventKind.SITE_REPAIR, "second")
        assert q.pop().site == "first"
        assert q.pop().site == "second"

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, EventKind.SITE_FAIL, "a")

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.SITE_FAIL)
        assert len(q) == 1
        assert q

    def test_drain_until_excludes_horizon(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0, 4.0):
            q.push(t, EventKind.SITE_FAIL)
        drained = list(q.drain_until(3.0))
        assert [e.time_hours for e in drained] == [1.0, 2.0]
        assert len(q) == 2

    def test_event_ordering_dataclass(self):
        a = Event(1.0, 0)
        b = Event(2.0, 1)
        assert a < b
