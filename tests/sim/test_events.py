"""Discrete-event queue."""

from __future__ import annotations

import pytest

from repro.sim import Event, EventKind, EventQueue, kind_priority


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, EventKind.SITE_FAIL, "a")
        q.push(1.0, EventKind.SITE_FAIL, "b")
        q.push(3.0, EventKind.SITE_REPAIR, "b")
        times = [q.pop().time_hours for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_same_timestamp_orders_by_kind(self):
        # Deterministic kind ordering: a repair scheduled at the same
        # instant as a failure is processed first, regardless of
        # insertion order — back-to-back outages resolve as two outages.
        q = EventQueue()
        q.push(2.0, EventKind.SITE_FAIL, "first")
        q.push(2.0, EventKind.SITE_REPAIR, "second")
        assert q.pop().site == "second"
        assert q.pop().site == "first"

    def test_same_timestamp_same_kind_is_insertion_ordered(self):
        q = EventQueue()
        q.push(2.0, EventKind.SITE_FAIL, "first")
        q.push(2.0, EventKind.SITE_FAIL, "second")
        assert q.pop().site == "first"
        assert q.pop().site == "second"

    def test_kind_priority_total_order(self):
        ranks = [kind_priority(kind) for kind in EventKind]
        assert len(set(ranks)) == len(list(EventKind))
        assert kind_priority(EventKind.SITE_REPAIR) < kind_priority(
            EventKind.FAILOVER_COMPLETE
        ) < kind_priority(EventKind.SITE_FAIL) < kind_priority(
            EventKind.LOAD_CHANGE
        ) < kind_priority(EventKind.HORIZON_END)

    def test_order_independent_of_insertion(self):
        events = [
            (3.0, EventKind.LOAD_CHANGE),
            (2.0, EventKind.SITE_FAIL),
            (2.0, EventKind.SITE_REPAIR),
            (1.0, EventKind.HORIZON_END),
            (2.0, EventKind.FAILOVER_COMPLETE),
        ]
        forward, backward = EventQueue(), EventQueue()
        for t, kind in events:
            forward.push(t, kind)
        for t, kind in reversed(events):
            backward.push(t, kind)
        a = [(e.time_hours, e.kind) for e in forward.drain_until(10.0)]
        b = [(e.time_hours, e.kind) for e in backward.drain_until(10.0)]
        assert a == b
        assert a == [
            (1.0, EventKind.HORIZON_END),
            (2.0, EventKind.SITE_REPAIR),
            (2.0, EventKind.FAILOVER_COMPLETE),
            (2.0, EventKind.SITE_FAIL),
            (3.0, EventKind.LOAD_CHANGE),
        ]

    def test_peek_leaves_queue_intact(self):
        q = EventQueue()
        q.push(1.0, EventKind.SITE_FAIL, "a")
        assert q.peek().site == "a"
        assert len(q) == 1
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, EventKind.SITE_FAIL, "a")

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.SITE_FAIL)
        assert len(q) == 1
        assert q

    def test_drain_until_excludes_horizon(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0, 4.0):
            q.push(t, EventKind.SITE_FAIL)
        drained = list(q.drain_until(3.0))
        assert [e.time_hours for e in drained] == [1.0, 2.0]
        assert len(q) == 2

    def test_event_ordering_dataclass(self):
        a = Event(1.0, 0)
        b = Event(2.0, 1)
        assert a < b
