"""Failure sampling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import FailureModelConfig, Outage, sample_outages


class TestConfig:
    def test_defaults_valid(self):
        FailureModelConfig()

    def test_invalid(self):
        with pytest.raises(ValueError):
            FailureModelConfig(mtbf_hours=0)
        with pytest.raises(ValueError):
            FailureModelConfig(mttr_hours=-1)


class TestOutage:
    def test_duration(self):
        assert Outage("a", 1.0, 5.0).duration_hours == 4.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Outage("a", 5.0, 1.0)


class TestSampling:
    CONFIG = FailureModelConfig(mtbf_hours=500.0, mttr_hours=24.0, seed=3)

    def test_sorted_by_start(self):
        outages = sample_outages(["a", "b", "c"], 50_000.0, self.CONFIG)
        starts = [o.start_hours for o in outages]
        assert starts == sorted(starts)

    def test_deterministic_per_seed(self):
        a = sample_outages(["a", "b"], 10_000.0, self.CONFIG)
        b = sample_outages(["a", "b"], 10_000.0, self.CONFIG)
        assert a == b

    def test_within_horizon(self):
        outages = sample_outages(["a"], 10_000.0, self.CONFIG)
        for o in outages:
            assert 0 <= o.start_hours < 10_000.0
            assert o.end_hours <= 10_000.0

    def test_no_overlap_per_site(self):
        outages = sample_outages(["a"], 100_000.0, self.CONFIG)
        for prev, nxt in zip(outages, outages[1:]):
            assert nxt.start_hours >= prev.end_hours

    def test_rate_roughly_matches_mtbf(self):
        horizon = 1_000_000.0
        outages = sample_outages(["a"], horizon, self.CONFIG)
        expected = horizon / (self.CONFIG.mtbf_hours + self.CONFIG.mttr_hours)
        assert expected * 0.7 < len(outages) < expected * 1.3

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            sample_outages(["a"], 0.0, self.CONFIG)


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_outage_invariants_hold_for_any_seed(seed):
    config = FailureModelConfig(mtbf_hours=200.0, mttr_hours=50.0, seed=seed)
    outages = sample_outages(["x", "y"], 20_000.0, config)
    per_site: dict[str, float] = {}
    for o in outages:
        assert o.end_hours <= 20_000.0
        assert o.duration_hours >= 0
        if o.site in per_site:
            assert o.start_hours >= per_site[o.site]
        per_site[o.site] = o.end_hours
