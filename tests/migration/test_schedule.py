"""Migration schedule data model."""

from __future__ import annotations

import math

import pytest

from repro.migration import MigrationSchedule, Move, Wave


def make_wave(index=1, servers=(10, 20), dual=100.0):
    wave = Wave(index=index, dual_run_cost=dual)
    for i, s in enumerate(servers):
        wave.moves.append(
            Move(
                group=f"g{index}{i}",
                servers=s,
                from_site="old",
                to_site="new",
                data_gb=s * 100.0,
                move_cost=s * 10.0,
            )
        )
    return wave


class TestMove:
    def test_validation(self):
        with pytest.raises(ValueError):
            Move("g", 0, "a", "b", 1.0, 1.0)
        with pytest.raises(ValueError):
            Move("g", 1, "a", "b", -1.0, 1.0)


class TestWave:
    def test_aggregates(self):
        wave = make_wave()
        assert wave.servers == 30
        assert wave.groups == ["g10", "g11"]
        assert wave.data_gb == 3000.0
        assert wave.move_cost == pytest.approx(30 * 10.0 + 100.0)


class TestSchedule:
    def make(self):
        return MigrationSchedule(
            waves=[make_wave(1, (10,)), make_wave(2, (20, 30))],
            monthly_saving=5000.0,
            wave_interval_days=14.0,
        )

    def test_totals(self):
        s = self.make()
        assert s.num_waves == 2
        assert s.total_servers == 60
        assert s.total_move_cost == pytest.approx(600.0 + 200.0)
        assert s.duration_days == 28.0

    def test_payback(self):
        s = self.make()
        assert s.payback_months == pytest.approx(800.0 / 5000.0)

    def test_payback_infinite_without_savings(self):
        s = MigrationSchedule(waves=[make_wave()], monthly_saving=0.0)
        assert math.isinf(s.payback_months)

    def test_savings_curve_monotone_after_completion(self):
        s = self.make()
        curve = s.cumulative_savings_curve(12)
        assert len(curve) == 12
        # After all waves have executed, slope = full monthly saving.
        assert curve[-1] - curve[-2] == pytest.approx(5000.0)
        # Eventually positive (project pays back).
        assert curve[-1] > 0

    def test_savings_accrue_the_month_after_the_wave(self):
        # Regression: savings used to accrue in the same month a wave
        # executed, crediting a full month of steady-state saving for
        # servers that moved mid-month.  A single wave landing in month 1
        # must show only its cost in month 1; savings start in month 2.
        s = MigrationSchedule(
            waves=[make_wave(1, (10,), dual=0.0)],
            monthly_saving=1000.0,
            wave_interval_days=14.0,
        )
        curve = s.cumulative_savings_curve(3)
        assert curve[0] == pytest.approx(-100.0)  # cost only, no accrual
        assert curve[1] == pytest.approx(-100.0 + 1000.0)
        assert curve[2] == pytest.approx(-100.0 + 2000.0)

    def test_partial_fleet_accrues_proportionally(self):
        # Wave 1 (month 1) moves 1/4 of the fleet, wave 2 (month 2) the
        # rest.  Month 2 accrues only the quarter moved in month 1.
        s = MigrationSchedule(
            waves=[make_wave(1, (10,), dual=0.0), make_wave(3, (30,), dual=0.0)],
            monthly_saving=4000.0,
            wave_interval_days=14.0,
        )
        curve = s.cumulative_savings_curve(4)
        assert curve[0] == pytest.approx(-100.0)
        assert curve[1] == pytest.approx(-100.0 - 300.0 + 1000.0)
        assert curve[2] == pytest.approx(curve[1] + 4000.0)
        assert curve[3] == pytest.approx(curve[2] + 4000.0)

    def test_savings_curve_validation(self):
        with pytest.raises(ValueError):
            self.make().cumulative_savings_curve(-1)

    def test_empty_schedule(self):
        s = MigrationSchedule()
        assert s.duration_days == 0.0
        assert s.total_move_cost == 0.0

    def test_render(self):
        text = self.make().render()
        assert "2 waves" in text
        assert "payback" in text

    def test_render_warns_without_savings(self):
        s = MigrationSchedule(waves=[make_wave()], monthly_saving=-10.0)
        assert "warning" in s.render()
