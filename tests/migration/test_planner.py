"""Wave construction."""

from __future__ import annotations

import pytest

from repro.core import plan_consolidation
from repro.migration import MigrationConfig, plan_migration


@pytest.fixture
def plan(asis_capable_state):
    return plan_consolidation(asis_capable_state, backend="highs")


class TestConfig:
    def test_defaults_valid(self):
        MigrationConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_servers_per_wave": 0},
            {"move_cost_per_server": -1},
            {"data_gb_per_server": -1},
            {"bandwidth_mbps": 0},
            {"wave_interval_days": 0},
            {"dual_run_days": -1},
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            MigrationConfig(**kw)


class TestPlanMigration:
    def test_every_group_moves_exactly_once(self, asis_capable_state, plan):
        schedule = plan_migration(asis_capable_state, plan)
        moved = [m.group for w in schedule.waves for m in w.moves]
        assert sorted(moved) == sorted(g.name for g in asis_capable_state.app_groups)
        assert len(moved) == len(set(moved))

    def test_destinations_match_plan(self, asis_capable_state, plan):
        schedule = plan_migration(asis_capable_state, plan)
        for wave in schedule.waves:
            for move in wave.moves:
                assert move.to_site == plan.placement[move.group]
                assert move.from_site is not None

    def test_wave_budget_respected(self, asis_capable_state, plan):
        config = MigrationConfig(max_servers_per_wave=50, pilot_wave=False)
        schedule = plan_migration(asis_capable_state, plan, config)
        for wave in schedule.waves:
            # Only an oversized lone group may exceed the budget.
            if wave.servers > 50:
                assert len(wave.moves) == 1

    def test_oversized_group_gets_own_wave(self, asis_capable_state, plan):
        config = MigrationConfig(max_servers_per_wave=30, pilot_wave=False)
        schedule = plan_migration(asis_capable_state, plan, config)
        for wave in schedule.waves:
            for move in wave.moves:
                if move.servers > 30:
                    assert len(wave.moves) == 1

    def test_pilot_wave_is_smallest_user_base(self, asis_capable_state, plan):
        schedule = plan_migration(asis_capable_state, plan)
        pilot_group = schedule.waves[0].moves[0].group
        users = {g.name: g.total_users for g in asis_capable_state.app_groups}
        assert users[pilot_group] == min(users.values())

    def test_risk_groups_never_share_a_wave(self, asis_capable_state):
        asis_capable_state.app_groups[0].risk_group = "pci"
        asis_capable_state.app_groups[1].risk_group = "pci"
        plan = plan_consolidation(asis_capable_state, backend="highs")
        schedule = plan_migration(asis_capable_state, plan)
        for wave in schedule.waves:
            tagged = [
                m.group
                for m in wave.moves
                if m.group in ("erp", "web")
            ]
            assert len(tagged) <= 1

    def test_transfer_hours_scale_with_bandwidth(self, asis_capable_state, plan):
        slow = plan_migration(
            asis_capable_state, plan, MigrationConfig(bandwidth_mbps=100.0)
        )
        fast = plan_migration(
            asis_capable_state, plan, MigrationConfig(bandwidth_mbps=10_000.0)
        )
        assert slow.waves[0].transfer_hours > fast.waves[0].transfer_hours

    def test_monthly_saving_defaults_from_asis(self, asis_capable_state, plan):
        from repro.baselines import asis_plan

        schedule = plan_migration(asis_capable_state, plan)
        expected = asis_plan(asis_capable_state).total_cost - plan.total_cost
        assert schedule.monthly_saving == pytest.approx(expected)

    def test_monthly_saving_required_without_estate(self, tiny_state):
        plan = plan_consolidation(tiny_state, backend="highs")
        with pytest.raises(ValueError, match="monthly_saving"):
            plan_migration(tiny_state, plan)
        schedule = plan_migration(tiny_state, plan, monthly_saving=1000.0)
        assert schedule.monthly_saving == 1000.0

    def test_dual_run_cost_positive(self, asis_capable_state, plan):
        schedule = plan_migration(
            asis_capable_state, plan, MigrationConfig(dual_run_days=3.0)
        )
        assert all(w.dual_run_cost > 0 for w in schedule.waves)
        free = plan_migration(
            asis_capable_state, plan, MigrationConfig(dual_run_days=0.0)
        )
        assert all(w.dual_run_cost == 0 for w in free.waves)

    def test_case_study_scale(self):
        from repro.datasets import load_enterprise1

        state = load_enterprise1(scale=0.3)
        plan = plan_consolidation(state, backend="highs", mip_rel_gap=0.01)
        schedule = plan_migration(state, plan)
        assert schedule.total_servers == state.total_servers
        assert schedule.payback_months < 24  # consolidation pays back fast
        assert "payback" in schedule.render()
