"""State perturbation utilities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import perturb_prices, placement_churn, scale_dimension
from repro.analysis.perturb import DIMENSIONS


class TestScaleDimension:
    @pytest.mark.parametrize("dimension", DIMENSIONS)
    def test_each_dimension_scales(self, tiny_state, dimension):
        scaled = scale_dimension(tiny_state, dimension, 2.0)
        original = tiny_state.target_datacenters[1]
        changed = scaled.target_datacenters[1]
        readers = {
            "space": lambda dc: dc.space_cost.unit_price(1),
            "power": lambda dc: dc.power_cost_per_kw,
            "labor": lambda dc: dc.labor_cost_per_admin,
            "wan": lambda dc: dc.wan_cost_per_mb,
            "fixed": lambda dc: dc.fixed_monthly_cost,
            "vpn": lambda dc: dc.vpn_link_cost["east"],
        }
        read = readers[dimension]
        if read(original) == 0:
            assert read(changed) == 0
        else:
            assert read(changed) == pytest.approx(2.0 * read(original))

    def test_original_untouched(self, tiny_state):
        before = tiny_state.target("mid").wan_cost_per_mb
        scale_dimension(tiny_state, "wan", 3.0)
        assert tiny_state.target("mid").wan_cost_per_mb == before

    def test_current_estate_untouched(self, asis_capable_state):
        scaled = scale_dimension(asis_capable_state, "space", 2.0)
        assert [dc.space_cost for dc in scaled.current_datacenters] == [
            dc.space_cost for dc in asis_capable_state.current_datacenters
        ]

    def test_unknown_dimension(self, tiny_state):
        with pytest.raises(ValueError, match="unknown cost dimension"):
            scale_dimension(tiny_state, "gravity", 2.0)

    def test_negative_factor(self, tiny_state):
        with pytest.raises(ValueError):
            scale_dimension(tiny_state, "wan", -1.0)


class TestPerturbPrices:
    def test_deterministic_per_seed(self, tiny_state):
        a = perturb_prices(tiny_state, seed=7)
        b = perturb_prices(tiny_state, seed=7)
        assert [dc.power_cost_per_kw for dc in a.target_datacenters] == [
            dc.power_cost_per_kw for dc in b.target_datacenters
        ]

    def test_different_seeds_differ(self, tiny_state):
        a = perturb_prices(tiny_state, seed=1)
        b = perturb_prices(tiny_state, seed=2)
        assert [dc.power_cost_per_kw for dc in a.target_datacenters] != [
            dc.power_cost_per_kw for dc in b.target_datacenters
        ]

    def test_zero_sigma_is_identity(self, tiny_state):
        a = perturb_prices(tiny_state, sigma=0.0, seed=3)
        for original, same in zip(tiny_state.target_datacenters, a.target_datacenters):
            assert same.power_cost_per_kw == pytest.approx(original.power_cost_per_kw)

    def test_negative_sigma_rejected(self, tiny_state):
        with pytest.raises(ValueError):
            perturb_prices(tiny_state, sigma=-0.1)

    def test_dimension_subset(self, tiny_state):
        a = perturb_prices(tiny_state, seed=5, dimensions=("wan",))
        for original, noisy in zip(tiny_state.target_datacenters, a.target_datacenters):
            assert noisy.power_cost_per_kw == original.power_cost_per_kw
            assert noisy.wan_cost_per_mb != original.wan_cost_per_mb


class TestPlacementChurn:
    def test_identical(self):
        assert placement_churn({"a": "x"}, {"a": "x"}) == 0.0

    def test_half_moved(self):
        assert placement_churn({"a": "x", "b": "y"}, {"a": "x", "b": "z"}) == 0.5

    def test_mismatched_groups_rejected(self):
        with pytest.raises(ValueError):
            placement_churn({"a": "x"}, {"b": "x"})

    def test_empty(self):
        assert placement_churn({}, {}) == 0.0


@given(
    sigma=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_perturbation_keeps_prices_positive(sigma, seed):
    from repro.core import (
        ApplicationGroup, AsIsState, StepCostFunction, UserLocation, DataCenter,
    )

    dc = DataCenter(
        "d", 100, StepCostFunction.flat(50.0), 40.0, 5000.0, 0.05,
        latency_to_users={"east": 5.0}, fixed_monthly_cost=1000.0,
    )
    state = AsIsState(
        "s", [ApplicationGroup("g", 1, users={"east": 1.0})], [dc],
        user_locations=[UserLocation("east")],
    )
    noisy = perturb_prices(state, sigma=sigma, seed=seed)
    out = noisy.target_datacenters[0]
    assert out.power_cost_per_kw > 0
    assert out.space_cost.unit_price(1) > 0
    assert out.fixed_monthly_cost > 0
