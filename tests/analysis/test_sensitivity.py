"""Sensitivity and robustness studies on the tiny fixture."""

from __future__ import annotations

import pytest

from repro.analysis import run_robustness, run_sensitivity
from repro.core import PlannerOptions

OPTIONS = PlannerOptions(backend="highs")


class TestSensitivity:
    @pytest.fixture(scope="class")
    def wan_sweep(self, request):
        tiny = request.getfixturevalue("tiny_state")
        return run_sensitivity(
            tiny, "wan", multipliers=(0.5, 1.0, 2.0), options=OPTIONS
        )

    # class-scoped fixture needs function fixture access; simpler: build inline
    def test_cost_monotone_in_price(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "wan", multipliers=(0.5, 1.0, 2.0), options=OPTIONS
        )
        costs = result.total_costs()
        assert costs == sorted(costs)

    def test_baseline_point_has_zero_churn(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "space", multipliers=(0.5, 1.0, 2.0), options=OPTIONS
        )
        baseline = [p for p in result.points if p.multiplier == 1.0][0]
        assert baseline.churn_vs_baseline == 0.0

    def test_elasticity_positive_for_real_component(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "wan", multipliers=(0.5, 1.0, 2.0), options=OPTIONS
        )
        assert result.elasticity > 0

    def test_unknown_dimension(self, tiny_state):
        with pytest.raises(ValueError, match="unknown cost dimension"):
            run_sensitivity(tiny_state, "entropy", options=OPTIONS)

    def test_empty_sweep_rejected(self, tiny_state):
        with pytest.raises(ValueError, match="empty"):
            run_sensitivity(tiny_state, "wan", multipliers=(), options=OPTIONS)

    def test_render(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "power", multipliers=(1.0, 2.0), options=OPTIONS
        )
        text = result.render()
        assert "power" in text
        assert "elasticity" in text

    def test_points_sorted_by_multiplier(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "wan", multipliers=(2.0, 0.5, 1.0), options=OPTIONS
        )
        assert result.multipliers() == [0.5, 1.0, 2.0]

    def test_elasticity_needs_two_points(self, tiny_state):
        result = run_sensitivity(
            tiny_state, "wan", multipliers=(1.0,), options=OPTIONS
        )
        with pytest.raises(ValueError):
            result.elasticity


class TestRobustness:
    def test_regret_nonnegative(self, tiny_state):
        result = run_robustness(tiny_state, sigma=0.2, samples=4, options=OPTIONS)
        for sample in result.samples:
            # The re-optimized plan is optimal in its world, so the
            # committed plan can never beat it (beyond solver tolerance).
            assert sample.regret >= -1e-5

    def test_zero_sigma_zero_regret(self, tiny_state):
        result = run_robustness(tiny_state, sigma=0.0, samples=2, options=OPTIONS)
        assert result.max_relative_regret == pytest.approx(0.0, abs=1e-6)
        assert result.mean_churn == pytest.approx(0.0)

    def test_sample_count(self, tiny_state):
        result = run_robustness(tiny_state, sigma=0.1, samples=3, options=OPTIONS)
        assert len(result.samples) == 3
        with pytest.raises(ValueError):
            run_robustness(tiny_state, samples=0, options=OPTIONS)

    def test_deterministic_per_base_seed(self, tiny_state):
        a = run_robustness(tiny_state, sigma=0.2, samples=2, options=OPTIONS, base_seed=42)
        b = run_robustness(tiny_state, sigma=0.2, samples=2, options=OPTIONS, base_seed=42)
        assert [s.committed_cost for s in a.samples] == [
            s.committed_cost for s in b.samples
        ]

    def test_render(self, tiny_state):
        result = run_robustness(tiny_state, sigma=0.1, samples=2, options=OPTIONS)
        text = result.render()
        assert "regret" in text
        assert "churn" in text
