"""Shared fixtures: small hand-built enterprise states.

Kept deliberately tiny so exact-solver tests stay fast, while still
exercising every cost component (volume discounts, fixed costs, WAN,
latency penalties, DR pools).
"""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    LatencyPenaltyFunction,
    StepCostFunction,
    UserLocation,
)
from repro.core.latency import NO_PENALTY


def make_datacenter(
    name: str,
    capacity: int = 200,
    space_base: float = 100.0,
    power: float = 220.0,
    labor: float = 6500.0,
    wan: float = 0.10,
    lat_east: float = 8.0,
    lat_west: float = 9.0,
    fixed: float = 0.0,
    volume_discount: bool = True,
    x: float = 0.0,
    y: float = 0.0,
    region: str = "global",
) -> DataCenter:
    """One target site with sensible defaults for unit tests."""
    if volume_discount:
        space = StepCostFunction.volume_discount(
            base_price=space_base, step=50, discount=space_base * 0.1,
            floor_price=space_base * 0.5,
        )
    else:
        space = StepCostFunction.flat(space_base)
    return DataCenter(
        name=name,
        capacity=capacity,
        space_cost=space,
        power_cost_per_kw=power,
        labor_cost_per_admin=labor,
        wan_cost_per_mb=wan,
        latency_to_users={"east": lat_east, "west": lat_west},
        vpn_link_cost={"east": 300.0, "west": 500.0},
        fixed_monthly_cost=fixed,
        x=x,
        y=y,
        region=region,
    )


PENALTY = LatencyPenaltyFunction.single_threshold(10.0, 100.0)


@pytest.fixture
def user_locations() -> list[UserLocation]:
    return [UserLocation("east", 0.0, 0.0), UserLocation("west", 4000.0, 0.0)]


@pytest.fixture
def tiny_state(user_locations) -> AsIsState:
    """Four groups, three targets; mirrors the paper's cost structure."""
    targets = [
        make_datacenter("cheap-far", space_base=80.0, power=200.0, labor=6000.0,
                        wan=0.08, lat_east=40.0, lat_west=40.0, x=8000.0),
        make_datacenter("mid", space_base=100.0, power=220.0, labor=6500.0,
                        wan=0.10, lat_east=8.0, lat_west=9.0, x=2000.0),
        make_datacenter("east-dc", space_base=140.0, power=260.0, labor=8000.0,
                        wan=0.12, lat_east=4.0, lat_west=30.0, x=100.0),
    ]
    groups = [
        ApplicationGroup("erp", 40, 5000.0, {"east": 200.0, "west": 50.0}, PENALTY),
        ApplicationGroup("web", 30, 9000.0, {"east": 20.0, "west": 300.0}, PENALTY),
        ApplicationGroup("batch", 60, 1000.0, {}, NO_PENALTY),
        ApplicationGroup("bi", 25, 2000.0, {"west": 100.0}, NO_PENALTY),
    ]
    return AsIsState(
        "tiny", groups, targets, user_locations=user_locations,
        params=CostParameters(),
    )


@pytest.fixture
def asis_capable_state(tiny_state) -> AsIsState:
    """tiny_state plus a current estate so as-is evaluation works."""
    currents = [
        make_datacenter("old-a", capacity=80, space_base=150.0, lat_east=5.0,
                        lat_west=20.0, fixed=4000.0, volume_discount=False),
        make_datacenter("old-b", capacity=100, space_base=160.0, lat_east=20.0,
                        lat_west=5.0, fixed=5000.0, volume_discount=False),
    ]
    tiny_state.current_datacenters = currents
    tiny_state.app_groups[0].current_datacenter = "old-a"
    tiny_state.app_groups[1].current_datacenter = "old-b"
    tiny_state.app_groups[2].current_datacenter = "old-a"
    tiny_state.app_groups[3].current_datacenter = "old-b"
    return tiny_state


@pytest.fixture
def fixed_cost_state(user_locations) -> AsIsState:
    """Targets with per-site fixed costs, to exercise the U_j binaries."""
    targets = [
        make_datacenter("fx-a", space_base=90.0, fixed=5000.0),
        make_datacenter("fx-b", space_base=95.0, fixed=500.0),
        make_datacenter("fx-c", space_base=100.0, fixed=8000.0),
    ]
    groups = [
        ApplicationGroup("g1", 30, 1000.0, {"east": 50.0}, NO_PENALTY),
        ApplicationGroup("g2", 40, 1500.0, {"west": 60.0}, NO_PENALTY),
        ApplicationGroup("g3", 20, 500.0, {"east": 10.0}, NO_PENALTY),
    ]
    return AsIsState("fixed", groups, targets, user_locations=user_locations)
