"""Extension experiments: resilience and site-count sweeps."""

from __future__ import annotations

import pytest

from repro.datasets import load_enterprise1
from repro.experiments import run_resilience, run_site_count

SOLVER = {"mip_rel_gap": 0.02, "time_limit": 60}


class TestResilience:
    @pytest.fixture(scope="class")
    def result(self):
        state = load_enterprise1(scale=0.1)
        return run_resilience(
            state, horizon_months=120, backend="highs", solver_options=SOLVER
        )

    def test_three_variants(self, result):
        assert {r.variant for r in result.rows} == {
            "no-dr", "shared-pools", "dedicated",
        }

    def test_dr_improves_availability(self, result):
        no_dr = result.row("no-dr")
        shared = result.row("shared-pools")
        assert shared.availability >= no_dr.availability
        assert shared.downtime_hours <= no_dr.downtime_hours

    def test_dr_costs_more(self, result):
        assert result.row("shared-pools").monthly_cost > result.row("no-dr").monthly_cost

    def test_shared_cheaper_than_dedicated(self, result):
        assert (
            result.row("shared-pools").monthly_cost
            <= result.row("dedicated").monthly_cost + 1e-6
        )

    def test_no_dr_never_fails_over(self, result):
        assert result.row("no-dr").failovers == 0

    def test_render(self, result):
        text = result.render()
        assert "availability" in text
        assert "shared-pools" in text

    def test_unknown_variant(self, result):
        with pytest.raises(KeyError):
            result.row("tape-backups")


class TestSiteCount:
    @pytest.fixture(scope="class")
    def result(self):
        state = load_enterprise1(scale=0.2)
        return run_site_count(state, backend="highs", solver_options=SOLVER)

    def test_one_point_per_count(self, result):
        offered = [p.offered for p in result.points]
        assert offered == sorted(offered)
        assert len(set(offered)) == len(offered)

    def test_feasible_costs_nonincreasing(self, result):
        costs = [p.total_cost for p in result.feasible_points()]
        for earlier, later in zip(costs, costs[1:]):
            assert later <= earlier + 1e-6 + 0.02 * earlier  # gap tolerance

    def test_used_never_exceeds_offered(self, result):
        for p in result.feasible_points():
            assert p.used <= p.offered

    def test_infeasible_prefix_recorded(self):
        state = load_enterprise1(scale=0.2)
        # Offering only the first site cannot host the whole estate.
        first = state.target_datacenters[0]
        if first.capacity < state.total_servers:
            result = run_site_count(
                state, counts=(1,), backend="highs", solver_options=SOLVER
            )
            assert not result.points[0].feasible

    def test_knee(self, result):
        knee = result.knee
        best = min(p.total_cost for p in result.feasible_points())
        assert knee.total_cost <= best * 1.05

    def test_counts_validation(self):
        state = load_enterprise1(scale=0.2)
        with pytest.raises(ValueError):
            run_site_count(state, counts=(0,))
        with pytest.raises(ValueError):
            run_site_count(state, counts=(999,))

    def test_render(self, result):
        text = result.render()
        assert "knee" in text
        assert "offered" in text
