"""Text rendering of the paper's tables and figure series."""

from __future__ import annotations

import pytest

from repro.datasets import load_enterprise1
from repro.experiments import run_comparison, tables
from repro.experiments.comparison import CaseStudySuite
from repro.experiments.dr_cost_sweep import DRCostSweepResult
from repro.experiments.harness import SweepPoint, SweepSeries
from repro.experiments.latency_sweep import LatencySweepResult
from repro.experiments.placement_growth import GrowthPoint, PlacementGrowthResult
from repro.experiments.tradeoff import LocationCost, TradeoffResult


@pytest.fixture(scope="module")
def comparison():
    state = load_enterprise1(scale=0.12)
    return run_comparison(
        state, backend="highs", solver_options={"mip_rel_gap": 0.02, "time_limit": 30}
    )


class TestComparisonTables:
    def test_render_comparison(self, comparison):
        text = tables.render_comparison(comparison)
        assert "Fig 4" in text
        for algorithm in ("as-is", "manual", "greedy", "etransform"):
            assert algorithm in text

    def test_render_reduction_table(self, comparison):
        suite = CaseStudySuite(enable_dr=False, results=[comparison])
        text = tables.render_reduction_table(suite)
        assert "Fig 4(d)" in text
        assert "%" in text
        assert comparison.dataset in text

    def test_render_violation_table(self, comparison):
        suite = CaseStudySuite(enable_dr=False, results=[comparison])
        text = tables.render_violation_table(suite)
        assert "Fig 4(e)" in text

    def test_dr_labels(self, comparison):
        comparison.enable_dr = True
        suite = CaseStudySuite(enable_dr=True, results=[comparison])
        assert "Fig 6(d)" in tables.render_reduction_table(suite)
        assert "Fig 6(e)" in tables.render_violation_table(suite)
        assert "Fig 6" in tables.render_comparison(comparison)
        comparison.enable_dr = False


class TestSweepTables:
    def test_render_latency_sweep(self):
        series = SweepSeries(
            name="All users in location 9",
            points=[SweepPoint(0.0, {"total_cost": 10.0, "space_cost": 5.0,
                                     "mean_latency_ms": 40.0})],
        )
        result = LatencySweepResult(series=[series])
        for key, marker in (
            ("total_cost", "7(a)"),
            ("space_cost", "7(b)"),
            ("mean_latency_ms", "7(c)"),
        ):
            text = tables.render_latency_sweep(result, key)
            assert marker in text
            assert "All users in location 9" in text

    def test_render_dr_sweep(self):
        result = DRCostSweepResult(points=[
            SweepPoint(1.0, {"datacenters_used": 2.0, "dr_servers": 100.0,
                             "primary_datacenters": 1.0, "total_cost": 1.0}),
            SweepPoint(10000.0, {"datacenters_used": 7.0, "dr_servers": 20.0,
                                 "primary_datacenters": 7.0, "total_cost": 9.0}),
        ])
        text = tables.render_dr_sweep(result)
        assert "Fig 8" in text
        assert "10,000" in text

    def test_render_tradeoff(self):
        result = TradeoffResult(locations=[
            LocationCost("location0", 10.0, 100.0, 5.0),
            LocationCost("location1", 50.0, 10.0, 5.0),
        ])
        text = tables.render_tradeoff(result)
        assert "Fig 9" in text
        assert "spread=1.8x" in text

    def test_render_placement_growth(self):
        result = PlacementGrowthResult(
            points=[GrowthPoint(100, 1, {"location4": 100})],
            cost_order=["location4", "location5"],
        )
        text = tables.render_placement_growth(result)
        assert "Fig 10" in text
        assert "location4:100" in text
        assert "location4 < location5" in text
