"""Experiment plumbing: result records and timing helpers."""

from __future__ import annotations

import pytest

from repro.core import evaluate_plan
from repro.experiments.harness import (
    AlgorithmResult,
    SweepPoint,
    SweepSeries,
    parallel_map,
    state_label,
    timed_plan,
)


class TestAlgorithmResult:
    def test_from_plan(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement)
        result = AlgorithmResult.from_plan("test", plan, 1.5)
        assert result.algorithm == "test"
        assert result.total_cost == plan.breakdown.total
        assert result.operational_cost == plan.breakdown.operational
        assert result.datacenters_used == 1
        assert result.runtime_seconds == 1.5
        assert result.plan is plan

    def test_from_plan_carries_solver_stats(self, tiny_state):
        from repro.core.planner import ETransformPlanner, PlannerOptions

        plan = ETransformPlanner(
            tiny_state, PlannerOptions(backend="branch_bound")
        ).plan()
        result = AlgorithmResult.from_plan("etransform", plan, 0.1)
        assert result.solve_stats is plan.solver_stats
        assert result.solve_stats is not None
        assert result.solve_stats.nodes_explored > 0

    def test_timed_plan_measures(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}

        def fn():
            return evaluate_plan(tiny_state, placement)

        result = timed_plan("timed", fn)
        assert result.algorithm == "timed"
        assert result.runtime_seconds >= 0.0

    def test_timed_plan_propagates_errors(self):
        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError, match="nope"):
            timed_plan("x", boom)


class TestSweepSeries:
    def make(self):
        return SweepSeries(
            name="s",
            points=[
                SweepPoint(1.0, {"cost": 10.0, "latency": 5.0}),
                SweepPoint(2.0, {"cost": 20.0, "latency": 3.0}),
            ],
        )

    def test_xs(self):
        assert self.make().xs() == [1.0, 2.0]

    def test_ys(self):
        series = self.make()
        assert series.ys("cost") == [10.0, 20.0]
        assert series.ys("latency") == [5.0, 3.0]

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            self.make().ys("unknown")


def test_state_label(tiny_state):
    assert state_label(tiny_state) == "tiny"


def _square(x: int) -> int:
    """Module-level so ProcessPoolExecutor can pickle it."""
    return x * x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty_and_singleton(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_process_fanout_preserves_order(self):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=2) == [x * x for x in items]
