"""Fig. 4 / Fig. 6 comparison harness — run at reduced scale.

These tests assert the *shape* the paper reports: eTransform reduces the
most, eTransform has (near-)zero latency violations, manual violates the
most, and the violation ordering manual ≥ greedy ≥ eTransform holds.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_enterprise1
from repro.experiments import run_case_studies, run_comparison

SOLVER_OPTIONS = {"mip_rel_gap": 0.01, "time_limit": 60}


@pytest.fixture(scope="module")
def nondr():
    state = load_enterprise1(scale=0.4)
    return run_comparison(state, backend="highs", solver_options=SOLVER_OPTIONS)


@pytest.fixture(scope="module")
def dr():
    state = load_enterprise1(scale=0.2)
    return run_comparison(
        state, enable_dr=True, backend="highs", solver_options=SOLVER_OPTIONS
    )


class TestNonDRShape:
    def test_etransform_reduces_most(self, nondr):
        tol = 1e-6
        assert nondr.etransform.total_cost <= nondr.greedy.total_cost + tol
        assert nondr.etransform.total_cost <= nondr.manual.total_cost + tol

    def test_etransform_reduction_substantial(self, nondr):
        assert nondr.reduction("etransform") < -0.30

    def test_violation_ordering(self, nondr):
        assert nondr.violations("manual") >= nondr.violations("greedy")
        assert nondr.violations("greedy") >= nondr.violations("etransform")

    def test_etransform_nearly_violation_free(self, nondr):
        assert nondr.violations("etransform") <= 2

    def test_manual_pays_latency(self, nondr):
        assert nondr.manual.latency_penalty > 0

    def test_all_algorithms_cover_all_groups(self, nondr):
        n = len(nondr.asis.plan.placement)
        for result in nondr.algorithms:
            assert len(result.plan.placement) == n

    def test_runtimes_recorded(self, nondr):
        assert nondr.etransform.runtime_seconds > 0

    def test_reduction_lookup_unknown(self, nondr):
        with pytest.raises(KeyError):
            nondr.reduction("cplex")


class TestDRShape:
    def test_etransform_beats_asis_dr(self, dr):
        assert dr.reduction("etransform") < 0

    def test_etransform_beats_heuristics(self, dr):
        assert dr.etransform.total_cost <= dr.greedy.total_cost + 1e-6
        assert dr.etransform.total_cost <= dr.manual.total_cost + 1e-6

    def test_every_plan_has_dr(self, dr):
        for result in dr.algorithms:
            assert result.plan.has_dr
        assert dr.asis.plan.has_dr

    def test_dr_purchase_positive(self, dr):
        for result in [dr.asis, *dr.algorithms]:
            assert result.dr_purchase > 0

    def test_violations_still_ordered(self, dr):
        assert dr.violations("manual") >= dr.violations("etransform")


class TestSuiteRunner:
    def test_run_case_studies_subset(self):
        suite = run_case_studies(
            datasets=("enterprise1",),
            scales={"enterprise1": 0.15},
            backend="highs",
            solver_options=SOLVER_OPTIONS,
        )
        assert len(suite.results) == 1
        assert suite.result("enterprise1").dataset == "enterprise1"
        with pytest.raises(KeyError):
            suite.result("florida")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            run_case_studies(datasets=("narnia",))
