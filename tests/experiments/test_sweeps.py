"""Parameter-study harnesses (Figs. 7–10) at reduced scale."""

from __future__ import annotations

import pytest

from repro.experiments import (
    mean_user_latency,
    run_dr_cost_sweep,
    run_latency_sweep,
    run_placement_growth,
    run_tradeoff,
    split_label,
)


@pytest.fixture(scope="module")
def latency_sweep():
    return run_latency_sweep(
        penalties=(0.0, 40.0, 120.0),
        user_splits=(1.0, 0.0),
        backend="highs",
        n_groups=40,
        total_servers=220,
        solver_options={"mip_rel_gap": 0.005, "time_limit": 30},
    )


class TestLatencySweep:
    def test_series_labels(self, latency_sweep):
        names = {s.name for s in latency_sweep.series}
        assert "All users in location 0" in names
        assert "All users in location 9" in names

    def test_concentrated_west_cost_flat(self, latency_sweep):
        series = latency_sweep.by_split(1.0)
        costs = series.ys("total_cost")
        assert costs[0] == pytest.approx(costs[-1], rel=0.02)

    def test_east_users_cost_rises_with_penalty(self, latency_sweep):
        series = latency_sweep.by_split(0.0)
        costs = series.ys("total_cost")
        assert costs[-1] > costs[0]

    def test_east_users_latency_falls_with_penalty(self, latency_sweep):
        series = latency_sweep.by_split(0.0)
        lats = series.ys("mean_latency_ms")
        assert lats[-1] < lats[0]

    def test_east_users_space_cost_rises(self, latency_sweep):
        series = latency_sweep.by_split(0.0)
        space = series.ys("space_cost")
        assert space[-1] > space[0]

    def test_unknown_split_lookup(self, latency_sweep):
        with pytest.raises(KeyError):
            latency_sweep.by_split(0.33)


class TestSplitLabels:
    def test_paper_wording(self):
        assert split_label(1.0) == "All users in location 0"
        assert split_label(0.0) == "All users in location 9"
        assert split_label(0.5) == "All users equally distributed in 0 and 9"
        assert split_label(0.75) == "75% users in location 0"


class TestDRCostSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_dr_cost_sweep(
            dr_costs=(1.0, 10_000.0),
            backend="highs",
            n_groups=30,
            total_servers=160,
            solver_options={"mip_rel_gap": 0.02, "time_limit": 30},
        )

    def test_datacenters_grow_with_zeta(self, sweep):
        dcs = sweep.datacenters_used()
        assert dcs[-1] > dcs[0]

    def test_dr_servers_shrink_with_zeta(self, sweep):
        servers = sweep.dr_servers()
        assert servers[-1] < servers[0]

    def test_cheap_backups_full_mirror(self, sweep):
        # At ζ≈0 everything concentrates and the pool mirrors the estate.
        assert sweep.dr_servers()[0] == 160

    def test_accessors_aligned(self, sweep):
        assert len(sweep.dr_costs()) == len(sweep.datacenters_used()) == 2


class TestTradeoff:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tradeoff(n_groups=100)

    def test_interior_minimum(self, result):
        assert 0 < result.minimum_index < len(result.locations) - 1

    def test_severalfold_spread(self, result):
        assert result.spread > 4.0

    def test_wan_falls_space_rises(self, result):
        wans = [loc.wan_cost for loc in result.locations]
        spaces = [loc.space_cost for loc in result.locations]
        assert wans == sorted(wans, reverse=True)
        assert spaces == sorted(spaces)

    def test_cheapest_and_costliest(self, result):
        totals = result.totals()
        assert result.cheapest.total_cost == min(totals)
        assert result.costliest.total_cost == max(totals)


class TestPlacementGrowth:
    @pytest.fixture(scope="class")
    def result(self):
        return run_placement_growth(
            group_counts=(100, 300, 500),
            backend="highs",
            solver_options={"mip_rel_gap": 1e-4},
        )

    def test_staircase_monotone(self, result):
        assert result.datacenters_used() == sorted(result.datacenters_used())

    def test_first_fill_is_cheapest_location(self, result):
        assert result.first_use_order()[0] == result.cost_order[0]

    def test_fill_respects_capacity(self, result):
        for point in result.points:
            assert all(count <= 100 for count in point.fill.values())
            assert sum(point.fill.values()) == point.n_groups

    def test_used_sites_are_cost_prefix(self, result):
        # The sites used at any sweep point are exactly the cheapest k
        # locations by bundle cost — the paper's Fig. 10 claim.
        for point in result.points:
            k = point.datacenters_used
            assert set(point.fill) == set(result.cost_order[:k])


def test_mean_user_latency_empty_users():
    from repro.datasets import tradeoff_line_scenario
    from repro.core import evaluate_plan

    state = tradeoff_line_scenario(n_groups=3)
    for g in state.app_groups:
        g.users = {}
    placement = {g.name: "location0" for g in state.app_groups}
    plan = evaluate_plan(state, placement)
    assert mean_user_latency(state, plan) == 0.0


class TestSweepProcessFanout:
    """jobs=2 must produce the same points as the serial path."""

    def test_latency_sweep_parallel_matches_serial(self, latency_sweep):
        parallel = run_latency_sweep(
            penalties=(0.0, 40.0, 120.0),
            user_splits=(1.0, 0.0),
            backend="highs",
            n_groups=40,
            total_servers=220,
            solver_options={"mip_rel_gap": 0.005, "time_limit": 30},
            jobs=2,
        )
        for serial_s, parallel_s in zip(latency_sweep.series, parallel.series):
            assert serial_s.name == parallel_s.name
            assert serial_s.xs() == parallel_s.xs()
            for a, b in zip(serial_s.ys("total_cost"), parallel_s.ys("total_cost")):
                assert a == pytest.approx(b, rel=1e-6)
