"""Inter-group traffic: the WAN cost of splitting communicating groups."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    ConsolidationModel,
    StateValidationError,
    evaluate_plan,
    plan_consolidation,
    validate_state,
)
from repro.core.latency import NO_PENALTY
from repro.core.wan import inter_site_wan_price, undirected_peer_traffic
from repro.lp import SolveStatus, solve

from ..conftest import make_datacenter


@pytest.fixture
def chatty_state(user_locations):
    """front is pulled toward 'near' by latency; db toward 'cheap' by
    space — heavy peer traffic must override and colocate them."""
    from repro.core import LatencyPenaltyFunction

    targets = [
        make_datacenter("cheap", capacity=200, space_base=60.0, wan=0.10,
                        lat_east=40.0, lat_west=40.0),
        make_datacenter("near", capacity=200, space_base=90.0, wan=0.10,
                        lat_east=4.0, lat_west=5.0),
    ]
    penalty = LatencyPenaltyFunction.single_threshold(10.0, 100.0)
    groups = [
        ApplicationGroup("front", 60, 100.0, {"east": 200.0}, penalty,
                         peers={"db": 500_000.0}),
        ApplicationGroup("db", 60, 100.0, {}, NO_PENALTY),
    ]
    return AsIsState("chatty", groups, targets, user_locations=user_locations)


class TestEntitiesAndHelpers:
    def test_negative_peer_traffic_rejected(self):
        with pytest.raises(ValueError, match="negative traffic"):
            ApplicationGroup("g", 1, peers={"other": -1.0})

    def test_self_peer_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            ApplicationGroup("g", 1, peers={"g": 5.0})

    def test_undirected_folding(self):
        groups = [
            ApplicationGroup("a", 1, peers={"b": 100.0}),
            ApplicationGroup("b", 1, peers={"a": 50.0, "c": 10.0}),
            ApplicationGroup("c", 1),
        ]
        totals = undirected_peer_traffic(groups)
        assert totals[frozenset({"a", "b"})] == 150.0
        assert totals[frozenset({"b", "c"})] == 10.0

    def test_inter_site_price(self):
        a = make_datacenter("a", wan=0.10)
        b = make_datacenter("b", wan=0.30)
        assert inter_site_wan_price(a, b) == pytest.approx(0.20)
        assert inter_site_wan_price(a, a) == 0.0

    def test_unknown_peer_fails_validation(self, user_locations):
        targets = [make_datacenter("d", capacity=100)]
        groups = [ApplicationGroup("a", 1, users={"east": 1.0},
                                   peers={"ghost": 5.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(StateValidationError, match="unknown groups"):
            validate_state(state)


class TestEvaluation:
    def test_colocated_pair_pays_nothing(self, chatty_state):
        placement = {"front": "cheap", "db": "cheap"}
        plan = evaluate_plan(chatty_state, placement)
        baseline_wan = sum(
            g.monthly_data_mb * 0.10 for g in chatty_state.app_groups
        )
        assert plan.breakdown.wan == pytest.approx(baseline_wan)

    def test_split_pair_pays_inter_site_wan(self, chatty_state):
        placement = {"front": "cheap", "db": "near"}
        plan = evaluate_plan(chatty_state, placement)
        baseline_wan = sum(
            g.monthly_data_mb * 0.10 for g in chatty_state.app_groups
        )
        extra = 500_000.0 * 0.10  # same per-Mb rate both sides
        assert plan.breakdown.wan == pytest.approx(baseline_wan + extra)

    def test_split_cost_shared_between_sites(self, chatty_state):
        placement = {"front": "cheap", "db": "near"}
        plan = evaluate_plan(chatty_state, placement)
        extra = 500_000.0 * 0.10
        assert plan.usage["cheap"].wan_cost == pytest.approx(
            100.0 * 0.10 + extra / 2
        )


class TestOptimization:
    def test_solver_colocates_chatty_pair(self, chatty_state):
        # Individually, front wants 'near' (else a $20k latency
        # penalty) and db wants 'cheap'; splitting them costs $50k of
        # inter-site WAN, so the MILP colocates both at 'near'.
        plan = plan_consolidation(chatty_state, backend="highs")
        assert plan.placement["front"] == plan.placement["db"] == "near"

    def test_solver_splits_when_traffic_cheap(self, chatty_state):
        chatty_state.app_groups[0].peers = {"db": 10.0}  # negligible
        plan = plan_consolidation(chatty_state, backend="highs")
        assert plan.placement["front"] == "near"
        assert plan.placement["db"] == "cheap"

    def test_objective_matches_evaluation(self, chatty_state):
        model = ConsolidationModel(chatty_state)
        assert model.peer_split  # pair variables were created
        sol = solve(model.problem, backend="highs")
        assert sol.status is SolveStatus.OPTIMAL
        plan = evaluate_plan(chatty_state, model.extract_placement(sol))
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)

    def test_forced_split_objective_matches(self, chatty_state):
        # Make colocation impossible: the model must price the split
        # exactly as the evaluator does.
        for dc in chatty_state.target_datacenters:
            dc.capacity = 70
        model = ConsolidationModel(chatty_state)
        sol = solve(model.problem, backend="highs")
        plan = evaluate_plan(chatty_state, model.extract_placement(sol))
        assert plan.placement["front"] != plan.placement["db"]
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)

    def test_no_peers_adds_no_variables(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        assert not model.peer_split


class TestInteractions:
    def test_serialization_roundtrip(self, chatty_state, tmp_path):
        from repro.io import load_state, save_state

        path = tmp_path / "s.json"
        save_state(chatty_state, str(path))
        back = load_state(str(path))
        assert back.app_groups[0].peers == {"db": 500_000.0}

    def test_local_search_guards(self, chatty_state):
        from repro.core import improve_plan

        plan = evaluate_plan(chatty_state, {"front": "cheap", "db": "cheap"})
        with pytest.raises(ValueError, match="inter-group traffic"):
            improve_plan(chatty_state, plan)


class TestGreedyPeerAwareness:
    def test_greedy_colocates_chatty_pair(self, chatty_state):
        from repro.baselines import greedy_plan

        # Greedy places the 60-server groups in size order (front ties
        # db; sorted is stable so 'front' goes first, toward 'near').
        # When 'db' is priced, the $50k split cost must pull it to
        # 'near' too, despite cheaper space at 'cheap'.
        plan = greedy_plan(chatty_state)
        assert plan.placement["front"] == plan.placement["db"]

    def test_greedy_splits_when_traffic_negligible(self, chatty_state):
        from repro.baselines import greedy_plan

        chatty_state.app_groups[0].peers = {"db": 10.0}
        plan = greedy_plan(chatty_state)
        assert plan.placement["db"] == "cheap"

    def test_greedy_cost_includes_split_penalty(self, chatty_state):
        from repro.baselines import greedy_plan
        from repro.core import plan_consolidation

        greedy = greedy_plan(chatty_state)
        lp = plan_consolidation(chatty_state, backend="highs")
        assert lp.total_cost <= greedy.total_cost + 1e-6
