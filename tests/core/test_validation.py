"""State and plan validation."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    PlanValidationError,
    StateValidationError,
    TransformationPlan,
    evaluate_plan,
    validate_plan,
    validate_state,
)

from ..conftest import make_datacenter


class TestValidateState:
    def test_valid_state_passes(self, tiny_state):
        validate_state(tiny_state)

    def test_empty_groups(self, user_locations):
        state = AsIsState("s", [], [], user_locations=user_locations)
        with pytest.raises(StateValidationError, match="no application groups"):
            # construction succeeds; validation complains
            validate_state(state)

    def test_no_targets(self, user_locations):
        state = AsIsState("s", [ApplicationGroup("a", 1)], [], user_locations=user_locations)
        with pytest.raises(StateValidationError, match="no target data centers"):
            validate_state(state)

    def test_aggregate_capacity(self, user_locations):
        targets = [make_datacenter("d", capacity=10)]
        groups = [ApplicationGroup("a", 5, users={"east": 1.0}),
                  ApplicationGroup("b", 6, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(StateValidationError, match="exceed aggregate"):
            validate_state(state)

    def test_group_fits_nowhere(self, user_locations):
        targets = [make_datacenter("d", capacity=10), make_datacenter("e", capacity=10)]
        groups = [ApplicationGroup("a", 11, users={"east": 1.0}),
                  ApplicationGroup("b", 1, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(StateValidationError, match="fits no target"):
            validate_state(state)

    def test_dr_headroom(self, user_locations):
        targets = [make_datacenter("d", capacity=100), make_datacenter("e", capacity=3)]
        groups = [ApplicationGroup("a", 50, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        validate_state(state)  # fine without DR
        with pytest.raises(StateValidationError, match="DR needs two"):
            validate_state(state, require_dr_headroom=True)

    def test_unknown_user_location(self, user_locations):
        targets = [make_datacenter("d")]
        groups = [ApplicationGroup("a", 1, users={"mars": 2.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(StateValidationError, match="unknown user locations"):
            validate_state(state)

    def test_missing_latency_figures(self, user_locations):
        dc = make_datacenter("d")
        dc.latency_to_users = {"east": 5.0}  # west missing
        groups = [ApplicationGroup("a", 1, users={"west": 2.0})]
        state = AsIsState("s", groups, [dc], user_locations=user_locations)
        with pytest.raises(StateValidationError, match="lacks latency figures"):
            validate_state(state)


class TestValidatePlan:
    def good_plan(self, state):
        placement = {g.name: "mid" for g in state.app_groups}
        return evaluate_plan(state, placement)

    def test_good_plan_passes(self, tiny_state):
        validate_plan(tiny_state, self.good_plan(tiny_state))

    def test_unassigned_group(self, tiny_state):
        plan = self.good_plan(tiny_state)
        del plan.placement["erp"]
        with pytest.raises(PlanValidationError, match="unassigned"):
            validate_plan(tiny_state, plan)

    def test_unknown_site(self, tiny_state):
        plan = self.good_plan(tiny_state)
        plan.placement["erp"] = "atlantis"
        with pytest.raises(PlanValidationError, match="unknown site"):
            validate_plan(tiny_state, plan)

    def test_ineligible_placement(self, tiny_state):
        tiny_state.app_groups[0].forbidden_datacenters = frozenset({"mid"})
        plan = self.good_plan(tiny_state)
        with pytest.raises(PlanValidationError, match="not allowed"):
            validate_plan(tiny_state, plan)

    def test_over_capacity(self, tiny_state):
        # Force everything into the smallest... shrink mid's capacity.
        tiny_state.target("mid").capacity = 100  # total is 155
        plan = self.good_plan(tiny_state)
        with pytest.raises(PlanValidationError, match="over capacity"):
            validate_plan(tiny_state, plan)

    def test_backup_pool_counts_against_capacity(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, secondary=secondary)
        tiny_state.target("cheap-far").capacity = 100  # pool is 155
        with pytest.raises(PlanValidationError, match="over capacity"):
            validate_plan(tiny_state, plan)

    def test_secondary_must_differ(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, secondary=secondary)
        plan.secondary["erp"] = "mid"
        with pytest.raises(PlanValidationError, match="coincide"):
            validate_plan(tiny_state, plan)

    def test_missing_secondary(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, secondary=secondary)
        del plan.secondary["erp"]
        with pytest.raises(PlanValidationError, match="lacks a DR site"):
            validate_plan(tiny_state, plan)

    def test_risk_colocation_detected(self, tiny_state):
        tiny_state.app_groups[0].risk_group = "pci"
        tiny_state.app_groups[1].risk_group = "pci"
        plan = self.good_plan(tiny_state)
        with pytest.raises(PlanValidationError, match="co-located"):
            validate_plan(tiny_state, plan)

    def test_business_impact_cap(self, tiny_state):
        tiny_state.params = CostParameters(business_impact=0.25)  # 1 group max
        plan = self.good_plan(tiny_state)
        with pytest.raises(PlanValidationError, match="ω cap"):
            validate_plan(tiny_state, plan)
