"""Consolidation MILP builder: structure, optimality, constraint honoring."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    ConsolidationModel,
    CostParameters,
    InfeasibleModelError,
    ModelOptions,
    evaluate_plan,
)
from repro.core.latency import NO_PENALTY
from repro.lp import SolveStatus, solve

from ..conftest import PENALTY, make_datacenter


def small_state(user_locations, **params_kw):
    targets = [
        make_datacenter("d0", capacity=100, space_base=80.0),
        make_datacenter("d1", capacity=100, space_base=120.0),
    ]
    groups = [
        ApplicationGroup("a", 30, 1000.0, {"east": 50.0}, NO_PENALTY),
        ApplicationGroup("b", 40, 2000.0, {"west": 20.0}, NO_PENALTY),
        ApplicationGroup("c", 50, 500.0, {"east": 5.0}, NO_PENALTY),
    ]
    return AsIsState("small", groups, targets, user_locations=user_locations,
                     params=CostParameters(**params_kw))


class TestModelStructure:
    def test_variable_counts(self, user_locations):
        state = small_state(user_locations)
        model = ConsolidationModel(state, ModelOptions(economies_of_scale=False))
        assert len(model.x) == 6  # 3 groups × 2 sites
        assert not model.y and not model.g

    def test_segment_blocks_created(self, user_locations):
        state = small_state(user_locations)
        model = ConsolidationModel(state, ModelOptions(economies_of_scale=True))
        assert set(model.segment_blocks) == {"d0", "d1"}
        block = model.segment_blocks["d0"]
        assert len(block.selectors) == len(block.loads) >= 2

    def test_flat_pricing_skips_segments(self, user_locations):
        targets = [make_datacenter("d0", volume_discount=False, capacity=200)]
        groups = [ApplicationGroup("a", 10, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        model = ConsolidationModel(state)
        assert not model.segment_blocks

    def test_eligibility_prunes_variables(self, user_locations):
        state = small_state(user_locations)
        state.app_groups[0].forbidden_datacenters = frozenset({"d1"})
        model = ConsolidationModel(state)
        assert ("a", "d1") not in model.x
        assert ("a", "d0") in model.x

    def test_group_fitting_nowhere_raises(self, user_locations):
        state = small_state(user_locations)
        state.app_groups[0].servers = 101  # exceeds both capacities
        with pytest.raises(InfeasibleModelError, match="fits no"):
            ConsolidationModel(state)

    def test_used_binaries_only_with_fixed_cost(self, fixed_cost_state, user_locations):
        model = ConsolidationModel(fixed_cost_state)
        assert set(model.used) == {"fx-a", "fx-b", "fx-c"}
        state = small_state(user_locations)  # no fixed costs
        assert not ConsolidationModel(state).used


class TestOptimality:
    def test_objective_matches_independent_evaluation(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        sol = solve(model.problem, backend="highs")
        assert sol.status is SolveStatus.OPTIMAL
        placement = model.extract_placement(sol)
        plan = evaluate_plan(tiny_state, placement)
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)

    def test_capacity_respected(self, user_locations):
        state = small_state(user_locations)  # 120 servers, 2 × 100 capacity
        model = ConsolidationModel(state)
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        load = {"d0": 0, "d1": 0}
        for g in state.app_groups:
            load[placement[g.name]] += g.servers
        assert all(v <= 100 for v in load.values())

    def test_latency_penalty_steers_placement(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        plan = evaluate_plan(tiny_state, placement)
        assert plan.latency_violations == 0

    def test_risk_groups_not_colocated(self, user_locations):
        state = small_state(user_locations)
        state.app_groups[0].risk_group = "r"
        state.app_groups[1].risk_group = "r"
        model = ConsolidationModel(state)
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        assert placement["a"] != placement["b"]

    def test_business_impact_spreads_groups(self, user_locations):
        # ω = 0.67 over 3 groups caps any site at 2 of them; without the
        # cap the cheap site d0 would take everything it can fit.
        state = small_state(user_locations, business_impact=0.67)
        model = ConsolidationModel(state)
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        from collections import Counter

        counts = Counter(placement.values())
        assert max(counts.values()) <= 2
        assert len(counts) == 2

    def test_fixed_costs_pull_into_fewer_sites(self, fixed_cost_state):
        model = ConsolidationModel(fixed_cost_state)
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        plan = evaluate_plan(fixed_cost_state, placement)
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)
        # All 90 servers fit one site; paying two fixed costs is wasteful.
        assert len(set(placement.values())) == 1

    def test_economies_of_scale_lower_or_equal_cost(self, tiny_state):
        with_scale = ConsolidationModel(tiny_state, ModelOptions(economies_of_scale=True))
        sol_scale = solve(with_scale.problem, backend="highs")
        without = ConsolidationModel(tiny_state, ModelOptions(economies_of_scale=False))
        sol_flat = solve(without.problem, backend="highs")
        # Flat pricing uses the base (most expensive) tier everywhere.
        assert sol_scale.objective <= sol_flat.objective + 1e-6

    def test_vpn_wan_model(self, tiny_state):
        model = ConsolidationModel(tiny_state, ModelOptions(wan_model="vpn"))
        sol = solve(model.problem, backend="highs")
        placement = model.extract_placement(sol)
        plan = evaluate_plan(tiny_state, placement, wan_model="vpn")
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)


class TestExtraction:
    def test_extract_requires_solution(self, tiny_state):
        from repro.lp import Solution

        model = ConsolidationModel(tiny_state)
        with pytest.raises(ValueError, match="no solution"):
            model.extract_placement(Solution(SolveStatus.INFEASIBLE))

    def test_placement_cost_components(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        group = tiny_state.group("batch")  # no users → no WAN penalty/latency
        dc = tiny_state.target("mid")
        cost = model.placement_cost(group, dc)
        params = tiny_state.params
        expected = group.servers * (
            params.server_power_kw * dc.power_cost_per_kw
            + dc.labor_cost_per_admin / params.servers_per_admin
        ) + group.monthly_data_mb * dc.wan_cost_per_mb
        assert cost == pytest.approx(expected)


def test_bad_wan_model_rejected():
    with pytest.raises(ValueError, match="unknown WAN model"):
        ModelOptions(wan_model="smoke-signals")
