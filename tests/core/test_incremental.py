"""Incremental re-solve engine: deltas, journal, cold-path equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    ConsolidationModel,
    CostParameters,
    Directive,
    InfeasibleModelError,
    IterativeSession,
    PlannerOptions,
    RevisionedModel,
    UserLocation,
)
from repro.core.incremental import directive_from_dict
from repro.core.latency import NO_PENALTY
from repro.lp import problem_fingerprint

from ..conftest import make_datacenter


OPTS = PlannerOptions(backend="highs")


def plans_equal(a, b) -> bool:
    return (
        a.placement == b.placement
        and abs(a.breakdown.total - b.breakdown.total) <= 1e-6
    )


class TestRevisionedModel:
    def test_pin_sets_bound_and_pop_restores(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        before = problem_fingerprint(model.problem)
        rev = engine.apply(Directive("pin", group="erp", datacenter="mid"))
        assert model.x[("erp", "mid")].lb == 1.0
        assert rev.bound_changes
        assert problem_fingerprint(model.problem) != before
        engine.pop()
        assert model.x[("erp", "mid")].lb == 0.0
        assert problem_fingerprint(model.problem) == before

    def test_forbid_zeroes_upper_bound(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        engine.apply(Directive("forbid", group="web", datacenter="east-dc"))
        assert model.x[("web", "east-dc")].ub == 0.0
        engine.pop()
        assert model.x[("web", "east-dc")].ub == 1.0

    def test_cap_appends_row_and_pop_truncates(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        rows = model.problem.num_constraints
        engine.apply(Directive("cap_groups", datacenter="mid", limit=2))
        assert model.problem.num_constraints == rows + 1
        engine.pop()
        assert model.problem.num_constraints == rows

    def test_retire_fixes_every_site_variable(self, fixed_cost_state):
        model = ConsolidationModel(fixed_cost_state)
        engine = RevisionedModel(model)
        engine.apply(Directive("retire_site", datacenter="fx-b"))
        for (g, dc), var in model.x.items():
            if dc == "fx-b":
                assert var.ub == 0.0
        assert model.used["fx-b"].ub == 0.0
        block = model.segment_blocks.get("fx-b")
        if block is not None:
            assert all(v.ub == 0.0 for v in block.selectors)
            assert all(v.ub == 0.0 for v in block.loads)
        assert "fx-b" in engine.retired_sites()

    def test_retire_leaving_a_group_stranded_is_infeasible(self, tiny_state):
        tiny_state.app_groups[0].forbidden_datacenters = frozenset(
            {"cheap-far", "east-dc"}
        )
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        fp = problem_fingerprint(model.problem)
        with pytest.raises(InfeasibleModelError):
            engine.apply(Directive("retire_site", datacenter="mid"))
        # the failed directive must not leave partial edits behind
        assert problem_fingerprint(model.problem) == fp
        assert engine.revision == 0

    def test_pin_onto_forbidden_pair_rejected(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        engine.apply(Directive("forbid", group="erp", datacenter="mid"))
        with pytest.raises(ValueError, match="cannot pin"):
            engine.apply(Directive("pin", group="erp", datacenter="mid"))

    def test_sync_pops_to_common_prefix(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        pin = Directive("pin", group="erp", datacenter="mid")
        forbid = Directive("forbid", group="web", datacenter="mid")
        cap = Directive("cap_groups", datacenter="east-dc", limit=1)
        engine.sync([pin, forbid])
        assert engine.applied_directives() == [pin, forbid]
        engine.sync([pin, cap])  # forbid replaced: pop one, apply one
        assert engine.applied_directives() == [pin, cap]
        assert model.x[("web", "mid")].ub == 1.0  # forbid unwound
        engine.sync([])
        assert engine.revision == 0


class TestOnlineDirectives:
    def test_cap_servers_appends_row_and_pop_truncates(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        rows = model.problem.num_constraints
        engine.apply(Directive("cap_servers", datacenter="mid", limit=50))
        assert model.problem.num_constraints == rows + 1
        engine.pop()
        assert model.problem.num_constraints == rows

    def test_cap_load_appends_weighted_row(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        rows = model.problem.num_constraints
        weights = tuple((g.name, 1.2 * g.servers) for g in tiny_state.app_groups)
        fp = problem_fingerprint(model.problem)
        engine.apply(
            Directive("cap_load", datacenter="mid", limit=90.0, weights=weights)
        )
        assert model.problem.num_constraints == rows + 1
        assert problem_fingerprint(model.problem) != fp
        engine.pop()
        assert model.problem.num_constraints == rows
        assert problem_fingerprint(model.problem) == fp

    def test_cap_load_validation(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        with pytest.raises(ValueError, match="weights"):
            engine.apply(Directive("cap_load", datacenter="mid", limit=10.0))
        with pytest.raises(ValueError, match="limit"):
            engine.apply(
                Directive(
                    "cap_load", datacenter="mid", limit=-1.0,
                    weights=(("erp", 1.0),),
                )
            )

    def test_cap_load_round_trips_through_dict(self):
        original = Directive(
            "cap_load", datacenter="mid", limit=87.5,
            weights=(("erp", 48.0), ("web", 33.0)),
        )
        restored = directive_from_dict(original.as_dict())
        assert restored == original
        assert isinstance(restored.limit, float)
        assert restored.weights == (("erp", 48.0), ("web", 33.0))

    def test_sync_replaces_cap_load_with_new_weights(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        rows = model.problem.num_constraints
        first = Directive(
            "cap_load", datacenter="mid", limit=80.0, weights=(("erp", 40.0),)
        )
        second = Directive(
            "cap_load", datacenter="mid", limit=60.0, weights=(("erp", 52.0),)
        )
        engine.sync([first])
        engine.sync([second])
        assert engine.applied_directives() == [second]
        assert model.problem.num_constraints == rows + 1


class TestMovePenalty:
    def test_penalty_steers_reassignment_and_clear_restores(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        original = model.problem.objective
        incumbent = {g.name: "mid" for g in tiny_state.app_groups}
        engine.set_move_penalty(incumbent, 50.0)
        assert model.problem.objective is not original
        assert engine.move_penalty == (incumbent, 50.0)
        # Clearing must restore the *identical* objective object so the
        # solve cache's identity-based tightening shortcut still fires.
        engine.set_move_penalty(None)
        assert model.problem.objective is original
        assert engine.move_penalty is None

    def test_penalized_objective_charges_only_movers(self, tiny_state):
        model = ConsolidationModel(tiny_state)
        engine = RevisionedModel(model)
        incumbent = {g.name: "mid" for g in tiny_state.app_groups}
        engine.set_move_penalty(incumbent, 10.0)
        coeffs = dict(model.problem.objective.terms())
        erp = next(g for g in tiny_state.app_groups if g.name == "erp")
        base = dict(engine._base_objective.terms())
        stay = model.x[("erp", "mid")]
        move = model.x[("erp", "east-dc")]
        assert coeffs[stay] == pytest.approx(base.get(stay, 0.0))
        # The penalty carries a deterministic <=1e-4 relative jitter that
        # breaks ties between equal-cost move sets; allow for it here.
        expected = base.get(move, 0.0) + 10.0 * erp.servers
        jitter_band = 10.0 * erp.servers * 1e-4
        assert expected - 1e-9 <= coeffs[move] <= expected + jitter_band + 1e-9


class TestSessionLifecycle:
    def test_pin_resolve_undo_restores_plan_bit_for_bit(self, tiny_state):
        session = IterativeSession(tiny_state, OPTS)
        base = session.plan()
        target = "east-dc" if base.placement["batch"] != "east-dc" else "mid"
        session.pin("batch", target)
        pinned = session.plan()
        assert pinned.placement["batch"] == target
        session.undo()
        restored = session.plan()
        assert restored.placement == base.placement
        assert restored.breakdown.total == base.breakdown.total
        assert session.solve_cache.hits >= 1  # undo re-solve came from cache

    def test_retire_site_removes_site_from_plans(self, tiny_state):
        session = IterativeSession(tiny_state, OPTS)
        base = session.plan()
        victim = base.placement["erp"]
        session.retire_site(victim)
        revised = session.plan()
        assert victim not in revised.placement.values()
        # the underlying model keeps the variables but pins them to zero
        engine = session._engine
        assert all(
            var.ub == 0.0
            for (g, dc), var in engine.model.x.items()
            if dc == victim
        )
        session.undo()
        assert plans_equal(session.plan(), base)

    def test_confirming_pin_skips_the_solver(self, tiny_state):
        session = IterativeSession(tiny_state, OPTS)
        base = session.plan()
        session.pin("erp", base.placement["erp"])
        confirmed = session.plan()
        assert plans_equal(confirmed, base)
        assert session.solve_cache.tightening_reuses == 1

    def test_cold_mode_still_works(self, tiny_state):
        session = IterativeSession(tiny_state, OPTS, incremental=False)
        base = session.plan()
        session.forbid("batch", base.placement["batch"])
        revised = session.plan()
        assert revised.placement["batch"] != base.placement["batch"]
        assert session.solve_cache is None


def _random_state(seed: int) -> AsIsState:
    rng = np.random.default_rng(seed)
    users = [UserLocation("east", 0.0, 0.0), UserLocation("west", 4000.0, 0.0)]
    targets = [
        make_datacenter(
            f"dc{j}",
            capacity=int(rng.integers(120, 260)),
            space_base=float(rng.uniform(70, 150)),
            power=float(rng.uniform(180, 280)),
            labor=float(rng.uniform(5500, 8500)),
            wan=float(rng.uniform(0.05, 0.15)),
            lat_east=float(rng.uniform(4, 40)),
            lat_west=float(rng.uniform(4, 40)),
            fixed=float(rng.choice([0.0, 2000.0])),
            x=float(rng.uniform(0, 8000)),
        )
        for j in range(3)
    ]
    groups = [
        ApplicationGroup(
            f"g{i}",
            int(rng.integers(10, 50)),
            float(rng.uniform(500, 8000)),
            {"east": float(rng.uniform(0, 200)), "west": float(rng.uniform(0, 200))},
            NO_PENALTY,
        )
        for i in range(int(rng.integers(3, 6)))
    ]
    return AsIsState(
        f"rand{seed}", groups, targets, user_locations=users,
        params=CostParameters(),
    )


class TestColdEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_matches_cold_rebuild(self, seed):
        state = _random_state(seed)
        rng = np.random.default_rng(1000 + seed)
        inc = IterativeSession(state, OPTS, incremental=True)
        cold = IterativeSession(state, OPTS, incremental=False)
        base = inc.plan()
        assert plans_equal(base, cold.plan())

        groups = [g.name for g in state.app_groups]
        sites = [dc.name for dc in state.target_datacenters]
        g_pin, g_forbid = rng.choice(groups, size=2, replace=False)
        for session in (inc, cold):
            session.pin(str(g_pin), base.placement[str(g_pin)])
            session.forbid(str(g_forbid), base.placement[str(g_forbid)])
        assert plans_equal(inc.plan(), cold.plan())

        victim = str(rng.choice([s for s in sites if s != base.placement[str(g_pin)]]))
        for session in (inc, cold):
            session.cap_groups(victim, 1)
        assert plans_equal(inc.plan(), cold.plan())

        for session in (inc, cold):
            session.undo()
        assert plans_equal(inc.plan(), cold.plan())
