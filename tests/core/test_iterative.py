"""Admin interface for iterative modification."""

from __future__ import annotations

import pytest

from repro.core import DirectiveConflictError, IterativeSession, PlannerOptions


@pytest.fixture
def session(tiny_state):
    return IterativeSession(tiny_state, PlannerOptions(backend="highs"))


class TestDirectives:
    def test_initial_plan(self, session):
        plan = session.plan()
        assert len(session.history) == 1
        assert plan.total_cost > 0

    def test_pin_moves_group(self, session):
        base = session.plan()
        target = "east-dc" if base.placement["batch"] != "east-dc" else "cheap-far"
        session.pin("batch", target)
        revised = session.plan()
        assert revised.placement["batch"] == target
        assert revised.total_cost >= base.total_cost - 1e-6  # constraint can't help

    def test_forbid_moves_group(self, session):
        base = session.plan()
        occupied = base.placement["batch"]
        session.forbid("batch", occupied)
        revised = session.plan()
        assert revised.placement["batch"] != occupied

    def test_retire_site(self, session):
        base = session.plan()
        used = base.placement["erp"]
        session.retire_site(used)
        revised = session.plan()
        assert used not in revised.placement.values()

    def test_cap_groups(self, session):
        base = session.plan()
        from collections import Counter

        counts = Counter(base.placement.values())
        busiest, n = counts.most_common(1)[0]
        if n > 1:
            session.cap_groups(busiest, n - 1)
            revised = session.plan()
            revised_counts = Counter(revised.placement.values())
            assert revised_counts.get(busiest, 0) <= n - 1

    def test_undo(self, session):
        session.pin("batch", "east-dc")
        assert session.describe() == ["pin 'batch' to 'east-dc'"]
        directive = session.undo()
        assert directive.kind == "pin"
        assert not session.directives
        with pytest.raises(IndexError):
            session.undo()

    def test_unknown_names_rejected_early(self, session):
        with pytest.raises(KeyError):
            session.pin("nope", "mid")
        with pytest.raises(KeyError):
            session.pin("batch", "nowhere")
        with pytest.raises(ValueError):
            session.cap_groups("mid", -1)

    def test_pin_to_ineligible_site_fails_at_solve(self, session):
        session.state.app_groups[2].forbidden_datacenters = frozenset({"east-dc"})
        session.pin("batch", "east-dc")
        with pytest.raises(ValueError, match="cannot pin"):
            session.plan()

    def test_conflicting_directives_rejected_at_directive_time(self, session):
        # Pin and forbid the same pair: rejected immediately, naming both.
        session.pin("batch", "east-dc")
        with pytest.raises(DirectiveConflictError) as exc:
            session.forbid("batch", "east-dc")
        assert "forbid 'batch' in 'east-dc'" in str(exc.value)
        assert "pin 'batch' to 'east-dc'" in str(exc.value)
        assert session.describe() == ["pin 'batch' to 'east-dc'"]  # not recorded

    def test_pin_to_retired_site_rejected(self, session):
        session.retire_site("east-dc")
        with pytest.raises(DirectiveConflictError):
            session.pin("batch", "east-dc")

    def test_two_pins_for_one_group_rejected(self, session):
        session.pin("batch", "east-dc")
        with pytest.raises(DirectiveConflictError):
            session.pin("batch", "mid")

    def test_pins_exceeding_cap_rejected(self, session):
        session.cap_groups("mid", 1)
        session.pin("batch", "mid")
        with pytest.raises(DirectiveConflictError):
            session.pin("erp", "mid")

    def test_describe_all_kinds(self, session):
        session.pin("batch", "mid")
        session.forbid("erp", "mid")
        session.retire_site("cheap-far")
        session.cap_groups("mid", 3)
        descriptions = session.describe()
        assert len(descriptions) == 4
        assert any("retire" in d for d in descriptions)
        assert any("cap" in d for d in descriptions)

    def test_state_not_mutated_by_retire(self, session):
        before = len(session.state.target_datacenters)
        session.retire_site("cheap-far")
        session.plan()
        assert len(session.state.target_datacenters) == before
