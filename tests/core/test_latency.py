"""Latency penalty functions — unit + property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.latency import NO_PENALTY, LatencyPenaltyFunction, PenaltyStep


class TestConstruction:
    def test_single_threshold(self):
        f = LatencyPenaltyFunction.single_threshold(10.0, 100.0)
        assert f.penalty_per_user(5.0) == 0.0
        assert f.penalty_per_user(10.0) == 0.0  # boundary: not exceeded
        assert f.penalty_per_user(10.1) == 100.0

    def test_banded(self):
        f = LatencyPenaltyFunction.banded(10.0, 10.0, 5.0, bands=3)
        assert f.penalty_per_user(9.0) == 0.0
        assert f.penalty_per_user(15.0) == 5.0
        assert f.penalty_per_user(25.0) == 10.0
        assert f.penalty_per_user(99.0) == 15.0  # saturates at last band

    def test_banded_validation(self):
        with pytest.raises(ValueError):
            LatencyPenaltyFunction.banded(10.0, 0.0, 5.0, bands=3)
        with pytest.raises(ValueError):
            LatencyPenaltyFunction.banded(10.0, 10.0, 5.0, bands=0)

    def test_duplicate_thresholds_rejected(self):
        with pytest.raises(ValueError):
            LatencyPenaltyFunction([PenaltyStep(10, 1), PenaltyStep(10, 2)])

    def test_decreasing_penalties_rejected(self):
        with pytest.raises(ValueError):
            LatencyPenaltyFunction([PenaltyStep(10, 5), PenaltyStep(20, 2)])

    def test_negative_step_fields_rejected(self):
        with pytest.raises(ValueError):
            PenaltyStep(-1.0, 1.0)
        with pytest.raises(ValueError):
            PenaltyStep(1.0, -1.0)

    def test_steps_sorted_on_construction(self):
        f = LatencyPenaltyFunction([PenaltyStep(20, 2), PenaltyStep(10, 1)])
        assert [s.threshold_ms for s in f.steps] == [10, 20]


class TestQueries:
    def test_no_penalty_sentinel(self):
        assert NO_PENALTY.is_zero
        assert NO_PENALTY.penalty_per_user(1e9) == 0.0
        assert NO_PENALTY.strictest_threshold_ms is None
        assert not NO_PENALTY.violates(1e9)

    def test_zero_penalty_steps_are_zero(self):
        f = LatencyPenaltyFunction([PenaltyStep(10, 0.0)])
        assert f.is_zero
        assert f.strictest_threshold_ms is None

    def test_total_penalty(self):
        f = LatencyPenaltyFunction.single_threshold(10.0, 100.0)
        assert f.total_penalty(15.0, 50) == 5000.0
        assert f.total_penalty(5.0, 50) == 0.0

    def test_violates(self):
        f = LatencyPenaltyFunction.single_threshold(10.0, 100.0)
        assert f.violates(10.5)
        assert not f.violates(10.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NO_PENALTY.penalty_per_user(-1.0)

    def test_equality_and_hash(self):
        a = LatencyPenaltyFunction.single_threshold(10, 100)
        b = LatencyPenaltyFunction.single_threshold(10, 100)
        assert a == b
        assert hash(a) == hash(b)
        assert a != LatencyPenaltyFunction.single_threshold(10, 50)

    def test_repr(self):
        assert "10" in repr(LatencyPenaltyFunction.single_threshold(10, 100))
        assert "none" in repr(NO_PENALTY)


# -- properties ---------------------------------------------------------------
functions = st.builds(
    LatencyPenaltyFunction.banded,
    threshold_ms=st.floats(min_value=1, max_value=50),
    band_width_ms=st.floats(min_value=1, max_value=20),
    penalty_per_band=st.floats(min_value=0.1, max_value=100),
    bands=st.integers(min_value=1, max_value=6),
)
lat = st.floats(min_value=0, max_value=500, allow_nan=False)


@given(f=functions, a=lat, b=lat)
def test_penalty_monotone_in_latency(f, a, b):
    lo, hi = sorted((a, b))
    assert f.penalty_per_user(lo) <= f.penalty_per_user(hi) + 1e-12


@given(f=functions, latency=lat, users=st.floats(min_value=0, max_value=1e6))
def test_total_penalty_scales_with_users(f, latency, users):
    assert f.total_penalty(latency, users) == pytest.approx(
        f.penalty_per_user(latency) * users
    )


@given(f=functions, latency=lat)
def test_violation_iff_positive_penalty_for_single_band(f, latency):
    # For banded functions penalty>0 exactly when the strictest
    # (positive-penalty) threshold is exceeded.
    threshold = f.strictest_threshold_ms
    assert threshold is not None
    assert f.violates(latency) == (latency > threshold)
