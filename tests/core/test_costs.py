"""Step cost functions (volume discounts) — unit + property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import (
    PriceSegment,
    StepCostFunction,
    admins_required,
    ceil_admins,
    monthly_power_cost_per_kw,
)


class TestConstruction:
    def test_flat(self):
        f = StepCostFunction.flat(50.0)
        assert f.is_flat
        assert f.unit_price(1) == 50.0
        assert f.unit_price(10_000) == 50.0

    def test_volume_discount_tiers(self):
        f = StepCostFunction.volume_discount(100.0, step=100, discount=10.0, floor_price=60.0)
        assert f.unit_price(1) == 100.0
        assert f.unit_price(100) == 100.0
        assert f.unit_price(101) == 90.0
        assert f.unit_price(350) == 70.0
        assert f.unit_price(10_000) == 60.0

    def test_floor_respected(self):
        f = StepCostFunction.volume_discount(100.0, step=10, discount=30.0, floor_price=55.0)
        assert min(s.unit_price for s in f.segments) >= 55.0

    def test_max_quantity_bounds_final_tier(self):
        f = StepCostFunction.volume_discount(
            100.0, step=50, discount=10.0, floor_price=80.0, max_quantity=120
        )
        assert f.max_quantity == 120
        with pytest.raises(ValueError):
            f.unit_price(121)

    def test_non_contiguous_segments_rejected(self):
        with pytest.raises(ValueError, match="contiguous"):
            StepCostFunction([PriceSegment(1, 10, 5.0), PriceSegment(12, None, 4.0)])

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            StepCostFunction([PriceSegment(1, None, -1.0)])

    def test_unbounded_middle_segment_rejected(self):
        with pytest.raises(ValueError):
            StepCostFunction([PriceSegment(1, None, 5.0), PriceSegment(2, None, 4.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StepCostFunction([])

    def test_bad_first_lower(self):
        with pytest.raises(ValueError):
            StepCostFunction([PriceSegment(5, None, 1.0)])

    def test_zero_step_rejected(self):
        with pytest.raises(ValueError):
            StepCostFunction.volume_discount(10.0, step=0, discount=1.0, floor_price=5.0)

    def test_floor_above_base_rejected(self):
        with pytest.raises(ValueError):
            StepCostFunction.volume_discount(10.0, step=5, discount=1.0, floor_price=20.0)


class TestQueries:
    def test_total_cost_zero(self):
        f = StepCostFunction.flat(10.0)
        assert f.total_cost(0) == 0.0

    def test_total_cost_all_units(self):
        f = StepCostFunction.volume_discount(100.0, step=100, discount=10.0, floor_price=60.0)
        assert f.total_cost(150) == pytest.approx(150 * 90.0)

    def test_negative_quantity_rejected(self):
        f = StepCostFunction.flat(1.0)
        with pytest.raises(ValueError):
            f.segment_for(-1)

    def test_scaled(self):
        f = StepCostFunction.volume_discount(100.0, step=10, discount=10.0, floor_price=50.0)
        g = f.scaled(2.0)
        assert g.unit_price(1) == 200.0
        assert g.unit_price(10_000) == 100.0
        with pytest.raises(ValueError):
            f.scaled(-1.0)

    def test_truncated(self):
        f = StepCostFunction.volume_discount(100.0, step=50, discount=10.0, floor_price=50.0)
        g = f.truncated(75)
        assert g.max_quantity == 75
        assert g.unit_price(75) == f.unit_price(75)
        with pytest.raises(ValueError):
            f.truncated(0)

    def test_truncated_within_first_segment(self):
        f = StepCostFunction.volume_discount(100.0, step=50, discount=10.0, floor_price=50.0)
        g = f.truncated(20)
        assert g.num_segments == 1
        assert g.unit_price(20) == 100.0

    def test_equality_and_hash(self):
        a = StepCostFunction.flat(5.0)
        b = StepCostFunction.flat(5.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != StepCostFunction.flat(6.0)

    def test_repr(self):
        assert "100" in repr(StepCostFunction.flat(100.0))


class TestHelpers:
    def test_power_conversion(self):
        # 10 ¢/kWh × 730 h = $73/kW/month
        assert monthly_power_cost_per_kw(10.0) == pytest.approx(73.0)
        with pytest.raises(ValueError):
            monthly_power_cost_per_kw(-1.0)

    def test_admins(self):
        assert admins_required(130, 130.0) == pytest.approx(1.0)
        assert ceil_admins(131, 130.0) == 2
        assert ceil_admins(0, 130.0) == 0
        with pytest.raises(ValueError):
            admins_required(-1, 130.0)


# -- properties ---------------------------------------------------------------
schedules = st.builds(
    StepCostFunction.volume_discount,
    base_price=st.floats(min_value=10, max_value=500),
    step=st.integers(min_value=1, max_value=200),
    discount=st.floats(min_value=0.1, max_value=50),
    floor_price=st.just(5.0),
)


@given(f=schedules, q=st.integers(min_value=0, max_value=5000))
def test_unit_price_never_below_floor_or_above_base(f, q):
    price = f.unit_price(q)
    assert 5.0 - 1e-9 <= price <= f.segments[0].unit_price + 1e-9


@given(f=schedules, q=st.integers(min_value=1, max_value=5000))
def test_unit_price_nonincreasing(f, q):
    assert f.unit_price(q + 1) <= f.unit_price(q) + 1e-9


@given(f=schedules, q=st.integers(min_value=0, max_value=5000))
def test_total_cost_consistent_with_unit_price(f, q):
    assert f.total_cost(q) == pytest.approx(q * f.unit_price(q) if q else 0.0)


@given(f=schedules, q=st.integers(min_value=1, max_value=2000), cap=st.integers(min_value=1, max_value=2000))
def test_truncation_preserves_prices(f, q, cap):
    if q <= cap:
        assert f.truncated(cap).unit_price(q) == f.unit_price(q)
