"""Incumbent hint repair: projection onto new directives + polish."""

from __future__ import annotations

import pytest

from repro.core import (
    ConsolidationModel,
    Directive,
    PlannerOptions,
    RevisionedModel,
)
from repro.core.hint_repair import make_hint_repairer
from repro.lp import SolveStatus, solve


def _violations(problem, values: dict[str, float]) -> list[str]:
    by_name = {var.name: var for var in problem.variables}
    out = []
    for name, var in by_name.items():
        v = values.get(name, 0.0)
        if var.lb is not None and v < var.lb - 1e-6:
            out.append(f"{name} < lb")
        if var.ub is not None and v > var.ub + 1e-6:
            out.append(f"{name} > ub")
    for con in problem.constraints:
        lhs = sum(
            coef * values.get(var.name, 0.0)
            for var, coef in con.expr.terms().items()
        )
        sense = con.sense.value
        tol = 1e-6 * max(1.0, abs(con.rhs))
        if sense == "<=" and lhs > con.rhs + tol:
            out.append(con.name or "<=-row")
        elif sense == ">=" and lhs < con.rhs - tol:
            out.append(con.name or ">=-row")
        elif sense == "=" and abs(lhs - con.rhs) > tol:
            out.append(con.name or "=-row")
    return out


def _objective(problem, values: dict[str, float]) -> float:
    return sum(
        coef * values.get(var.name, 0.0)
        for var, coef in problem.objective.terms().items()
    ) + problem.objective.constant


def _placement(model, values: dict[str, float]) -> dict[str, str]:
    return {
        g: dc
        for (g, dc), var in model.x.items()
        if values.get(var.name, 0.0) > 0.5
    }


@pytest.fixture
def solved_model(tiny_state):
    model = ConsolidationModel(tiny_state, PlannerOptions(backend="highs"))
    sol = solve(model.problem, backend="highs")
    assert sol.status is SolveStatus.OPTIMAL
    return model, sol.as_name_dict()


class TestRepair:
    def test_forbidding_the_chosen_site_relocates_the_group(self, solved_model):
        model, hint = solved_model
        engine = RevisionedModel(model)
        before = _placement(model, hint)
        victim = "erp"
        engine.apply(Directive("forbid", group=victim, datacenter=before[victim]))
        repaired = make_hint_repairer(model)(model.problem, hint)
        assert repaired is not None
        assert _violations(model.problem, repaired) == []
        after = _placement(model, repaired)
        assert after[victim] != before[victim]
        assert len(after) == len(before)

    def test_feasible_hint_may_only_be_polished_downhill(self, solved_model):
        # The hint is the true optimum of the unrevised problem: nothing
        # to repair, nothing to improve — the repairer must step aside.
        model, hint = solved_model
        assert make_hint_repairer(model)(model.problem, hint) is None

    def test_stale_but_feasible_hint_gets_polished(self, solved_model):
        model, hint = solved_model
        # Degrade the incumbent: pin every group to the costliest legal
        # arrangement by solving, then moving one group off its optimal
        # site while keeping the point feasible.
        engine = RevisionedModel(model)
        placement = _placement(model, hint)
        g = "bi"
        others = [
            dc.name
            for dc in model.state.target_datacenters
            if dc.name != placement[g]
        ]
        engine.apply(Directive("pin", group=g, datacenter=others[0]))
        repaired = make_hint_repairer(model)(model.problem, hint)
        assert repaired is not None
        assert _violations(model.problem, repaired) == []
        assert _placement(model, repaired)[g] == others[0]
        engine.pop()

    def test_foreign_problem_is_refused(self, solved_model, tiny_state):
        model, hint = solved_model
        other = ConsolidationModel(tiny_state, PlannerOptions(backend="highs"))
        assert make_hint_repairer(model)(other.problem, hint) is None


class TestPolish:
    def test_polish_improves_a_bad_feasible_hint(self, solved_model):
        model, hint = solved_model
        # Build a deliberately bad but feasible point: every group on
        # the site the optimum does NOT use (capacity permitting).
        placement = _placement(model, hint)
        sites = [dc.name for dc in model.state.target_datacenters]
        bad = {}
        for g, site in placement.items():
            bad[g] = next(s for s in sites if s != site)
        values = {}
        for (g, dc), var in model.x.items():
            values[var.name] = 1.0 if bad.get(g) == dc else 0.0
        repaired = make_hint_repairer(model)(model.problem, values)
        if repaired is None:
            pytest.skip("bad point not repairable on this state")
        assert _violations(model.problem, repaired) == []
        assert _objective(model.problem, repaired) < _objective(
            model.problem, values
        ) - 1e-9
