"""Plan evaluation: the single cost arbiter used by every algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    dedicated_backup_requirements,
    evaluate_plan,
    shared_backup_requirements,
)
from repro.core.latency import NO_PENALTY

from ..conftest import PENALTY, make_datacenter


class TestBackupRequirements:
    def groups(self):
        return [
            ApplicationGroup("a", 10),
            ApplicationGroup("b", 20),
            ApplicationGroup("c", 5),
        ]

    def test_shared_takes_max_over_primaries(self):
        groups = self.groups()
        placement = {"a": "dc1", "b": "dc2", "c": "dc1"}
        secondary = {"a": "dc3", "b": "dc3", "c": "dc3"}
        pools = shared_backup_requirements(groups, placement, secondary)
        # dc1 fails → 15 needed; dc2 fails → 20 needed; pool = 20
        assert pools == {"dc3": 20}

    def test_shared_sums_within_same_primary(self):
        groups = self.groups()
        placement = {"a": "dc1", "b": "dc1", "c": "dc1"}
        secondary = {"a": "dc3", "b": "dc3", "c": "dc3"}
        assert shared_backup_requirements(groups, placement, secondary) == {"dc3": 35}

    def test_dedicated_sums_everything(self):
        groups = self.groups()
        secondary = {"a": "dc3", "b": "dc3", "c": "dc2"}
        pools = dedicated_backup_requirements(groups, secondary)
        assert pools == {"dc3": 30, "dc2": 5}

    def test_groups_without_secondary_ignored(self):
        groups = self.groups()
        placement = {"a": "dc1", "b": "dc2", "c": "dc1"}
        assert shared_backup_requirements(groups, placement, {"a": "dc2"}) == {"dc2": 10}


class TestEvaluatePlan:
    def test_breakdown_components(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement)
        b = plan.breakdown
        servers = tiny_state.total_servers
        mid = tiny_state.target("mid")
        assert b.space == pytest.approx(mid.space_cost.total_cost(servers))
        assert b.power == pytest.approx(servers * 0.35 * mid.power_cost_per_kw)
        assert b.labor == pytest.approx(servers * mid.labor_cost_per_admin / 130.0)
        assert b.wan == pytest.approx(
            sum(g.monthly_data_mb for g in tiny_state.app_groups) * mid.wan_cost_per_mb
        )
        assert b.dr_purchase == 0.0
        assert plan.total_cost == pytest.approx(b.operational + b.latency_penalty)

    def test_latency_penalty_and_violations(self, tiny_state):
        placement = {g.name: "cheap-far" for g in tiny_state.app_groups}  # 40 ms
        plan = evaluate_plan(tiny_state, placement)
        # erp + web are sensitive: 250 + 320 users × $100
        assert plan.breakdown.latency_penalty == pytest.approx((250 + 320) * 100.0)
        assert plan.latency_violations == 2

    def test_missing_group_rejected(self, tiny_state):
        with pytest.raises(ValueError, match="missing application groups"):
            evaluate_plan(tiny_state, {"erp": "mid"})

    def test_unknown_datacenter_rejected(self, tiny_state):
        placement = {g.name: "atlantis" for g in tiny_state.app_groups}
        with pytest.raises(KeyError, match="unknown data center"):
            evaluate_plan(tiny_state, placement)

    def test_bad_sharing_mode_rejected(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        with pytest.raises(ValueError, match="backup sharing"):
            evaluate_plan(tiny_state, placement, backup_sharing="psychic")

    def test_dr_purchase_and_pools(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, secondary=secondary)
        assert plan.backup_servers == {"cheap-far": tiny_state.total_servers}
        assert plan.breakdown.dr_purchase == pytest.approx(
            tiny_state.params.dr_server_cost * tiny_state.total_servers
        )
        assert plan.has_dr

    def test_cold_standby_backups_skip_power_and_labor(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        cold = evaluate_plan(tiny_state, placement, secondary=secondary)
        tiny_state.params.backup_power_fraction = 1.0
        tiny_state.params.backup_labor_fraction = 1.0
        hot = evaluate_plan(tiny_state, placement, secondary=secondary)
        assert hot.breakdown.power > cold.breakdown.power
        assert hot.breakdown.labor > cold.breakdown.labor
        assert hot.breakdown.space == pytest.approx(cold.breakdown.space)

    def test_fixed_cost_counted_once_per_used_site(self, fixed_cost_state):
        placement = {"g1": "fx-a", "g2": "fx-a", "g3": "fx-b"}
        plan = evaluate_plan(fixed_cost_state, placement)
        assert plan.breakdown.fixed == pytest.approx(5000.0 + 500.0)

    def test_evaluate_against_current_estate(self, asis_capable_state):
        state = asis_capable_state
        placement = {g.name: g.current_datacenter for g in state.app_groups}
        plan = evaluate_plan(
            state, placement, datacenters=state.current_datacenters
        )
        assert set(plan.datacenters_used) == {"old-a", "old-b"}

    def test_volume_discount_visible_in_space(self, tiny_state):
        packed = {g.name: "mid" for g in tiny_state.app_groups}
        plan_packed = evaluate_plan(tiny_state, packed)
        mid = tiny_state.target("mid")
        servers = tiny_state.total_servers
        # Packed: everyone pays the discounted tier, strictly below base.
        assert plan_packed.breakdown.space == pytest.approx(
            mid.space_cost.total_cost(servers)
        )
        base_price = mid.space_cost.unit_price(1)
        assert plan_packed.breakdown.space < base_price * servers

    def test_plan_accessors(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        plan = evaluate_plan(tiny_state, placement, solver="test")
        assert plan.datacenters_used == ["mid"]
        assert plan.groups_at("mid") == sorted(g.name for g in tiny_state.app_groups)
        assert plan.groups_at("cheap-far") == []
        assert plan.solver == "test"
        assert not plan.has_dr
        assert plan.usage["mid"].total_servers == tiny_state.total_servers


# -- properties ------------------------------------------------------------
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=8),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_shared_pools_never_exceed_dedicated(sizes, seed):
    import random

    rng = random.Random(seed)
    groups = [ApplicationGroup(f"g{i}", s) for i, s in enumerate(sizes)]
    dcs = ["d0", "d1", "d2"]
    placement = {g.name: rng.choice(dcs) for g in groups}
    secondary = {
        g.name: rng.choice([d for d in dcs if d != placement[g.name]]) for g in groups
    }
    shared = shared_backup_requirements(groups, placement, secondary)
    dedicated = dedicated_backup_requirements(groups, secondary)
    for dc in dcs:
        assert shared.get(dc, 0) <= dedicated.get(dc, 0)
    # And the shared pool still covers any single primary failure.
    for fail in dcs:
        for dc in dcs:
            demand = sum(
                g.servers
                for g in groups
                if placement[g.name] == fail and secondary[g.name] == dc
            )
            assert shared.get(dc, 0) >= demand
