"""Oversized-group splitting (paper's reference-[3] pre-processing)."""

from __future__ import annotations

import pytest

from repro.core import ApplicationGroup, AsIsState, plan_consolidation
from repro.core.splitting import (
    SplitResult,
    merge_placement,
    split_oversized_groups,
    _fragment_sizes,
)

from ..conftest import PENALTY, make_datacenter


@pytest.fixture
def oversized_state(user_locations):
    targets = [
        make_datacenter("d0", capacity=150),
        make_datacenter("d1", capacity=140),
    ]
    groups = [
        ApplicationGroup("whale", 250, 10_000.0, {"east": 100.0}, PENALTY),
        ApplicationGroup("minnow", 10, 500.0, {"west": 5.0}),
    ]
    return AsIsState("over", groups, targets, user_locations=user_locations)


class TestFragmentSizes:
    def test_near_equal(self):
        assert _fragment_sizes(250, 100) == [84, 83, 83]

    def test_exact_fit_not_split(self):
        assert _fragment_sizes(100, 100) == [100]

    def test_sum_preserved(self):
        for servers, cap in [(7, 3), (1000, 99), (5, 5)]:
            sizes = _fragment_sizes(servers, cap)
            assert sum(sizes) == servers
            assert max(sizes) <= cap


class TestSplitOversized:
    def test_whale_split_minnow_kept(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        names = [g.name for g in result.state.app_groups]
        assert "minnow" in names
        assert "whale" not in names
        assert result.fragments_of("whale") == ["whale/0", "whale/1"]
        assert result.any_split

    def test_servers_conserved(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        assert result.state.total_servers == oversized_state.total_servers

    def test_users_distributed_by_share(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        fragments = [g for g in result.state.app_groups if g.name.startswith("whale/")]
        assert sum(g.total_users for g in fragments) == pytest.approx(100.0)

    def test_wan_overhead_applied(self, oversized_state):
        result = split_oversized_groups(oversized_state, wan_overhead_fraction=0.5)
        fragments = [g for g in result.state.app_groups if g.name.startswith("whale/")]
        total_data = sum(g.monthly_data_mb for g in fragments)
        # 2 fragments → 1 extra cut → ×(1 + 0.5×1) = ×1.5
        assert total_data == pytest.approx(10_000.0 * 1.5)

    def test_zero_overhead(self, oversized_state):
        result = split_oversized_groups(oversized_state, wan_overhead_fraction=0.0)
        fragments = [g for g in result.state.app_groups if g.name.startswith("whale/")]
        assert sum(g.monthly_data_mb for g in fragments) == pytest.approx(10_000.0)

    def test_negative_overhead_rejected(self, oversized_state):
        with pytest.raises(ValueError):
            split_oversized_groups(oversized_state, wan_overhead_fraction=-0.1)

    def test_no_split_needed_returns_same_state(self, tiny_state):
        result = split_oversized_groups(tiny_state)
        assert not result.any_split
        assert result.state is tiny_state

    def test_region_blocked_group_not_split(self, user_locations):
        # The group fits nowhere because of region rules, not size:
        # splitting would not help and must not be attempted.
        targets = [make_datacenter("d0", capacity=100)]
        groups = [
            ApplicationGroup("g", 10, users={"east": 1.0},
                             allowed_regions=frozenset({"eu"})),
        ]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        result = split_oversized_groups(state)
        assert not result.any_split

    def test_risk_isolation_tags_fragments(self, oversized_state):
        result = split_oversized_groups(oversized_state, risk_isolate_fragments=True)
        fragments = [g for g in result.state.app_groups if g.name.startswith("whale/")]
        assert {g.risk_group for g in fragments} == {"split:whale"}

    def test_fragments_of_unknown(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        with pytest.raises(KeyError):
            result.fragments_of("minnow")


class TestEndToEnd:
    def test_split_state_is_plannable(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        plan = plan_consolidation(result.state, backend="highs")
        assert set(plan.placement) == {g.name for g in result.state.app_groups}

    def test_merge_placement(self, oversized_state):
        result = split_oversized_groups(oversized_state)
        plan = plan_consolidation(result.state, backend="highs")
        merged = merge_placement(result, plan.placement)
        assert set(merged) == {"whale", "minnow"}
        assert 1 <= len(merged["whale"]) <= 2
        assert len(merged["minnow"]) == 1

    def test_risk_isolated_fragments_spread(self, user_locations):
        targets = [make_datacenter(f"d{i}", capacity=100) for i in range(3)]
        groups = [ApplicationGroup("whale", 250, 1000.0, {"east": 10.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        result = split_oversized_groups(state, risk_isolate_fragments=True)
        plan = plan_consolidation(result.state, backend="highs")
        sites = [plan.placement[f] for f in result.fragments_of("whale")]
        assert len(set(sites)) == len(sites)  # pairwise distinct


def test_merge_placement_without_splits(tiny_state):
    result = SplitResult(state=tiny_state)
    merged = merge_placement(result, {"erp": "mid"})
    assert merged == {"erp": ["mid"]}


class TestPeerRewriting:
    def test_peers_pointing_at_split_group_are_redistributed(self, user_locations):
        targets = [make_datacenter(f"d{i}", capacity=150) for i in range(3)]
        groups = [
            ApplicationGroup("whale", 250, 1000.0, {"east": 10.0}),
            ApplicationGroup("client", 5, 100.0, {"east": 1.0},
                             peers={"whale": 1000.0}),
        ]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        result = split_oversized_groups(state)
        client = result.state.app_groups[-1]
        assert client.name == "client"
        assert "whale" not in client.peers
        assert sum(client.peers.values()) == pytest.approx(1000.0)
        assert set(client.peers) == set(result.fragments_of("whale"))

    def test_split_groups_outgoing_peers_scaled(self, user_locations):
        targets = [make_datacenter(f"d{i}", capacity=150) for i in range(3)]
        groups = [
            ApplicationGroup("whale", 250, 1000.0, {"east": 10.0},
                             peers={"client": 600.0}),
            ApplicationGroup("client", 5, 100.0, {"east": 1.0}),
        ]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        result = split_oversized_groups(state)
        fragments = [g for g in result.state.app_groups if g.name.startswith("whale/")]
        assert sum(f.peers["client"] for f in fragments) == pytest.approx(600.0)

    def test_split_state_with_peers_validates(self, user_locations):
        from repro.core import validate_state

        targets = [make_datacenter(f"d{i}", capacity=150) for i in range(3)]
        groups = [
            ApplicationGroup("whale", 250, 1000.0, {"east": 10.0}),
            ApplicationGroup("client", 5, 100.0, {"east": 1.0},
                             peers={"whale": 1000.0}),
        ]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        result = split_oversized_groups(state)
        validate_state(result.state)


class TestFragmentProperties:
    """Conservation laws of splitting, over random shapes."""

    def test_conservation_over_random_sizes(self, user_locations):
        from hypothesis import given, settings, strategies as st

        @given(
            servers=st.integers(min_value=151, max_value=2000),
            cap=st.integers(min_value=150, max_value=400),
            data=st.floats(min_value=0, max_value=1e6),
        )
        @settings(max_examples=40, deadline=None)
        def check(servers, cap, data):
            targets = [make_datacenter("d0", capacity=cap)]
            groups = [ApplicationGroup("g", servers, data, {"east": 100.0})]
            state = AsIsState("s", groups, targets,
                              user_locations=user_locations)
            result = split_oversized_groups(state, wan_overhead_fraction=0.0)
            if servers <= cap:
                assert not result.any_split
                return
            fragments = result.state.app_groups
            assert sum(f.servers for f in fragments) == servers
            assert max(f.servers for f in fragments) <= cap
            assert sum(f.total_users for f in fragments) == pytest.approx(100.0)
            assert sum(f.monthly_data_mb for f in fragments) == pytest.approx(data)

        check()
