"""The Dantzig-Wolfe/Lagrangian decomposition engine end to end."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    validate_plan,
)
from repro.core.decomposition import (
    DecompositionConfig,
    DecompositionError,
    extract_group_blocks,
    model_objective,
    solve_decomposition,
)
from repro.core.formulation import ModelOptions
from repro.core.planner import ETransformPlanner, PlannerOptions
from repro.datasets import latency_line_scenario
from tests.conftest import NO_PENALTY, make_datacenter


def line_state(n_groups=24, total_servers=160) -> AsIsState:
    return latency_line_scenario(
        penalty_per_band=20.0,
        fraction_at_west=0.5,
        n_groups=n_groups,
        total_servers=total_servers,
    )


class TestGroupBlocks:
    def test_blocks_shape_and_eligibility(self, tiny_state):
        blocks = extract_group_blocks(tiny_state)
        assert blocks.n_groups == len(tiny_state.app_groups)
        assert blocks.n_targets == len(tiny_state.target_datacenters)
        assert blocks.cost.shape == (blocks.n_groups, blocks.n_targets)
        assert np.isfinite(blocks.cost).all()  # everything placeable here
        assert (blocks.space_rate > 0).all()

    def test_space_rate_underestimates_exact_space(self, tiny_state):
        # For any integral load the linear rate never exceeds the exact
        # step-priced schedule — that is what makes the bound valid.
        blocks = extract_group_blocks(tiny_state)
        for j, dc in enumerate(tiny_state.target_datacenters):
            schedule = dc.space_cost.truncated(dc.capacity)
            for load in (1, 25, 60, dc.capacity):
                exact = schedule.total_cost(load) + dc.fixed_monthly_cost
                assert blocks.space_rate[j] * load <= exact + 1e-6

    def test_space_points_match_exact_site_cost(self, tiny_state):
        # Every candidate point the site-side Lagrangian term minimizes
        # over must price its load exactly as the model does — the
        # bound's validity rests on the candidates being real costs.
        blocks = extract_group_blocks(tiny_state)
        for j, dc in enumerate(tiny_state.target_datacenters):
            schedule = dc.space_cost.truncated(dc.capacity)
            loads, costs = blocks.space_points[j]
            assert loads[0] == 0.0 and costs[0] == 0.0
            assert dc.capacity in loads
            for load, cost in zip(loads[1:], costs[1:]):
                exact = schedule.total_cost(int(load)) + dc.fixed_monthly_cost
                assert cost == pytest.approx(exact)

    def test_unplaceable_group_raises_with_name(self, tiny_state):
        tiny_state.app_groups[0].servers = 10_000  # fits nowhere
        with pytest.raises(DecompositionError, match="erp"):
            extract_group_blocks(tiny_state)

    def test_parallel_extraction_matches_serial(self, tiny_state):
        serial = extract_group_blocks(tiny_state, jobs=1)
        fanned = extract_group_blocks(tiny_state, jobs=2)
        np.testing.assert_allclose(serial.cost, fanned.cost)


class TestDecompositionParity:
    def test_tiny_state_within_reported_gap_of_milp(self, tiny_state):
        outcome = solve_decomposition(tiny_state)
        milp = ETransformPlanner(tiny_state, PlannerOptions()).build_plan()
        assert outcome.gap == pytest.approx(
            (outcome.upper_bound - outcome.lower_bound) / outcome.upper_bound
        )
        # The certified bound really bounds the exact optimum.
        assert outcome.lower_bound <= milp.breakdown.total + 1e-6
        assert outcome.upper_bound >= milp.breakdown.total - 1e-6
        # And the heuristic lands within its own certificate.
        assert (
            outcome.upper_bound - milp.breakdown.total
        ) / milp.breakdown.total <= outcome.gap + 1e-9

    def test_line_scenario_parity_master_mode(self):
        state = line_state()
        outcome = solve_decomposition(
            state, config=DecompositionConfig(coordination="master")
        )
        milp = ETransformPlanner(state, PlannerOptions()).build_plan()
        assert outcome.coordination == "master"
        assert outcome.lower_bound <= milp.breakdown.total + 1e-6
        rel = (outcome.upper_bound - milp.breakdown.total) / milp.breakdown.total
        assert rel <= max(outcome.gap, 0.0) + 1e-9

    def test_subgradient_mode_same_certificate(self):
        state = line_state()
        outcome = solve_decomposition(
            state, config=DecompositionConfig(coordination="subgradient")
        )
        milp = ETransformPlanner(state, PlannerOptions()).build_plan()
        assert outcome.coordination == "subgradient"
        assert outcome.lower_bound <= milp.breakdown.total + 1e-6
        rel = (outcome.upper_bound - milp.breakdown.total) / milp.breakdown.total
        assert rel <= max(outcome.gap, 0.0) + 1e-9

    def test_fixed_cost_state_bound_stays_valid(self, fixed_cost_state):
        outcome = solve_decomposition(fixed_cost_state)
        milp = ETransformPlanner(fixed_cost_state, PlannerOptions()).build_plan()
        assert outcome.lower_bound <= milp.breakdown.total + 1e-6
        assert outcome.upper_bound >= outcome.lower_bound - 1e-6

    def test_plan_objective_matches_model_objective(self, tiny_state):
        outcome = solve_decomposition(tiny_state)
        placement = outcome.plan.placement
        assert model_objective(tiny_state, placement) == pytest.approx(
            outcome.upper_bound
        )
        # The evaluated plan's cost breakdown agrees with the objective
        # the gap certificate was computed against.
        assert outcome.plan.breakdown.total == pytest.approx(outcome.upper_bound)


class TestDecompositionFeasibility:
    def test_plan_validates(self, tiny_state):
        outcome = solve_decomposition(tiny_state)
        validate_plan(tiny_state, outcome.plan)  # raises on violation
        assert not outcome.plan.backup_servers

    def test_risk_anticolocation_respected(self, user_locations):
        targets = [
            make_datacenter("a", capacity=100),
            make_datacenter("b", capacity=100, space_base=101.0),
        ]
        groups = [
            ApplicationGroup("pci-1", 20, 100.0, {}, NO_PENALTY),
            ApplicationGroup("pci-2", 20, 100.0, {}, NO_PENALTY),
            ApplicationGroup("other", 20, 100.0, {}, NO_PENALTY),
        ]
        groups[0].risk_group = "pci"
        groups[1].risk_group = "pci"
        state = AsIsState(
            "risk", groups, targets, user_locations=user_locations,
            params=CostParameters(),
        )
        outcome = solve_decomposition(state)
        placement = outcome.plan.placement
        assert placement["pci-1"] != placement["pci-2"]
        validate_plan(state, outcome.plan)

    def test_business_impact_cap_respected(self, user_locations):
        # omega = 0.5 over 4 groups caps any site at 2 groups, so the
        # all-in-one-cheap-site packing is off the table.
        targets = [
            make_datacenter("a", capacity=400),
            make_datacenter("b", capacity=400, space_base=130.0),
        ]
        groups = [
            ApplicationGroup(f"g{i}", 20, 100.0, {}, NO_PENALTY) for i in range(4)
        ]
        state = AsIsState(
            "omega", groups, targets, user_locations=user_locations,
            params=CostParameters(business_impact=0.5),
        )
        outcome = solve_decomposition(state)
        counts: dict[str, int] = {}
        for site in outcome.plan.placement.values():
            counts[site] = counts.get(site, 0) + 1
        assert max(counts.values()) <= 2
        validate_plan(state, outcome.plan)

    def test_dr_states_are_rejected(self, tiny_state):
        with pytest.raises(DecompositionError, match="disaster recovery"):
            solve_decomposition(tiny_state, ModelOptions(enable_dr=True))

    def test_time_limit_still_returns_a_plan(self):
        state = line_state()
        outcome = solve_decomposition(
            state, config=DecompositionConfig(time_limit=1e-6)
        )
        validate_plan(state, outcome.plan)
        assert math.isfinite(outcome.upper_bound)


class TestDecompositionMechanics:
    def test_parallel_pricing_matches_serial(self):
        state = line_state()
        serial = solve_decomposition(state, config=DecompositionConfig(jobs=1))
        fanned = solve_decomposition(state, config=DecompositionConfig(jobs=2))
        assert serial.upper_bound == pytest.approx(fanned.upper_bound)
        assert serial.lower_bound == pytest.approx(fanned.lower_bound)

    def test_auto_coordination_switches_on_group_count(self, tiny_state):
        small = solve_decomposition(
            tiny_state, config=DecompositionConfig(master_group_limit=1500)
        )
        assert small.coordination == "master"
        forced = solve_decomposition(
            tiny_state, config=DecompositionConfig(master_group_limit=1)
        )
        assert forced.coordination == "subgradient"

    def test_stats_record_the_run(self, tiny_state):
        outcome = solve_decomposition(tiny_state)
        stats = outcome.stats
        assert stats.backend == "decomposition"
        assert stats.incumbent == pytest.approx(outcome.upper_bound)
        assert stats.best_bound == pytest.approx(outcome.lower_bound)
        assert stats.extra["decomp_groups"] == len(tiny_state.app_groups)
        assert outcome.plan.solver_stats is stats

    def test_config_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="coordination"):
            DecompositionConfig(coordination="annealing")
        with pytest.raises(ValueError, match="smoothing"):
            DecompositionConfig(smoothing=0.0)
