"""End-to-end planner facade tests."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    ETransformPlanner,
    PlannerOptions,
    PlanningError,
    plan_consolidation,
)
from repro.core.latency import NO_PENALTY

from ..conftest import make_datacenter


class TestPlanConsolidation:
    def test_basic_plan(self, tiny_state):
        plan = plan_consolidation(tiny_state, backend="highs")
        assert set(plan.placement) == {g.name for g in tiny_state.app_groups}
        assert plan.latency_violations == 0
        assert plan.total_cost > 0
        assert plan.objective == pytest.approx(plan.total_cost, rel=1e-6)

    def test_backends_agree(self, tiny_state):
        highs = plan_consolidation(tiny_state, backend="highs")
        bb = plan_consolidation(tiny_state, backend="branch_bound")
        assert highs.total_cost == pytest.approx(bb.total_cost, rel=1e-6)

    def test_dr_plan(self, tiny_state):
        plan = plan_consolidation(tiny_state, enable_dr=True, backend="highs")
        assert plan.has_dr
        assert sum(plan.backup_servers.values()) > 0
        for g in plan.placement:
            assert plan.placement[g] != plan.secondary[g]

    def test_infeasible_raises_planning_error(self, user_locations):
        # Aggregate capacity (24) covers the estate (24), so validation
        # passes — but no site can hold two groups (16 > 12), so only
        # two of the three groups are placeable: a packing infeasibility
        # only the solver can detect.
        targets = [make_datacenter("d0", capacity=12), make_datacenter("d1", capacity=12)]
        groups = [ApplicationGroup("a", 8, users={"east": 1.0}),
                  ApplicationGroup("b", 8, users={"east": 1.0}),
                  ApplicationGroup("c", 8, users={"east": 1.0})]
        state = AsIsState("t", groups, targets, user_locations=user_locations)
        with pytest.raises(PlanningError, match="infeasible"):
            plan_consolidation(state, backend="highs")

    def test_wan_model_forwarded(self, tiny_state):
        metered = plan_consolidation(tiny_state, backend="highs", wan_model="metered")
        vpn = plan_consolidation(tiny_state, backend="highs", wan_model="vpn")
        # Different pricing regimes: breakdowns must reflect each model.
        assert metered.breakdown.wan != pytest.approx(vpn.breakdown.wan)


class TestPlannerOptions:
    def test_lp_export(self, tiny_state, tmp_path):
        path = tmp_path / "model.lp"
        options = PlannerOptions(backend="highs", lp_export_path=str(path))
        ETransformPlanner(tiny_state, options).plan()
        text = path.read_text()
        assert "Minimize" in text
        assert "Binaries" in text

    def test_solver_options_forwarded(self, tiny_state):
        options = PlannerOptions(
            backend="highs", solver_options={"mip_rel_gap": 0.5}
        )
        plan = ETransformPlanner(tiny_state, options).plan()
        assert plan.total_cost > 0  # loose gap still returns a plan

    def test_validation_can_be_disabled(self, tiny_state):
        options = PlannerOptions(backend="highs", validate_inputs=False)
        assert ETransformPlanner(tiny_state, options).plan().total_cost > 0

    def test_last_solution_recorded(self, tiny_state):
        planner = ETransformPlanner(tiny_state, PlannerOptions(backend="highs"))
        assert planner.last_solution is None
        planner.plan()
        assert planner.last_solution is not None
        assert planner.last_solution.status.has_solution

    def test_solver_stats_attached_to_plan(self, tiny_state):
        plan = ETransformPlanner(
            tiny_state, PlannerOptions(backend="branch_bound")
        ).plan()
        assert plan.solver_stats is not None
        assert plan.solver_stats.nodes_explored > 0
        assert plan.solver_stats.elapsed_seconds > 0.0

    def test_presolve_option_runs_and_records_reductions(self, tiny_state):
        baseline = ETransformPlanner(
            tiny_state, PlannerOptions(backend="highs")
        ).plan()
        presolved = ETransformPlanner(
            tiny_state, PlannerOptions(backend="highs", presolve=True)
        ).plan()
        assert presolved.total_cost == pytest.approx(baseline.total_cost)
        assert presolved.solver_stats is not None
        assert presolved.solver_stats.presolve_rounds >= 1

    def test_plan_is_validated(self, tiny_state):
        # A correct solver output always passes validate_plan; this just
        # exercises the call path end to end.
        plan = ETransformPlanner(tiny_state, PlannerOptions(backend="highs")).plan()
        from repro.core import validate_plan

        validate_plan(tiny_state, plan)  # should not raise
