"""Property-based integration tests over random small enterprises.

For any random (feasible) state the library must uphold:

* the LP plan is never costlier than greedy (LP optimality),
* every emitted plan passes hard-constraint validation,
* the solver objective equals the independent plan evaluation.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    ApplicationGroup,
    AsIsState,
    StepCostFunction,
    UserLocation,
    evaluate_plan,
    plan_consolidation,
    validate_plan,
)
from repro.core.entities import DataCenter
from repro.core.latency import LatencyPenaltyFunction, NO_PENALTY
from repro.baselines import greedy_plan

LOCATIONS = ["east", "west"]


@st.composite
def random_state(draw):
    n_sites = draw(st.integers(min_value=2, max_value=4))
    n_groups = draw(st.integers(min_value=2, max_value=6))

    sites = []
    for j in range(n_sites):
        base = draw(st.floats(min_value=40, max_value=200))
        discount = draw(st.booleans())
        space = (
            StepCostFunction.volume_discount(base, step=20, discount=base * 0.1,
                                             floor_price=base * 0.5)
            if discount
            else StepCostFunction.flat(base)
        )
        sites.append(
            DataCenter(
                name=f"dc{j}",
                capacity=draw(st.integers(min_value=40, max_value=120)),
                space_cost=space,
                power_cost_per_kw=draw(st.floats(min_value=30, max_value=150)),
                labor_cost_per_admin=draw(st.floats(min_value=3000, max_value=9000)),
                wan_cost_per_mb=draw(st.floats(min_value=0.01, max_value=0.2)),
                latency_to_users={
                    "east": draw(st.floats(min_value=1, max_value=40)),
                    "west": draw(st.floats(min_value=1, max_value=40)),
                },
                fixed_monthly_cost=draw(st.sampled_from([0.0, 2000.0, 6000.0])),
            )
        )

    groups = []
    max_group = min(s.capacity for s in sites)
    for i in range(n_groups):
        sensitive = draw(st.booleans())
        groups.append(
            ApplicationGroup(
                name=f"g{i}",
                servers=draw(st.integers(min_value=1, max_value=max_group)),
                monthly_data_mb=draw(st.floats(min_value=0, max_value=50_000)),
                users={
                    "east": draw(st.floats(min_value=0, max_value=100)),
                    "west": draw(st.floats(min_value=0, max_value=100)),
                },
                latency_penalty=(
                    LatencyPenaltyFunction.single_threshold(10.0, 100.0)
                    if sensitive
                    else NO_PENALTY
                ),
            )
        )

    state = AsIsState(
        "random",
        groups,
        sites,
        user_locations=[UserLocation(n) for n in LOCATIONS],
    )
    # Only feasible instances are interesting here.
    total = sum(g.servers for g in groups)
    if total > sum(s.capacity for s in sites):
        groups = groups[:2]
        state = AsIsState(
            "random", groups, sites,
            user_locations=[UserLocation(n) for n in LOCATIONS],
        )
    return state


SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(random_state())
@SETTINGS
def test_lp_never_loses_to_greedy(state):
    from repro.baselines.greedy import GreedyPlanError
    from repro.core.planner import PlanningError

    try:
        greedy = greedy_plan(state)
    except GreedyPlanError:
        return  # greedy boxed itself in; nothing to compare
    try:
        lp = plan_consolidation(state, backend="highs", mip_rel_gap=1e-6)
    except PlanningError:
        pytest.fail("LP infeasible although greedy found a plan")
    assert lp.total_cost <= greedy.total_cost + max(1e-4, 1e-6 * greedy.total_cost)


@given(random_state())
@SETTINGS
def test_plans_validate_and_match_objective(state):
    from repro.core.planner import PlanningError

    try:
        plan = plan_consolidation(state, backend="highs", mip_rel_gap=1e-6)
    except PlanningError:
        return  # genuinely infeasible packing
    validate_plan(state, plan)
    re_evaluated = evaluate_plan(state, plan.placement, wan_model="metered")
    assert re_evaluated.breakdown.total == pytest.approx(plan.total_cost)
    assert plan.objective == pytest.approx(plan.total_cost, rel=1e-5)


@given(random_state())
@SETTINGS
def test_dr_plans_respect_invariants(state):
    from repro.core.planner import PlanningError
    from repro.core.validation import StateValidationError, validate_state

    # DR needs headroom; skip states that cannot host it.
    try:
        validate_state(state, require_dr_headroom=True)
    except StateValidationError:
        return
    try:
        plan = plan_consolidation(
            state, enable_dr=True, backend="highs", mip_rel_gap=0.01, time_limit=20
        )
    except PlanningError:
        return
    validate_plan(state, plan)
    for group in plan.placement:
        assert plan.placement[group] != plan.secondary[group]
