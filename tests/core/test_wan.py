"""WAN cost models."""

from __future__ import annotations

import pytest

from repro.core import ApplicationGroup, CostParameters
from repro.core.wan import (
    distance_priced_link,
    metered_wan_cost,
    vpn_links_required,
    vpn_wan_cost,
    wan_cost,
)

from ..conftest import make_datacenter


@pytest.fixture
def group():
    return ApplicationGroup(
        "g", 10, monthly_data_mb=200_000.0, users={"east": 30.0, "west": 10.0}
    )


@pytest.fixture
def dc():
    return make_datacenter("d", wan=0.05)


@pytest.fixture
def params():
    return CostParameters(vpn_link_capacity_mb=100_000.0)


class TestMetered:
    def test_cost(self, group, dc):
        assert metered_wan_cost(group, dc) == pytest.approx(200_000.0 * 0.05)

    def test_zero_data(self, dc):
        g = ApplicationGroup("g", 1)
        assert metered_wan_cost(g, dc) == 0.0


class TestVPN:
    def test_links_split_by_user_share(self, group, params):
        # east has 75 % of users → 0.75 × (200k/100k) = 1.5 links
        assert vpn_links_required(group, "east", params) == pytest.approx(1.5)
        assert vpn_links_required(group, "west", params) == pytest.approx(0.5)

    def test_links_zero_users(self, params):
        g = ApplicationGroup("g", 1, monthly_data_mb=1000.0)
        assert vpn_links_required(g, "east", params) == 0.0

    def test_links_unknown_location(self, group, params):
        assert vpn_links_required(group, "mars", params) == 0.0

    def test_cost_uses_per_location_prices(self, group, dc, params):
        # conftest prices: east $300/link, west $500/link
        expected = 1.5 * 300.0 + 0.5 * 500.0
        assert vpn_wan_cost(group, dc, params) == pytest.approx(expected)

    def test_missing_link_price_raises(self, group, params):
        dc = make_datacenter("d")
        dc.vpn_link_cost = {"east": 100.0}  # west missing
        with pytest.raises(KeyError, match="no VPN link price"):
            vpn_wan_cost(group, dc, params)

    def test_zero_user_location_skipped(self, dc, params):
        g = ApplicationGroup("g", 1, monthly_data_mb=1000.0,
                             users={"east": 5.0, "west": 0.0})
        # west has zero users: its missing price must not matter
        dc.vpn_link_cost = {"east": 100.0}
        assert vpn_wan_cost(g, dc, params) > 0


class TestDispatch:
    def test_metered(self, group, dc, params):
        assert wan_cost(group, dc, params, "metered") == metered_wan_cost(group, dc)

    def test_vpn(self, group, dc, params):
        assert wan_cost(group, dc, params, "vpn") == vpn_wan_cost(group, dc, params)

    def test_unknown(self, group, dc, params):
        with pytest.raises(ValueError, match="unknown WAN cost model"):
            wan_cost(group, dc, params, "carrier-pigeon")


def test_distance_priced_link():
    assert distance_priced_link(100.0, 0.5, 200.0) == pytest.approx(200.0)
    with pytest.raises(ValueError):
        distance_priced_link(100.0, 0.5, -1.0)
