"""Disaster-recovery extension of the MILP."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    ConsolidationModel,
    CostParameters,
    ModelOptions,
    evaluate_plan,
    shared_backup_requirements,
)
from repro.core.latency import NO_PENALTY
from repro.lp import SolveStatus, solve

from ..conftest import make_datacenter


def dr_state(user_locations, n_sites=3, capacity=300, **params_kw):
    targets = [
        make_datacenter(f"d{i}", capacity=capacity, space_base=80.0 + 20.0 * i)
        for i in range(n_sites)
    ]
    groups = [
        ApplicationGroup("a", 30, 1000.0, {"east": 20.0}, NO_PENALTY),
        ApplicationGroup("b", 40, 2000.0, {"west": 30.0}, NO_PENALTY),
        ApplicationGroup("c", 20, 500.0, {"east": 5.0}, NO_PENALTY),
    ]
    return AsIsState("drstate", groups, targets, user_locations=user_locations,
                     params=CostParameters(**params_kw))


def solve_dr(state, **opt_kw):
    model = ConsolidationModel(state, ModelOptions(enable_dr=True, **opt_kw))
    sol = solve(model.problem, backend="highs")
    assert sol.status is SolveStatus.OPTIMAL
    return model, sol


class TestDRStructure:
    def test_y_and_g_variables_created(self, user_locations):
        state = dr_state(user_locations)
        model = ConsolidationModel(state, ModelOptions(enable_dr=True))
        assert len(model.y) == len(model.x)
        assert set(model.g) == {"d0", "d1", "d2"}
        assert model.j  # shared pools need linking variables

    def test_dedicated_mode_has_no_j(self, user_locations):
        state = dr_state(user_locations)
        model = ConsolidationModel(
            state, ModelOptions(enable_dr=True, dedicated_backups=True)
        )
        assert not model.j

    def test_single_eligible_site_rejected(self, user_locations):
        targets = [make_datacenter("only", capacity=300)]
        groups = [ApplicationGroup("a", 10, users={"east": 1.0})]
        state = AsIsState("s", groups, targets, user_locations=user_locations)
        with pytest.raises(ValueError, match="fewer than two eligible"):
            ConsolidationModel(state, ModelOptions(enable_dr=True))


class TestDRSolutions:
    def test_primary_differs_from_secondary(self, user_locations):
        state = dr_state(user_locations)
        model, sol = solve_dr(state)
        placement = model.extract_placement(sol)
        secondary = model.extract_secondary(sol)
        assert set(secondary) == set(placement)
        for name in placement:
            assert placement[name] != secondary[name]

    def test_lp_pools_match_recomputed_pools(self, user_locations):
        state = dr_state(user_locations)
        model, sol = solve_dr(state)
        placement = model.extract_placement(sol)
        secondary = model.extract_secondary(sol)
        lp_pools = model.extract_backup_pools(sol)
        true_pools = shared_backup_requirements(state.app_groups, placement, secondary)
        assert lp_pools == {k: v for k, v in true_pools.items() if v > 0}

    def test_objective_matches_evaluation(self, user_locations):
        state = dr_state(user_locations)
        model, sol = solve_dr(state)
        plan = evaluate_plan(
            state,
            model.extract_placement(sol),
            secondary=model.extract_secondary(sol),
        )
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)

    def test_dedicated_objective_matches_evaluation(self, user_locations):
        state = dr_state(user_locations)
        model, sol = solve_dr(state, dedicated_backups=True)
        plan = evaluate_plan(
            state,
            model.extract_placement(sol),
            secondary=model.extract_secondary(sol),
            backup_sharing="dedicated",
        )
        assert plan.total_cost == pytest.approx(sol.objective, rel=1e-6)

    def test_sharing_cheaper_than_dedicated(self, user_locations):
        state = dr_state(user_locations, dr_server_cost=5000.0)
        _, shared_sol = solve_dr(state)
        _, dedicated_sol = solve_dr(state, dedicated_backups=True)
        assert shared_sol.objective <= dedicated_sol.objective + 1e-6

    def test_capacity_covers_backups(self, user_locations):
        # Tight capacity: backups must not overflow any site.
        state = dr_state(user_locations, capacity=95)
        model, sol = solve_dr(state)
        placement = model.extract_placement(sol)
        secondary = model.extract_secondary(sol)
        pools = shared_backup_requirements(state.app_groups, placement, secondary)
        load = {dc.name: 0 for dc in state.target_datacenters}
        for g in state.app_groups:
            load[placement[g.name]] += g.servers
        for name, pool in pools.items():
            load[name] += pool
        assert all(v <= 95 for v in load.values())

    def test_expensive_backups_push_spreading(self, user_locations):
        cheap = dr_state(user_locations, n_sites=4, dr_server_cost=1.0)
        _, sol_cheap = solve_dr(cheap)
        model_cheap = ConsolidationModel(cheap, ModelOptions(enable_dr=True))
        # re-extract with its own model for counting
        costly = dr_state(user_locations, n_sites=4, dr_server_cost=50_000.0)
        model_costly, sol_costly = solve_dr(costly)
        placement_costly = model_costly.extract_secondary(sol_costly)
        pools_costly = model_costly.extract_backup_pools(sol_costly)
        # With ζ huge, total backup servers must be minimized: pool total
        # strictly below the full estate mirror (90 servers).
        assert sum(pools_costly.values()) < 90

    def test_business_impact_with_dr(self, user_locations):
        state = dr_state(user_locations, n_sites=4, business_impact=0.34)
        model, sol = solve_dr(state)
        placement = model.extract_placement(sol)
        from collections import Counter

        counts = Counter(placement.values())
        assert max(counts.values()) <= 2  # ceil(0.34 × 3) = 1.02 → at most 1... allow 1
        assert max(counts.values()) == 1
