"""Domain entities and their validation."""

from __future__ import annotations

import pytest

from repro.core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    StepCostFunction,
    UserLocation,
)
from repro.core.entities import groups_by_risk
from repro.core.latency import NO_PENALTY

from ..conftest import PENALTY, make_datacenter


class TestUserLocation:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            UserLocation("")

    def test_frozen(self):
        loc = UserLocation("east")
        with pytest.raises(Exception):
            loc.name = "west"  # type: ignore[misc]


class TestApplicationGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            ApplicationGroup("", 1)
        with pytest.raises(ValueError):
            ApplicationGroup("g", 0)
        with pytest.raises(ValueError):
            ApplicationGroup("g", 1, monthly_data_mb=-1.0)
        with pytest.raises(ValueError):
            ApplicationGroup("g", 1, users={"east": -5.0})

    def test_total_users(self):
        g = ApplicationGroup("g", 1, users={"a": 10.0, "b": 5.0})
        assert g.total_users == 15.0

    def test_latency_sensitivity(self):
        assert ApplicationGroup("g", 1, latency_penalty=PENALTY).is_latency_sensitive
        assert not ApplicationGroup("g", 1).is_latency_sensitive

    def test_mean_latency_weighted(self):
        g = ApplicationGroup("g", 1, users={"a": 30.0, "b": 10.0})
        assert g.mean_latency({"a": 10.0, "b": 50.0}) == pytest.approx(20.0)

    def test_mean_latency_no_users(self):
        assert ApplicationGroup("g", 1).mean_latency({}) == 0.0

    def test_mean_latency_missing_location(self):
        g = ApplicationGroup("g", 1, users={"a": 5.0})
        with pytest.raises(KeyError, match="no latency figure"):
            g.mean_latency({"b": 1.0})

    def test_zero_user_locations_skipped(self):
        g = ApplicationGroup("g", 1, users={"a": 0.0, "b": 2.0})
        assert g.mean_latency({"b": 7.0}) == pytest.approx(7.0)

    def test_with_users_copies(self):
        g = ApplicationGroup("g", 1, users={"a": 1.0})
        h = g.with_users({"b": 2.0})
        assert h.users == {"b": 2.0}
        assert g.users == {"a": 1.0}
        assert h.name == g.name


class TestDataCenter:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_datacenter("")
        with pytest.raises(ValueError):
            make_datacenter("d", capacity=0)
        with pytest.raises(ValueError):
            DataCenter("d", 10, StepCostFunction.flat(1.0), -1.0, 1.0, 1.0)

    def test_per_server_monthly_cost_uses_occupancy_tier(self):
        dc = make_datacenter("d", space_base=100.0)
        params = CostParameters()
        low = dc.per_server_monthly_cost(params, occupancy=1)
        high = dc.per_server_monthly_cost(params, occupancy=10_000)
        assert high < low  # volume discount kicks in

    def test_negative_fixed_cost_rejected(self):
        with pytest.raises(ValueError):
            make_datacenter("d", fixed=-1.0)


class TestCostParameters:
    def test_defaults_valid(self):
        CostParameters()

    @pytest.mark.parametrize(
        "kw",
        [
            {"server_power_kw": 0.0},
            {"servers_per_admin": 0.0},
            {"vpn_link_capacity_mb": 0.0},
            {"dr_server_cost": -1.0},
            {"business_impact": 0.0},
            {"business_impact": 1.5},
            {"backup_power_fraction": -0.1},
            {"backup_labor_fraction": 1.1},
        ],
    )
    def test_invalid_parameters(self, kw):
        with pytest.raises(ValueError):
            CostParameters(**kw)


class TestAsIsState:
    def test_duplicate_group_names_rejected(self, user_locations):
        groups = [ApplicationGroup("g", 1), ApplicationGroup("g", 2)]
        with pytest.raises(ValueError, match="duplicate application group"):
            AsIsState("s", groups, [make_datacenter("d")], user_locations=user_locations)

    def test_duplicate_dc_names_rejected(self, user_locations):
        with pytest.raises(ValueError, match="duplicate data center"):
            AsIsState(
                "s",
                [ApplicationGroup("g", 1)],
                [make_datacenter("d")],
                current_datacenters=[make_datacenter("d")],
                user_locations=user_locations,
            )

    def test_lookups(self, tiny_state):
        assert tiny_state.group("erp").servers == 40
        assert tiny_state.target("mid").name == "mid"
        with pytest.raises(KeyError):
            tiny_state.group("nope")
        with pytest.raises(KeyError):
            tiny_state.target("nope")
        with pytest.raises(KeyError):
            tiny_state.current("nope")

    def test_totals_and_summary(self, tiny_state):
        assert tiny_state.total_servers == 155
        assert tiny_state.total_target_capacity == 600
        summary = tiny_state.summary()
        assert summary["app_groups"] == 4
        assert summary["target_datacenters"] == 3

    def test_placeable_capacity(self, tiny_state):
        big = ApplicationGroup("big", 500)
        assert not tiny_state.placeable(big, tiny_state.target("mid"))

    def test_placeable_forbidden(self, tiny_state):
        g = ApplicationGroup("g", 1, forbidden_datacenters=frozenset({"mid"}))
        assert not tiny_state.placeable(g, tiny_state.target("mid"))
        assert tiny_state.placeable(g, tiny_state.target("east-dc"))

    def test_placeable_region(self, tiny_state):
        g = ApplicationGroup("g", 1, allowed_regions=frozenset({"eu"}))
        assert not tiny_state.placeable(g, tiny_state.target("mid"))
        g2 = ApplicationGroup("g2", 1, allowed_regions=frozenset({"global"}))
        assert tiny_state.placeable(g2, tiny_state.target("mid"))


def test_groups_by_risk():
    groups = [
        ApplicationGroup("a", 1, risk_group="pci"),
        ApplicationGroup("b", 1, risk_group="pci"),
        ApplicationGroup("c", 1),
    ]
    buckets = groups_by_risk(groups)
    assert set(buckets) == {"pci"}
    assert [g.name for g in buckets["pci"]] == ["a", "b"]
