"""Local-search plan improvement."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import greedy_plan
from repro.core import evaluate_plan, plan_consolidation, validate_plan
from repro.core.local_search import improve_plan


def worst_plan(state):
    """Deliberately bad: everything in the costliest site that fits."""
    costly = max(
        state.target_datacenters,
        key=lambda dc: dc.space_cost.unit_price(1),
    )
    placement = {g.name: costly.name for g in state.app_groups}
    return evaluate_plan(state, placement)


class TestImprovePlan:
    def test_never_worsens(self, tiny_state):
        base = greedy_plan(tiny_state)
        result = improve_plan(tiny_state, base)
        assert result.plan.total_cost <= base.total_cost + 1e-6
        assert result.improvement >= -1e-6

    def test_improves_a_bad_plan(self, tiny_state):
        bad = worst_plan(tiny_state)
        result = improve_plan(tiny_state, bad)
        assert result.plan.total_cost < bad.total_cost
        assert result.relocations + result.swaps > 0

    def test_reaches_lp_quality_on_tiny(self, tiny_state):
        bad = worst_plan(tiny_state)
        result = improve_plan(tiny_state, bad)
        lp = plan_consolidation(tiny_state, backend="highs")
        assert result.plan.total_cost <= lp.total_cost * 1.05

    def test_result_validates(self, tiny_state):
        result = improve_plan(tiny_state, worst_plan(tiny_state))
        validate_plan(tiny_state, result.plan)

    def test_respects_forbidden_sites(self, tiny_state):
        tiny_state.app_groups[0].forbidden_datacenters = frozenset({"cheap-far", "mid"})
        placement = {g.name: "east-dc" for g in tiny_state.app_groups}
        base = evaluate_plan(tiny_state, placement)
        result = improve_plan(tiny_state, base)
        assert result.plan.placement["erp"] == "east-dc"

    def test_respects_risk_groups(self, tiny_state):
        tiny_state.app_groups[2].risk_group = "r"
        tiny_state.app_groups[3].risk_group = "r"
        placement = {"erp": "east-dc", "web": "east-dc",
                     "batch": "mid", "bi": "cheap-far"}
        base = evaluate_plan(tiny_state, placement)
        result = improve_plan(tiny_state, base)
        assert (
            result.plan.placement["batch"] != result.plan.placement["bi"]
        )
        validate_plan(tiny_state, result.plan)

    def test_rejects_dr_plans(self, tiny_state):
        placement = {g.name: "mid" for g in tiny_state.app_groups}
        secondary = {g.name: "cheap-far" for g in tiny_state.app_groups}
        dr = evaluate_plan(tiny_state, placement, secondary=secondary)
        with pytest.raises(ValueError, match="non-DR"):
            improve_plan(tiny_state, dr)

    def test_max_iterations_zero_is_noop(self, tiny_state):
        bad = worst_plan(tiny_state)
        result = improve_plan(tiny_state, bad, max_iterations=0)
        assert result.plan.placement == bad.placement
        with pytest.raises(ValueError):
            improve_plan(tiny_state, bad, max_iterations=-1)

    def test_solver_tag_extended(self, tiny_state):
        base = greedy_plan(tiny_state)
        result = improve_plan(tiny_state, base)
        assert result.plan.solver == "greedy+ls"

    def test_incremental_matches_full_evaluation(self, tiny_state):
        # The final plan's cost must be exactly evaluate_plan's verdict
        # (improve_plan promises that); spot-check on a moved plan.
        result = improve_plan(tiny_state, worst_plan(tiny_state))
        re_scored = evaluate_plan(tiny_state, result.plan.placement)
        assert result.plan.total_cost == pytest.approx(re_scored.total_cost)

    def test_polishes_greedy_on_case_study(self):
        from repro.datasets import load_enterprise1

        state = load_enterprise1(scale=0.25)
        base = greedy_plan(state)
        result = improve_plan(state, base)
        lp = plan_consolidation(state, backend="highs", mip_rel_gap=0.005)
        # Polished greedy closes (at least part of) the gap to the LP.
        assert result.plan.total_cost <= base.total_cost
        assert result.plan.total_cost >= lp.total_cost - 1e-6


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_local_search_never_violates_capacity(seed, tiny_state):
    import random

    rng = random.Random(seed)
    sites = [dc.name for dc in tiny_state.target_datacenters]
    placement = {}
    load = {s: 0 for s in sites}
    for g in tiny_state.app_groups:
        candidates = [
            s for s in sites
            if load[s] + g.servers <= tiny_state.target(s).capacity
        ]
        site = rng.choice(candidates)
        placement[g.name] = site
        load[site] += g.servers
    base = evaluate_plan(tiny_state, placement)
    result = improve_plan(tiny_state, base)
    validate_plan(tiny_state, result.plan)
