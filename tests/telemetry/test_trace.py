"""JSONL trace emission and the process-wide writer hook."""

from __future__ import annotations

import io
import json

from repro.telemetry import (
    SolveStats,
    TraceWriter,
    emit_record,
    get_trace,
    record_solve,
    set_trace,
    trace_enabled,
    trace_to,
)


class TestTraceWriter:
    def test_writes_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(str(path)) as writer:
            writer.emit({"event": "solve", "n": 1})
            writer.emit({"event": "solve", "n": 2})
            assert writer.records_written == 2
        lines = path.read_text().splitlines()
        assert [json.loads(line)["n"] for line in lines] == [1, 2]

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with TraceWriter(str(path)) as w:
            w.emit({"a": 1})
        with TraceWriter(str(path)) as w:
            w.emit({"a": 2})
        assert len(path.read_text().splitlines()) == 2

    def test_sanitizes_non_finite_floats(self):
        buf = io.StringIO()
        TraceWriter(buf).emit({"gap": float("nan"), "nested": [float("inf")]})
        record = json.loads(buf.getvalue())
        assert record["gap"] is None
        assert record["nested"] == [None]


class TestActiveWriter:
    def test_trace_to_installs_and_restores(self, tmp_path):
        assert not trace_enabled()
        with trace_to(str(tmp_path / "t.jsonl")) as writer:
            assert trace_enabled()
            assert get_trace() is writer
        assert not trace_enabled()

    def test_emit_record_is_noop_when_disabled(self):
        set_trace(None)
        emit_record({"event": "ignored"})  # must not raise

    def test_record_solve_emits_stats(self):
        buf = io.StringIO()
        with trace_to(buf):
            record_solve(
                problem="toy", backend="branch_bound", solver="branch_bound[builtin]",
                status="optimal", objective=6.0,
                stats=SolveStats(backend="branch_bound", nodes_explored=3),
                elapsed_seconds=0.01,
            )
        record = json.loads(buf.getvalue())
        assert record["event"] == "solve"
        assert record["problem"] == "toy"
        assert record["stats"]["nodes_explored"] == 3


class TestSolveIntegration:
    def test_every_solve_is_traced(self):
        from repro.lp import Problem, quicksum, solve

        buf = io.StringIO()
        with trace_to(buf):
            p = Problem("mini")
            xs = [p.add_binary(f"x{i}") for i in range(3)]
            p.add_constraint(quicksum(xs) <= 2)
            p.set_objective(-quicksum((i + 1) * x for i, x in enumerate(xs)))
            solve(p, backend="branch_bound")
            solve(p, backend="highs")
        records = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(records) == 2
        assert {r["backend"] for r in records} == {"branch_bound", "highs"}
        for r in records:
            assert r["event"] == "solve"
            assert r["status"] == "optimal"
            assert r["stats"] is not None
