"""The SolveStats record: gaps, merging, JSON safety."""

from __future__ import annotations

import json
import math

import pytest

from repro.telemetry import GapPoint, SolveStats


class TestRelativeGap:
    def test_closed_gap(self):
        s = SolveStats(incumbent=10.0, best_bound=10.0)
        assert s.relative_gap() == 0.0

    def test_open_gap(self):
        s = SolveStats(incumbent=10.0, best_bound=8.0)
        assert s.relative_gap() == pytest.approx(0.2)

    def test_unknown_bound_is_nan(self):
        assert math.isnan(SolveStats(incumbent=10.0).relative_gap())
        assert math.isnan(SolveStats(best_bound=1.0).relative_gap())

    def test_small_incumbent_uses_absolute_floor(self):
        # |incumbent| < 1 would explode a purely relative gap.
        s = SolveStats(incumbent=0.1, best_bound=0.0)
        assert s.relative_gap() == pytest.approx(0.1)


class TestMergePresolve:
    def test_accumulates(self):
        s = SolveStats()
        s.merge_presolve(fixed_variables=2, dropped_constraints=3,
                         tightened_bounds=1, rounds=4)
        s.merge_presolve(fixed_variables=1)
        assert s.presolve_fixed_variables == 3
        assert s.presolve_dropped_constraints == 3
        assert s.presolve_tightened_bounds == 1
        assert s.presolve_rounds == 4

    def test_returns_self(self):
        s = SolveStats()
        assert s.merge_presolve(rounds=1) is s


class TestAsDict:
    def test_round_trips_through_strict_json(self):
        s = SolveStats(backend="branch_bound", nodes_explored=7,
                       best_bound=float("-inf"), incumbent=float("nan"))
        s.gap_trajectory.append(GapPoint(1, float("-inf"), float("nan"), 0.1))
        s.extra["native_nodes"] = float("inf")
        text = json.dumps(s.as_dict(), allow_nan=False)  # must not raise
        data = json.loads(text)
        assert data["backend"] == "branch_bound"
        assert data["nodes_explored"] == 7
        assert data["best_bound"] is None
        assert data["incumbent"] is None
        assert data["gap_trajectory"][0]["best_bound"] is None
        assert data["extra"]["native_nodes"] is None

    def test_finite_values_survive(self):
        s = SolveStats(best_bound=5.0, incumbent=6.0, mip_gap=0.2)
        data = s.as_dict()
        assert data["best_bound"] == 5.0
        assert data["incumbent"] == 6.0
        assert data["mip_gap"] == 0.2
