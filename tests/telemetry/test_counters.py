"""Counters, timers and the metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry import Counter, MetricsRegistry, Timer, metrics


class TestCounter:
    def test_increment_and_value(self):
        c = Counter("pivots")
        assert c.increment() == 1.0
        assert c.increment(4) == 5.0
        assert c.value == 5.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            Counter("x").increment(-1)

    def test_reset(self):
        c = Counter("x", value=3.0)
        c.reset()
        assert c.value == 0.0


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0
        assert not t.running

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="never started"):
            Timer().stop()

    def test_running_flag(self):
        t = Timer().start()
        assert t.running
        t.stop()
        assert not t.running


class TestRegistry:
    def test_counter_is_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_increment_and_snapshot(self):
        reg = MetricsRegistry()
        reg.increment("b")
        reg.increment("a", 2)
        assert reg.snapshot() == {"a": 2.0, "b": 1.0}

    def test_reset_zeroes_all(self):
        reg = MetricsRegistry()
        reg.increment("a", 5)
        reg.reset()
        assert reg.snapshot() == {"a": 0.0}


class TestGlobalRegistry:
    def test_solves_are_counted(self):
        from repro.lp import Problem, solve

        before = metrics.counter("solves.total").value
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        solve(p, backend="simplex")
        assert metrics.counter("solves.total").value == before + 1
        assert metrics.counter("solves.backend.simplex").value >= 1


class TestGauge:
    def test_moves_both_ways(self):
        from repro.telemetry import Gauge

        g = Gauge("queue.depth")
        assert g.set(4) == 4.0
        assert g.increment() == 5.0
        assert g.decrement(3) == 2.0
        g.reset()
        assert g.value == 0.0

    def test_registry_memoizes_and_snapshots(self):
        reg = MetricsRegistry()
        assert reg.gauge("depth") is reg.gauge("depth")
        reg.gauge("depth").set(7)
        reg.increment("jobs", 2)
        assert reg.snapshot() == {"depth": 7.0, "jobs": 2.0}


class TestHistogram:
    def test_observations_land_in_buckets(self):
        from repro.telemetry import Histogram

        h = Histogram("t", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 30.0):
            h.observe(value)
        snap = h.as_dict()
        assert snap["count"] == 4
        assert snap["buckets"] == {"0.1": 1, "1.0": 2, "inf": 1}
        assert snap["mean"] == pytest.approx((0.05 + 0.5 + 0.7 + 30.0) / 4)

    def test_unsorted_buckets_rejected(self):
        from repro.telemetry import Histogram

        with pytest.raises(ValueError, match="sorted"):
            Histogram("t", buckets=(1.0, 0.1))
        with pytest.raises(ValueError, match="sorted"):
            Histogram("t", buckets=())

    def test_registry_observe_and_snapshot(self):
        reg = MetricsRegistry()
        reg.observe("solve", 0.02)
        reg.observe("solve", 0.03)
        snap = reg.histogram_snapshot()
        assert snap["solve"]["count"] == 2
        reg.reset()
        assert reg.histogram_snapshot()["solve"]["count"] == 0

    def test_empty_histogram_mean_is_zero(self):
        from repro.telemetry import Histogram

        assert Histogram("t").mean == 0.0


class TestDeclareCounters:
    """Mirror of the solver-backend registry's duplicate guard."""

    def test_duplicate_declaration_raises(self):
        from repro.telemetry import declare_counters, declared_counters

        declare_counters("tests.owner_a", ["tests.unique.counter"])
        assert declared_counters()["tests.unique.counter"] == "tests.owner_a"
        with pytest.raises(ValueError, match="already declared"):
            declare_counters("tests.owner_b", ["tests.unique.counter"])

    def test_failed_declaration_is_atomic(self):
        from repro.telemetry import declare_counters, declared_counters

        declare_counters("tests.owner_c", ["tests.atomic.taken"])
        with pytest.raises(ValueError, match="already declared"):
            declare_counters(
                "tests.owner_d", ["tests.atomic.fresh", "tests.atomic.taken"]
            )
        # The fresh name must not have been claimed by the failed call.
        assert "tests.atomic.fresh" not in declared_counters()

    def test_service_counters_are_declared_by_the_manager(self):
        import repro.service.manager as manager_module
        from repro.telemetry import declared_counters

        owners = declared_counters()
        for name in manager_module.SERVICE_COUNTERS:
            assert owners[name] == "repro.service.manager"

    def test_redeclaring_service_counters_raises(self):
        from repro.telemetry import declare_counters

        with pytest.raises(ValueError, match="already declared"):
            declare_counters("tests.intruder", ["service.jobs.submitted"])
