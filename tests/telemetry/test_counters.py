"""Counters, timers and the metrics registry."""

from __future__ import annotations

import pytest

from repro.telemetry import Counter, MetricsRegistry, Timer, metrics


class TestCounter:
    def test_increment_and_value(self):
        c = Counter("pivots")
        assert c.increment() == 1.0
        assert c.increment(4) == 5.0
        assert c.value == 5.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="forward"):
            Counter("x").increment(-1)

    def test_reset(self):
        c = Counter("x", value=3.0)
        c.reset()
        assert c.value == 0.0


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0
        assert not t.running

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError, match="never started"):
            Timer().stop()

    def test_running_flag(self):
        t = Timer().start()
        assert t.running
        t.stop()
        assert not t.running


class TestRegistry:
    def test_counter_is_memoized(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_increment_and_snapshot(self):
        reg = MetricsRegistry()
        reg.increment("b")
        reg.increment("a", 2)
        assert reg.snapshot() == {"a": 2.0, "b": 1.0}

    def test_reset_zeroes_all(self):
        reg = MetricsRegistry()
        reg.increment("a", 5)
        reg.reset()
        assert reg.snapshot() == {"a": 0.0}


class TestGlobalRegistry:
    def test_solves_are_counted(self):
        from repro.lp import Problem, solve

        before = metrics.counter("solves.total").value
        p = Problem()
        x = p.add_variable("x", ub=1.0)
        p.set_objective(-x)
        solve(p, backend="simplex")
        assert metrics.counter("solves.total").value == before + 1
        assert metrics.counter("solves.backend.simplex").value >= 1
