"""The unified ``repro.solve`` front door, its auto rule and the shims."""

from __future__ import annotations

import math
import warnings

import pytest

import repro
from repro.api import AUTO_DECOMPOSITION_PAIRS, METHODS, PlanResult, resolve_method
from repro.core.planner import ETransformPlanner, PlannerOptions


class TestMethodDispatch:
    def test_milp_result_carries_stats_and_bound(self, tiny_state):
        result = repro.solve(tiny_state, method="milp")
        assert isinstance(result, PlanResult)
        assert result.method == "milp"
        assert result.objective == result.plan.breakdown.total
        assert result.stats is not None

    def test_decomposition_result_carries_gap(self, tiny_state):
        result = repro.solve(tiny_state, method="decomposition")
        assert result.method == "decomposition"
        assert math.isfinite(result.gap)
        assert result.lower_bound <= result.objective + 1e-6
        assert result.stats.backend == "decomposition"

    def test_greedy_has_no_bound(self, tiny_state):
        result = repro.solve(tiny_state, method="greedy")
        assert result.method == "greedy"
        assert math.isnan(result.gap)
        assert result.lower_bound == -math.inf

    def test_engines_agree_within_decomposition_gap(self, tiny_state):
        milp = repro.solve(tiny_state, method="milp")
        decomp = repro.solve(tiny_state, method="decomposition")
        rel = (decomp.objective - milp.objective) / milp.objective
        assert rel <= max(decomp.gap, 0.0) + 1e-9

    def test_unknown_method_is_rejected(self, tiny_state):
        with pytest.raises(ValueError, match="unknown planning method"):
            repro.solve(tiny_state, method="quantum")

    def test_stray_kwargs_are_rejected(self, tiny_state):
        with pytest.raises(TypeError, match="options=PlannerOptions"):
            repro.solve(tiny_state, backend="highs")


class TestAutoRule:
    def test_small_estate_plans_milp(self, tiny_state):
        assert resolve_method(tiny_state, PlannerOptions()) == "milp"
        assert repro.solve(tiny_state, method="auto").method == "milp"

    def test_dr_estates_always_milp(self, tiny_state):
        options = PlannerOptions(enable_dr=True)
        assert resolve_method(tiny_state, options) == "milp"

    def test_pair_count_threshold_flips_to_decomposition(self, tiny_state):
        n_targets = len(tiny_state.target_datacenters)
        needed = -(-AUTO_DECOMPOSITION_PAIRS // n_targets)  # ceil
        base = tiny_state.app_groups[-1]
        while len(tiny_state.app_groups) < needed:
            clone = type(base)(
                f"pad-{len(tiny_state.app_groups)}", 1, 10.0, {}, base.latency_penalty
            )
            tiny_state.app_groups.append(clone)
        assert resolve_method(tiny_state, PlannerOptions()) == "decomposition"

    def test_method_field_in_options_drives_dispatch(self, tiny_state):
        result = repro.solve(tiny_state, options=PlannerOptions(method="greedy"))
        assert result.method == "greedy"


class TestWireRoundTrip:
    def test_method_survives_the_wire(self):
        options = PlannerOptions(method="decomposition")
        wire = options.as_wire()
        assert wire["method"] == "decomposition"
        assert PlannerOptions.from_wire(wire).method == "decomposition"

    def test_unknown_wire_method_is_rejected(self):
        wire = PlannerOptions().as_wire()
        wire["method"] = "quantum"
        with pytest.raises(ValueError, match="unknown planning method"):
            PlannerOptions.from_wire(wire)

    def test_methods_constant_matches_planner_options(self):
        assert PlannerOptions.METHODS == METHODS

    def test_jobs_survives_the_wire(self):
        options = PlannerOptions(method="decomposition", jobs=3)
        wire = options.as_wire()
        assert wire["jobs"] == 3
        assert PlannerOptions.from_wire(wire).jobs == 3

    def test_wire_jobs_rejects_non_integer(self):
        wire = PlannerOptions().as_wire()
        for bad in ("4", 2.5, True, None):
            wire["jobs"] = bad
            with pytest.raises(ValueError, match="jobs must be"):
                PlannerOptions.from_wire(wire)

    def test_wire_jobs_rejects_out_of_range(self):
        wire = PlannerOptions().as_wire()
        for bad in (-1, PlannerOptions.MAX_WIRE_JOBS + 1):
            wire["jobs"] = bad
            with pytest.raises(ValueError, match="jobs must be between"):
                PlannerOptions.from_wire(wire)


class TestDeprecationShims:
    def test_plan_consolidation_warns_and_matches(self, tiny_state):
        fresh = repro.solve(tiny_state, method="milp")
        with pytest.warns(DeprecationWarning, match="repro.solve"):
            legacy = repro.plan_consolidation(tiny_state)
        assert legacy.placement == fresh.plan.placement
        assert legacy.breakdown.total == pytest.approx(fresh.objective)

    def test_planner_plan_warns_and_matches(self, tiny_state):
        planner = ETransformPlanner(tiny_state, PlannerOptions())
        fresh = planner.build_plan()
        with pytest.warns(DeprecationWarning, match="build_plan"):
            legacy = ETransformPlanner(tiny_state, PlannerOptions()).plan()
        assert legacy.placement == fresh.placement

    def test_greedy_plan_warns_and_matches(self, tiny_state):
        fresh = repro.solve(tiny_state, method="greedy")
        with pytest.warns(DeprecationWarning, match="method='greedy'"):
            legacy = repro.greedy_plan(tiny_state)
        assert legacy.placement == fresh.plan.placement

    def test_lp_problem_first_argument_forwards_to_lp_solve(self):
        from repro.lp import Problem

        prob = Problem("toy")
        x = prob.add_binary("x")
        y = prob.add_binary("y")
        prob.add_constraint(x + y <= 1)
        prob.set_objective(-(2 * x + 3 * y))
        with pytest.warns(DeprecationWarning, match="repro.lp.solve"):
            solution = repro.solve(prob, backend="branch_bound")
        assert solution.as_name_dict()["y"] == pytest.approx(1.0)

    def test_parallel_map_alias_warns(self):
        import repro.experiments.harness as harness

        with pytest.warns(DeprecationWarning, match="repro.parallel"):
            alias = harness.parallel_map
        from repro.parallel import parallel_map

        assert alias is parallel_map

    def test_unified_paths_do_not_warn(self, tiny_state):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.solve(tiny_state, method="milp")
            repro.solve(tiny_state, method="decomposition")
            repro.solve(tiny_state, method="greedy")


class TestParallelMap:
    def test_serial_and_parallel_agree(self):
        from repro.parallel import parallel_map

        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [i * i for i in items]
        assert parallel_map(_square, items, jobs=2) == [i * i for i in items]

    def test_effective_jobs_resolves_cpu_count(self):
        from repro.parallel import effective_jobs

        assert effective_jobs(3) == 3
        assert effective_jobs(0) >= 1

    def test_daemonic_process_falls_back_to_serial(self):
        # Service workers are daemonic and may not fork children; a
        # jobs>1 request from the wire must degrade, not crash.
        import multiprocessing

        queue = multiprocessing.Queue()
        proc = multiprocessing.Process(
            target=_daemon_square_probe, args=(queue,), daemon=True
        )
        proc.start()
        proc.join(timeout=30)
        assert queue.get(timeout=5) == [i * i for i in range(8)]


def _square(i: int) -> int:
    return i * i


def _daemon_square_probe(queue) -> None:
    from repro.parallel import parallel_map

    queue.put(parallel_map(_square, list(range(8)), jobs=4))
