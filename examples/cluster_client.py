"""Driving a planning-service *cluster*: dispatcher, store, streaming.

Run:  python examples/cluster_client.py

Boots two planning-service replicas sharing one SQLite job store plus a
fingerprint-sharding dispatcher in front of them — exactly what these
three commands run as separate processes:

    etransform serve --port 8081 --replica-id a --store sqlite:///tmp/jobs.db
    etransform serve --port 8082 --replica-id b --store sqlite:///tmp/jobs.db
    etransform dispatch --replica http://127.0.0.1:8081 \
                        --replica http://127.0.0.1:8082 \
                        --store sqlite:///tmp/jobs.db --port 8079

then walks the cluster workflow: submit through the dispatcher and see
which shard served it, stream the job's event feed live (what
``etransform watch <job-id>`` prints), hit the dispatcher-wide result
cache, kill the owning replica and still read the result out of the
shared store, and inspect routing/health stats.
"""

import tempfile
import time

from repro import ServiceClient, load_enterprise1
from repro.io import state_to_dict
from repro.service.cluster import ClusterHarness


def main() -> None:
    store_url = f"sqlite://{tempfile.mkdtemp()}/jobs.db"
    with ClusterHarness(
        n_replicas=2, workers_per_replica=2, store_url=store_url
    ) as cluster:
        client = ServiceClient(cluster.url)
        print(f"dispatcher up at {cluster.url}: {client.healthz()}")

        state = state_to_dict(load_enterprise1(scale=0.3))

        # -- submit through the dispatcher --------------------------------
        # Routing is rendezvous-hashed on the *state* fingerprint, so
        # every job about this estate lands on the same replica (and
        # its warm solve caches); the record says which one.
        job = client.submit("plan", {"state": state, "options": {"backend": "highs"}})
        print(f"\nplan {job['id']} routed to shard for this state")

        # -- watch it live -------------------------------------------------
        # The same feed `etransform watch <job-id> --url <dispatcher>`
        # renders: queue/dispatch transitions plus solver progress ticks.
        for event in client.stream(job["id"]):
            kind = event.get("type")
            if kind == "state":
                print(f"  [{event['seq']:>3}] {event['state']}"
                      + (f" (via {event['via']})" if event.get("via") else ""))
            elif kind == "progress":
                print(f"  [{event['seq']:>3}] progress: {event}")
        done = client.job(job["id"])
        summary = done["result"]["summary"]
        print(f"replica {done['replica']}: ${summary['total_cost']:,.0f}/month")

        # -- the dispatcher-wide result cache ------------------------------
        repeat = client.submit("plan", {"state": state, "options": {"backend": "highs"}})
        print(f"\nrepeat submission: {repeat['state']} at once (via {repeat['via']})")

        # -- replica death: the store answers anyway -----------------------
        owner = int(done["replica"].rsplit("-", 1)[1])
        cluster.replicas[owner].stop()
        print(f"\nkilled {done['replica']}; fetching the job again...")
        survived = client.job(job["id"])
        print(f"still {survived['state']} — served from the shared job store")

        # -- operational visibility ----------------------------------------
        # Give the health monitor a moment to evict the dead replica;
        # new submissions re-route to the survivors immediately after.
        deadline = time.monotonic() + 5.0
        while (
            time.monotonic() < deadline
            and len(cluster.dispatcher.healthy_replicas()) > 1
        ):
            time.sleep(0.1)
        stats = client.metrics()
        healthy = [r["url"] for r in stats["replicas"] if r["healthy"]]
        print(f"\ndispatcher stats: {stats['jobs_routed']} routed, "
              f"cache {stats['cache']}, healthy replicas: {healthy}")


if __name__ == "__main__":
    main()
