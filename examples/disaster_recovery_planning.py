"""Joint consolidation + disaster-recovery planning (paper Section IV).

Run:  python examples/disaster_recovery_planning.py [scale]

Plans primary AND secondary sites for every application group under the
single-failure model, shows how backup pools are shared across sites,
and sweeps the backup-server price ζ to show the consolidation/DR
tension of the paper's Fig. 8: cheap backups → concentrate and mirror;
expensive backups → spread primaries so one small pool covers the worst
single failure.
"""

import sys

from repro import PlannerOptions, load_enterprise1, solve
from repro.baselines import asis_with_dr_plan


def dr_options(time_limit: float) -> PlannerOptions:
    return PlannerOptions(
        enable_dr=True,
        solver_options={"mip_rel_gap": 0.02, "time_limit": time_limit},
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    state = load_enterprise1(scale=scale)

    baseline = asis_with_dr_plan(state)
    print(f"As-is + single backup site: ${baseline.total_cost:,.0f} "
          f"({sum(baseline.backup_servers.values())} backup servers)\n")

    plan = solve(state, options=dr_options(120)).plan
    print(f"eTransform joint plan: ${plan.total_cost:,.0f} "
          f"({(plan.total_cost / baseline.total_cost - 1):+.0%} vs as-is+DR)")
    print(f"  primary sites  : {sorted(set(plan.placement.values()))}")
    print(f"  backup pools   : {plan.backup_servers}")
    print(f"  latency breaks : {plan.latency_violations}\n")

    print("Sensitivity to the backup-server price ζ:")
    print(f"{'zeta':>8} {'sites used':>11} {'DR servers':>11} {'total':>14}")
    for zeta in (10.0, 1000.0, 20000.0):
        state.params.dr_server_cost = zeta
        swept = solve(state, options=dr_options(60)).plan
        print(
            f"{zeta:>8,.0f} {len(swept.datacenters_used):>11d} "
            f"{sum(swept.backup_servers.values()):>11d} {swept.total_cost:>14,.0f}"
        )


if __name__ == "__main__":
    main()
