"""The admin interface for iterative modification (paper Fig. 5).

Run:  python examples/interactive_whatif.py

An administrator rarely accepts the first optimal plan: compliance pins
an application group to a specific site, a candidate site falls through
in contract negotiation, a site must not host too many groups.  This
example drives the IterativeSession API through such a refinement loop
and shows the cost of each directive.
"""

from repro import IterativeSession, PlannerOptions, load_enterprise1


def main() -> None:
    state = load_enterprise1(scale=0.3)
    session = IterativeSession(
        state, PlannerOptions(backend="auto", solver_options={"mip_rel_gap": 0.005})
    )

    plan = session.plan()
    print(f"Initial optimal plan: ${plan.total_cost:,.0f} "
          f"into {plan.datacenters_used}")

    # Compliance: the first group must stay in the site it is in today's
    # jurisdiction — pin it to a specific candidate.
    group = state.app_groups[0].name
    pinned_site = sorted(set(plan.placement.values()))[0]
    other_site = next(
        dc.name for dc in state.target_datacenters if dc.name != pinned_site
    )
    session.pin(group, other_site)
    plan = session.plan()
    print(f"After pinning {group} to {other_site}: ${plan.total_cost:,.0f}")

    # Procurement: one of the chosen sites fell through — retire it.
    session.retire_site(pinned_site)
    plan = session.plan()
    print(f"After retiring {pinned_site}: ${plan.total_cost:,.0f} "
          f"into {plan.datacenters_used}")

    # Risk: cap how many groups any surviving site may host.
    busiest = max(
        set(plan.placement.values()),
        key=lambda site: sum(1 for s in plan.placement.values() if s == site),
    )
    count = sum(1 for s in plan.placement.values() if s == busiest)
    session.cap_groups(busiest, max(1, count // 2))
    plan = session.plan()
    print(f"After capping {busiest} at {max(1, count // 2)} groups: "
          f"${plan.total_cost:,.0f}")

    print("\nDirectives applied, in order:")
    for line in session.describe():
        print(f"  - {line}")
    print(f"\nCost trajectory: "
          + " → ".join(f"${p.total_cost:,.0f}" for p in session.history))


if __name__ == "__main__":
    main()
