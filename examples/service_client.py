"""Driving the planning service over its HTTP JSON API.

Run:  python examples/service_client.py

Boots an in-process planning service on an ephemeral port (exactly what
``etransform serve`` runs), then walks the client workflow a
consolidation team would use: submit a plan job and poll it, watch a
repeated request come back instantly from the fingerprint cache,
refine the plan across several HTTP requests against one warm
incremental session, and read the operational metrics.

Against an already-running service, replace the boot block with
``client = ServiceClient("http://host:8080")``.
"""

import threading

from repro import ServiceClient, load_enterprise1
from repro.service import JobManager, PlanningServer, ServiceConfig


def main() -> None:
    # -- boot (what `etransform serve` does) ------------------------------
    config = ServiceConfig(port=0, workers=2)  # port 0 → ephemeral
    manager = JobManager(config).start()
    server = PlanningServer(config, manager)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    print(f"service up at {server.url}: {client.healthz()}")

    state = load_enterprise1(scale=0.3)

    # -- a plan job: submit, poll, read the result ------------------------
    job = client.submit_plan(state, options={"backend": "highs"})
    print(f"\nsubmitted plan job {job['id']} ({job['state']})")
    done = client.wait(job["id"])
    summary = done["result"]["summary"]
    print(f"planned in {done['elapsed']:.2f}s (via {done['via']}): "
          f"${summary['total_cost']:,.0f}/month "
          f"into {summary['datacenters_used']}")

    # -- the same request again: a fingerprint-cache hit ------------------
    repeat = client.submit_plan(state, options={"backend": "highs"})
    print(f"repeat submission: {repeat['state']} immediately "
          f"(via {repeat['via']})")

    # -- refinement across HTTP requests, one warm session ----------------
    # The payload always carries the cumulative directive list; the
    # worker holding the session applies only the new suffix to its
    # warm RevisionedModel (watch `warm` flip to True).
    site = summary["datacenters_used"][0]
    directives = [{"kind": "retire_site", "datacenter": site}]
    step1 = client.wait(client.submit_refine(state, directives)["id"])
    print(f"\nretire {site}: ${step1['result']['summary']['total_cost']:,.0f} "
          f"(warm={step1['result']['warm']})")

    directives.append(
        {"kind": "cap_groups",
         "datacenter": step1["result"]["summary"]["datacenters_used"][0],
         "limit": 20}
    )
    step2 = client.wait(client.submit_refine(state, directives)["id"])
    print(f"cap next site: ${step2['result']['summary']['total_cost']:,.0f} "
          f"(warm={step2['result']['warm']}, "
          f"cache={step2['result']['solve_cache']})")

    # -- operational visibility -------------------------------------------
    stats = client.metrics()
    print(f"\nmetrics: {stats['jobs']['by_state']} | cache {stats['cache']} "
          f"| workers {stats['workers']}")

    # -- drain ------------------------------------------------------------
    server.shutdown()
    drained = manager.shutdown(drain=True)
    print(f"drained cleanly: {drained}")


if __name__ == "__main__":
    main()
