"""Case study: compare consolidation strategies on a real-shaped estate.

Run:  python examples/enterprise_consolidation.py [dataset] [scale]

Reproduces one panel of the paper's Fig. 4 on demand: evaluates the
as-is estate, the manual rule-of-thumb consolidation, the greedy
heuristic and eTransform's LP plan, then prints the cost/penalty bars
and the violation counts side by side.
"""

import sys

from repro.experiments import run_comparison, tables
from repro.experiments.comparison import CASE_STUDY_LOADERS


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "enterprise1"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    loader = CASE_STUDY_LOADERS[dataset]

    state = loader(scale=scale)
    print(f"Dataset: {dataset} {state.summary()}\n")

    result = run_comparison(
        state,
        backend="auto",
        solver_options={"mip_rel_gap": 0.005, "time_limit": 120},
    )
    print(tables.render_comparison(result))
    print()
    for algorithm in ("manual", "greedy", "etransform"):
        print(
            f"{algorithm:>11}: {result.reduction(algorithm):+.0%} vs as-is, "
            f"{result.violations(algorithm)} latency violations, "
            f"solved in {result._by_name(algorithm).runtime_seconds:.1f}s"
        )


if __name__ == "__main__":
    main()
