"""Model your own enterprise from scratch with the public API.

Run:  python examples/custom_enterprise.py

Builds a small fictional enterprise by hand — no synthetic generators —
covering every modeling feature: volume-discounted space pricing, fixed
facility costs, latency penalty functions, regional restrictions,
shared-risk anti-colocation, dedicated-VPN WAN pricing, and DR.  Saves
the state to JSON (the CLI's input format) and plans it both ways.
"""

import tempfile

from repro import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    LatencyPenaltyFunction,
    PlannerOptions,
    StepCostFunction,
    UserLocation,
    solve,
)
from repro.io import load_state, render_plan_report, save_state


def build_state() -> AsIsState:
    users = [UserLocation("new-york", 0, 0), UserLocation("frankfurt", 6200, 0)]

    def site(name, region, capacity, space, power, labor, wan, lat_ny, lat_fra,
             fixed, vpn_ny, vpn_fra):
        return DataCenter(
            name=name,
            capacity=capacity,
            space_cost=StepCostFunction.volume_discount(
                base_price=space, step=100, discount=space * 0.08,
                floor_price=space * 0.55,
            ),
            power_cost_per_kw=power,
            labor_cost_per_admin=labor,
            wan_cost_per_mb=wan,
            latency_to_users={"new-york": lat_ny, "frankfurt": lat_fra},
            vpn_link_cost={"new-york": vpn_ny, "frankfurt": vpn_fra},
            region=region,
            fixed_monthly_cost=fixed,
        )

    targets = [
        site("ashburn", "us", 800, 95.0, 55.0, 7200.0, 0.04, 6.0, 45.0, 6000.0, 250.0, 900.0),
        site("dallas", "us", 600, 70.0, 48.0, 6100.0, 0.05, 12.0, 55.0, 5000.0, 350.0, 1100.0),
        site("frankfurt-1", "eu", 700, 120.0, 95.0, 8800.0, 0.06, 45.0, 4.0, 8000.0, 900.0, 200.0),
        site("warsaw", "eu", 500, 60.0, 60.0, 4500.0, 0.05, 55.0, 11.0, 3500.0, 1000.0, 320.0),
    ]

    strict = LatencyPenaltyFunction.single_threshold(10.0, 120.0)
    relaxed = LatencyPenaltyFunction.single_threshold(30.0, 20.0)

    groups = [
        # Trading front-end: latency-critical, US users, must stay in US.
        ApplicationGroup("trading", 60, 400_000.0, {"new-york": 900.0},
                         latency_penalty=strict,
                         allowed_regions=frozenset({"us"})),
        # EU payroll: GDPR keeps it in the EU; users in Frankfurt.
        ApplicationGroup("payroll-eu", 25, 80_000.0, {"frankfurt": 300.0},
                         latency_penalty=relaxed,
                         allowed_regions=frozenset({"eu"})),
        # Two replicas of the order pipeline that must not share a roof.
        ApplicationGroup("orders-blue", 45, 150_000.0,
                         {"new-york": 400.0, "frankfurt": 200.0},
                         latency_penalty=relaxed, risk_group="orders"),
        ApplicationGroup("orders-green", 45, 150_000.0,
                         {"new-york": 400.0, "frankfurt": 200.0},
                         latency_penalty=relaxed, risk_group="orders"),
        # Batch analytics: nobody cares where it runs.
        ApplicationGroup("analytics", 120, 50_000.0, {}),
    ]

    params = CostParameters(dr_server_cost=1500.0, business_impact=0.8)
    return AsIsState("fictional-corp", groups, targets,
                     user_locations=users, params=params)


def main() -> None:
    state = build_state()

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        save_state(state, handle.name)
        reloaded = load_state(handle.name)
        print(f"State round-tripped through {handle.name}\n")

    plan = solve(reloaded, options=PlannerOptions(wan_model="vpn")).plan
    print(render_plan_report(reloaded, plan))

    print("\n--- with disaster recovery ---\n")
    dr_plan = solve(
        reloaded, options=PlannerOptions(enable_dr=True, wan_model="vpn")
    ).plan
    print(render_plan_report(reloaded, dr_plan))

    assert plan.placement["trading"] in ("ashburn", "dallas")
    assert dr_plan.placement["orders-blue"] != dr_plan.placement["orders-green"]


if __name__ == "__main__":
    main()
