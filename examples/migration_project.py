"""From optimal plan to executable project: migration waves + payback.

Run:  python examples/migration_project.py [scale]

A consolidation plan is only as good as the project that executes it.
This example computes the to-be plan for the enterprise1 estate, phases
it into change windows under an ops budget (max servers per wave, bulk
bandwidth, dual-running validation), and prints the wave timetable, the
one-off migration cost, and the month the project pays for itself.
"""

import sys

from repro import PlannerOptions, load_enterprise1, solve
from repro.baselines import asis_plan
from repro.migration import MigrationConfig, plan_migration


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    state = load_enterprise1(scale=scale)

    current = asis_plan(state)
    options = PlannerOptions(solver_options={"mip_rel_gap": 0.005})
    plan = solve(state, options=options).plan
    print(
        f"Monthly bill: ${current.total_cost:,.0f} (as-is) → "
        f"${plan.total_cost:,.0f} (to-be), "
        f"saving ${current.total_cost - plan.total_cost:,.0f}/month\n"
    )

    config = MigrationConfig(
        max_servers_per_wave=120,
        move_cost_per_server=150.0,
        data_gb_per_server=200.0,
        bandwidth_mbps=2000.0,
        dual_run_days=2.0,
    )
    schedule = plan_migration(state, plan, config)
    print(schedule.render())

    print("\nCumulative net position (first year):")
    for month, net in enumerate(schedule.cumulative_savings_curve(12), start=1):
        bar = "#" * max(0, int(net / max(schedule.monthly_saving, 1) * 4))
        print(f"  month {month:>2}: {net:>14,.0f}  {bar}")


if __name__ == "__main__":
    main()
