"""Does the DR plan actually survive disasters?  Simulate and see.

Run:  python examples/resilience_simulation.py [scale]

The planner sizes shared backup pools under a single-failure
assumption.  This example replays two decades of sampled disasters
against three alternatives — no DR, eTransform's shared-pool DR, and
dedicated per-group backups — under *identical* outage traces, and
compares availability, failovers and pool shortfalls (moments when two
simultaneous failures outran a shared pool).
"""

import sys

from repro import PlannerOptions, load_enterprise1, solve
from repro.sim import FailureModelConfig, SimulatorConfig, compare_resilience


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    state = load_enterprise1(scale=scale)
    solver = {"mip_rel_gap": 0.02, "time_limit": 120}

    plans = {
        "no-dr": solve(
            state, options=PlannerOptions(solver_options=solver)
        ).plan,
        "shared-pools": solve(
            state, options=PlannerOptions(enable_dr=True, solver_options=solver)
        ).plan,
        "dedicated": solve(
            state,
            options=PlannerOptions(
                enable_dr=True, dedicated_backups=True, solver_options=solver
            ),
        ).plan,
    }

    config = SimulatorConfig(
        horizon_months=240.0,  # twenty years of disasters
        failover_hours=0.5,
        failure=FailureModelConfig(mtbf_hours=3 * 8760.0, mttr_hours=120.0, seed=7),
    )
    reports = compare_resilience(state, plans, config)

    print(f"{'variant':<14} {'monthly cost':>14} {'availability':>13} "
          f"{'failovers':>10} {'shortfalls':>11}")
    for name, plan in plans.items():
        report = reports[name]
        print(
            f"{name:<14} ${plan.total_cost:>13,.0f} "
            f"{report.mean_availability:>13.5f} "
            f"{report.total_failovers:>10d} {len(report.shortfalls):>11d}"
        )

    print("\nDetail — shared pools:")
    print(reports["shared-pools"].summary())


if __name__ == "__main__":
    main()
