"""Quickstart: consolidate the enterprise1 case study in ~20 lines.

Run:  python examples/quickstart.py [scale]

Loads the synthetic enterprise1 estate (190 application groups, 1070
servers across 67 legacy sites), asks eTransform for a consolidation
plan into the 10 candidate sites, and prints the to-be report plus the
savings against doing nothing.
"""

import sys

from repro import PlannerOptions, load_enterprise1, solve, asis_plan
from repro.io import render_plan_report


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0
    state = load_enterprise1(scale=scale)

    current = asis_plan(state)
    options = PlannerOptions(solver_options={"mip_rel_gap": 0.005})
    plan = solve(state, options=options).plan

    print(render_plan_report(state, plan))
    print()
    saving = 1.0 - plan.total_cost / current.total_cost
    print(f"As-is monthly cost : ${current.total_cost:,.0f}")
    print(f"To-be monthly cost : ${plan.total_cost:,.0f}")
    print(f"Saving             : {saving:.0%}")


if __name__ == "__main__":
    main()
