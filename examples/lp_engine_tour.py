"""A tour of the bundled optimization engine (`repro.lp`).

Run:  python examples/lp_engine_tour.py

The planner's substrate is a self-contained modeling-plus-solver stack.
This example builds a small facility-location MILP by hand and walks it
through everything the engine offers: all four backends, presolve,
cover cuts, and the LP/MPS interchange formats (write, re-parse,
re-solve).
"""

import tempfile

from repro.lp import (
    Problem,
    parse_lp_string,
    quicksum,
    solve,
    solve_with_presolve,
    write_lp_string,
    write_mps_string,
)


def build_model() -> Problem:
    """Mini facility location: 5 clients, 3 facilities, open+assign."""
    clients = range(5)
    facilities = range(3)
    open_cost = [120.0, 80.0, 100.0]
    assign_cost = [
        [10, 14, 20],
        [12, 9, 25],
        [25, 17, 8],
        [21, 13, 9],
        [9, 20, 24],
    ]

    p = Problem("facility")
    opened = [p.add_binary(f"open{j}") for j in facilities]
    assign = {
        (i, j): p.add_binary(f"assign{i}_{j}") for i in clients for j in facilities
    }
    for i in clients:
        p.add_constraint(
            quicksum(assign[(i, j)] for j in facilities) == 1, f"serve{i}"
        )
    for i in clients:
        for j in facilities:
            p.add_constraint(assign[(i, j)] <= opened[j], f"link{i}_{j}")
    p.set_objective(
        quicksum(open_cost[j] * opened[j] for j in facilities)
        + quicksum(
            assign_cost[i][j] * assign[(i, j)] for i in clients for j in facilities
        )
    )
    return p


def main() -> None:
    model = build_model()
    print(f"model: {model}\n")

    print("backends:")
    for backend in ("highs", "branch_bound", "rounding"):
        sol = solve(model, backend=backend)
        print(f"  {backend:<14} {sol.status.value:<10} obj={sol.objective:.1f}")
    cut = solve(model, backend="branch_bound", cover_cut_rounds=3)
    print(f"  {'bb+cuts':<14} {cut.status.value:<10} obj={cut.objective:.1f} "
          f"({cut.iterations} nodes)")

    pre = solve_with_presolve(model, backend="highs")
    print(f"  {'presolve+highs':<14} {pre.status.value:<10} obj={pre.objective:.1f}\n")

    lp_text = write_lp_string(model)
    print("LP format (head):")
    print("\n".join(lp_text.splitlines()[:6]))
    reparsed = parse_lp_string(lp_text)
    round_trip = solve(reparsed, backend="highs")
    print(f"\nre-parsed model solves to obj={round_trip.objective:.1f} "
          "(identical by construction)\n")

    mps_text, name_map = write_mps_string(model)
    with tempfile.NamedTemporaryFile("w", suffix=".mps", delete=False) as handle:
        handle.write(mps_text)
        print(f"MPS written to {handle.name} "
              f"({len(name_map)} variables, fixed-format names)")


if __name__ == "__main__":
    main()
