"""Decomposition vs monolithic B&B: the scaling headline of PR 8.

Two ladders under the same per-solve wall-clock budget:

* **monolithic** — the builtin branch-and-bound MILP on growing
  enterprise1 scales, climbing until a solve blows the budget (no
  incumbent / gap over target).  The last rung that solves is the
  monolithic frontier.
* **decomposition** — the Dantzig-Wolfe/Lagrangian engine on estates
  from enterprise1 scale (~1k servers) up to a 110k-server synthetic
  enterprise, each solve reporting its certified duality gap.

Acceptance (asserted here, archived in ``BENCH_decomp.json``):

* the decomposition frontier is at least **10x** the monolithic
  frontier in servers, inside the same budget;
* every **at-scale** decomposition arm (the rungs past the monolithic
  frontier, marked ``certify`` in the ladder) certifies a gap of at
  most **2 %**;
* on estates where both engines solve, the decomposition objective is
  within its own reported gap of the monolithic optimum.

The small enterprise1 rungs record their gap but are not held to the
2 % certificate: the Lagrangian bound prices space at its convex
envelope, which only meets the step schedule once site loads reach the
deep tiers, so toy estates certify ~5 % even when the plan itself is
within 0.2 % of the exact optimum (the parity assertion shows this).
Those estates are ``method="milp"`` territory under the auto rule; the
certificate tightens exactly where decomposition is the only engine
that can still solve.

A ``federal`` arm runs the second case-study dataset through the
engine as a distribution shift check (different price ranges and
estate shape than enterprise1).

Smoke mode (``DECOMP_SMOKE=1``, used by CI) shrinks both ladders and
the budget so the module finishes in seconds; the 10x assertion is
relaxed to "decomposition out-scales monolithic" since at toy scale
both frontiers sit inside the ladder.
"""

from __future__ import annotations

import os
import time

from repro.core.decomposition import DecompositionConfig, solve_decomposition
from repro.core.planner import ETransformPlanner, PlannerOptions, PlanningError
from repro.datasets import load_enterprise1, load_federal
from repro.datasets.builders import EnterpriseSpec, build_enterprise_state

SMOKE = os.environ.get("DECOMP_SMOKE", "") not in ("", "0")

#: Per-solve wall-clock budget, both ladders (seconds).
BUDGET = 20.0 if SMOKE else 120.0

#: Monolithic ladder: enterprise1 scales, climbed until a rung fails.
MONO_SCALES = (0.08, 0.12) if SMOKE else (0.3, 0.5, 0.7)

#: Decomposition ladder: (label, state builder).
GAP_TARGET = 0.02


def _synthetic(groups: int, servers: int, targets: int, seed: int = 5):
    return build_enterprise_state(
        EnterpriseSpec(
            name=f"synthetic-{servers}",
            app_groups=groups,
            total_servers=servers,
            current_datacenters=max(5, targets // 3),
            target_datacenters=targets,
            total_users=float(servers) * 4.0,
            seed=seed,
        )
    )


def _decomp_ladder():
    """(label, state builder, must-certify) rungs, smallest first."""
    if SMOKE:
        return [
            ("enterprise1 x0.3", lambda: load_enterprise1(scale=0.3), False),
            ("synthetic-11k", lambda: _synthetic(2_000, 11_000, 40), True),
        ]
    return [
        ("enterprise1", lambda: load_enterprise1(), False),
        ("synthetic-11k", lambda: _synthetic(2_000, 11_000, 40), True),
        ("synthetic-110k", lambda: _synthetic(20_000, 110_000, 120), True),
    ]


def _servers(state) -> int:
    return sum(g.servers for g in state.app_groups)


def _run_monolithic(state) -> dict:
    start = time.perf_counter()
    try:
        plan = ETransformPlanner(
            state,
            PlannerOptions(
                backend="branch_bound",
                solver_options={"time_limit": BUDGET, "gap_tolerance": GAP_TARGET},
            ),
        ).build_plan()
    except PlanningError as exc:
        return {
            "solved": False,
            "elapsed_seconds": round(time.perf_counter() - start, 3),
            "error": str(exc),
        }
    elapsed = time.perf_counter() - start
    stats = plan.solver_stats
    gap = stats.mip_gap if stats is not None else None
    solved = elapsed <= BUDGET * 1.05 and gap is not None and gap <= GAP_TARGET + 1e-9
    return {
        "solved": solved,
        "elapsed_seconds": round(elapsed, 3),
        "objective": plan.breakdown.total,
        "gap": gap,
    }


def _run_decomposition(state) -> dict:
    start = time.perf_counter()
    outcome = solve_decomposition(
        state,
        config=DecompositionConfig(time_limit=BUDGET, gap_target=GAP_TARGET),
    )
    elapsed = time.perf_counter() - start
    return {
        "solved": elapsed <= BUDGET * 1.05,
        "certified": outcome.gap <= GAP_TARGET,
        "elapsed_seconds": round(elapsed, 3),
        "objective": outcome.upper_bound,
        "lower_bound": outcome.lower_bound,
        "gap": outcome.gap,
        "rounds": outcome.rounds,
        "columns": outcome.columns,
        "coordination": outcome.coordination,
    }


def test_bench_decomposition_scaling(archive, archive_json):
    record: dict = {
        "budget_seconds": BUDGET,
        "gap_target": GAP_TARGET,
        "smoke": SMOKE,
        "monolithic": [],
        "decomposition": [],
    }
    lines = [
        "Decomposition vs monolithic branch-and-bound",
        f"  per-solve budget             {BUDGET:g} s "
        f"(gap target {GAP_TARGET:.0%})",
    ]

    # --- monolithic ladder: climb until a rung fails ----------------------
    mono_frontier = 0
    mono_results: dict[float, dict] = {}
    for scale in MONO_SCALES:
        state = load_enterprise1(scale=scale)
        servers = _servers(state)
        result = _run_monolithic(state)
        result.update(scale=scale, servers=servers,
                      groups=len(state.app_groups))
        record["monolithic"].append(result)
        mono_results[scale] = result
        status = (
            f"ok {result['elapsed_seconds']:.1f}s gap {result['gap']:.2%}"
            if result["solved"]
            else f"FAILED after {result['elapsed_seconds']:.1f}s"
        )
        lines.append(
            f"  monolithic x{scale:<4} {len(state.app_groups):>6} groups "
            f"{servers:>7} servers   {status}"
        )
        if not result["solved"]:
            break
        mono_frontier = servers
    assert mono_frontier > 0, "monolithic must solve at least the smallest rung"

    # --- decomposition ladder --------------------------------------------
    decomp_frontier = 0
    for label, build, must_certify in _decomp_ladder():
        state = build()
        servers = _servers(state)
        result = _run_decomposition(state)
        result.update(label=label, servers=servers, groups=len(state.app_groups),
                      targets=len(state.target_datacenters),
                      at_scale=must_certify)
        record["decomposition"].append(result)
        lines.append(
            f"  decomp {label:<14} {len(state.app_groups):>6} groups "
            f"{servers:>7} servers   {result['elapsed_seconds']:>6.1f}s "
            f"gap {result['gap']:.2%} ({result['coordination']})"
        )
        assert result["solved"], f"{label}: blew the wall-clock budget"
        if must_certify:
            assert result["certified"], (
                f"{label}: certified gap {result['gap']:.2%} over target"
            )
            decomp_frontier = max(decomp_frontier, servers)

    # --- parity where both engines solve ---------------------------------
    parity_scale = MONO_SCALES[0]
    mono = mono_results[parity_scale]
    state = load_enterprise1(scale=parity_scale)
    decomp = _run_decomposition(state)
    rel = (decomp["objective"] - mono["objective"]) / mono["objective"]
    record["parity"] = {
        "scale": parity_scale,
        "monolithic_objective": mono["objective"],
        "decomposition_objective": decomp["objective"],
        "relative_excess": rel,
        "reported_gap": decomp["gap"],
    }
    lines.append(
        f"  parity (x{parity_scale:g})            decomp is {rel:+.3%} vs "
        f"monolithic (certified {decomp['gap']:.2%})"
    )
    # The bound certificate must cover the distance to the true optimum
    # (the monolithic solve itself stops at GAP_TARGET, hence the slack).
    assert decomp["lower_bound"] <= mono["objective"] * (1 + GAP_TARGET) + 1e-6
    assert rel <= decomp["gap"] + GAP_TARGET + 1e-9

    # --- federal arm ------------------------------------------------------
    federal = load_federal(scale=0.3 if SMOKE else 1.0)
    fed = _run_decomposition(federal)
    fed.update(label="federal", servers=_servers(federal),
               groups=len(federal.app_groups))
    record["federal"] = fed
    lines.append(
        f"  federal        {fed['groups']:>6} groups {fed['servers']:>7} "
        f"servers   {fed['elapsed_seconds']:>6.1f}s gap {fed['gap']:.2%}"
    )
    assert fed["gap"] <= GAP_TARGET

    # --- the headline -----------------------------------------------------
    ratio = decomp_frontier / mono_frontier
    record["monolithic_frontier_servers"] = mono_frontier
    record["decomposition_frontier_servers"] = decomp_frontier
    record["scale_ratio"] = round(ratio, 2)
    lines += [
        f"  frontier                     monolithic {mono_frontier} servers, "
        f"decomposition {decomp_frontier} servers",
        f"  scale ratio                  {ratio:.1f}x",
        f"  smoke mode                   {SMOKE}",
    ]
    if SMOKE:
        assert ratio > 1.0
    else:
        assert ratio >= 10.0, (
            f"decomposition frontier only {ratio:.1f}x the monolithic one"
        )

    archive("decomp", "\n".join(lines))
    archive_json("decomp", record)
