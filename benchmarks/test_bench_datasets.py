"""Table II / Figs. 2–3: dataset generation and summary statistics."""

from __future__ import annotations

from repro.datasets import (
    ENTERPRISE1_USERS,
    load_enterprise1,
    load_federal,
    load_florida,
)

#: Table II ground truth: (groups, servers, as-is sites, target sites).
TABLE_II = {
    "enterprise1": (190, 1070, 67, 10),
    "florida": (190, 3907, 43, 10),
    "federal": (1900, 42800, 2094, 100),
}


def _check_row(state, name):
    groups, servers, currents, targets = TABLE_II[name]
    s = state.summary()
    assert s["app_groups"] == groups
    assert s["servers"] == servers
    assert s["current_datacenters"] == currents
    assert s["target_datacenters"] == targets


def test_bench_enterprise1_generation(benchmark, archive):
    state = benchmark(load_enterprise1)
    _check_row(state, "enterprise1")
    total_users = sum(g.total_users for g in state.app_groups)
    assert round(total_users) == ENTERPRISE1_USERS
    archive(
        "table2_enterprise1",
        f"Table II enterprise1: {state.summary()} users={total_users:.0f}",
    )


def test_bench_florida_generation(benchmark, archive):
    state = benchmark(load_florida)
    _check_row(state, "florida")
    archive("table2_florida", f"Table II florida: {state.summary()}")


def test_bench_federal_generation(benchmark, archive):
    state = benchmark(load_federal)
    _check_row(state, "federal")
    archive("table2_federal", f"Table II federal: {state.summary()}")


def test_bench_group_size_distribution(benchmark):
    """Fig. 1/3 structure: heavy-tailed groups, every group non-empty."""
    state = benchmark(load_enterprise1)
    sizes = sorted((g.servers for g in state.app_groups), reverse=True)
    assert sizes[0] > 5 * (sum(sizes) / len(sizes))  # a whale exists
    assert sizes[-1] >= 1
