"""Fig. 10: placement order as the estate grows from 100 to 700 groups.

The paper's observation: eTransform fills the location with the lowest
total cost first, then pulls in further locations in increasing
total-cost order (its Fig. 10 legend reads 4, 5, 3, 6, 2, 7, 1).
"""

from __future__ import annotations

from repro.experiments import run_placement_growth, tables
from repro.experiments.placement_growth import DEFAULT_GROUP_COUNTS

from .conftest import run_once


def test_bench_fig10_placement_growth(benchmark, archive):
    def run():
        return run_placement_growth(
            group_counts=DEFAULT_GROUP_COUNTS,
            backend="highs",
            solver_options={"mip_rel_gap": 1e-4},
        )

    result = run_once(benchmark, run)

    # Staircase: one more site per 100 groups (capacity 100 each).
    assert result.datacenters_used() == [1, 2, 3, 4, 5, 6, 7]

    # The sites used at every size are exactly the cheapest-k locations.
    for point in result.points:
        k = point.datacenters_used
        assert set(point.fill) == set(result.cost_order[:k])
        assert all(count <= 100 for count in point.fill.values())

    # First site ever used is the global cost minimum.
    assert result.first_use_order()[0] == result.cost_order[0]

    text = tables.render_placement_growth(result)
    archive("fig10_placement_growth", text)
    print()
    print(text)
