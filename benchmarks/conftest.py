"""Benchmark plumbing.

Each benchmark regenerates one table/figure of the paper, asserts its
qualitative shape, and archives the rendered text under
``bench_results/`` so the series the paper reports can be inspected
after a ``pytest benchmarks/ --benchmark-only`` run.

Alongside each human-readable ``<name>.txt``, every benchmark module
also writes a machine-readable ``BENCH_<name>.json`` — wall time,
solver throughput (solves/second) and the telemetry-counter deltas the
module produced (solve cache hits, incremental shortcuts, service
counters).  The record is assembled automatically by a module-scoped
fixture; benchmarks with extra figures of merit merge them in through
the ``archive_json`` fixture.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"

#: Extra JSON fields contributed by individual benchmarks, name → dict.
_EXTRA_JSON: dict[str, dict] = {}


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def archive(results_dir):
    """Callable: archive(name, text) → writes bench_results/<name>.txt."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _archive


@pytest.fixture(scope="session")
def archive_json():
    """Callable: archive_json(name, record) → extra fields for the
    module's ``BENCH_<name>.json`` (merged over the automatic ones)."""

    def _archive(name: str, record: dict) -> None:
        _EXTRA_JSON.setdefault(name, {}).update(record)

    return _archive


@pytest.fixture(scope="module", autouse=True)
def bench_json(request, results_dir):
    """Write ``BENCH_<module>.json`` after each benchmark module runs."""
    from repro.telemetry import metrics

    name = request.module.__name__.rsplit(".", 1)[-1]
    name = name.removeprefix("test_bench_")
    before = metrics.snapshot()
    start = time.perf_counter()
    yield
    wall = time.perf_counter() - start
    after = metrics.snapshot()
    counters = {
        key: after[key] - before.get(key, 0.0)
        for key in sorted(after)
        if after[key] != before.get(key, 0.0)
    }
    solves = counters.get("solves.total", 0.0)
    record = {
        "benchmark": name,
        "generated_at": time.time(),
        "wall_seconds": round(wall, 6),
        "solves": solves,
        "ops_per_second": round(solves / wall, 6) if wall > 0 else 0.0,
        "counters": counters,
    }
    record.update(_EXTRA_JSON.get(name, {}))
    path = results_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
