"""Benchmark plumbing.

Each benchmark regenerates one table/figure of the paper, asserts its
qualitative shape, and archives the rendered text under
``bench_results/`` so the series the paper reports can be inspected
after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def archive(results_dir):
    """Callable: archive(name, text) → writes bench_results/<name>.txt."""

    def _archive(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _archive


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under the timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
