"""Fig. 9: the space-cost / WAN-cost tradeoff across the line.

Prices a 100-group bundle at every location and checks the paper's
observations: space rises along the line while dedicated-VPN WAN falls
toward the users, the total is minimized strictly inside the line, and
the cheapest location is severalfold (paper: ~7×) cheaper than the most
expensive one.
"""

from __future__ import annotations

from repro.experiments import run_tradeoff, tables


def test_bench_fig9_tradeoff(benchmark, archive):
    result = benchmark(run_tradeoff, 100)

    spaces = [loc.space_cost for loc in result.locations]
    wans = [loc.wan_cost for loc in result.locations]
    totals = result.totals()

    assert spaces == sorted(spaces)          # space grows along the line
    assert wans == sorted(wans, reverse=True)  # WAN falls toward users
    assert 0 < result.minimum_index < len(totals) - 1  # interior optimum
    assert result.spread > 5.0               # severalfold, paper says ~7×

    text = tables.render_tradeoff(result)
    archive("fig9_tradeoff", text)
    print()
    print(text)


def test_bench_fig9_solver_agrees_with_pricing(benchmark, archive):
    """eTransform's actual placement lands in the priced minimum."""
    from repro.core import plan_consolidation
    from repro.datasets import tradeoff_line_scenario

    reference = run_tradeoff(100)
    state = tradeoff_line_scenario(n_groups=100)

    def run():
        return plan_consolidation(
            state, backend="highs", wan_model="vpn", mip_rel_gap=1e-4
        )

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    chosen = set(plan.placement.values())
    assert chosen == {reference.cheapest.location}
