"""Cluster-tier load benchmark: latency percentiles + replica scaling.

The same open-loop workload — ``JOBS`` distinct plan requests fired
back-to-back at the dispatcher — is run against a cluster of 1 replica
and then ``N_REPLICAS`` replicas (fresh SQLite job store per run, so no
result leaks between configurations).  Reported per configuration:

* **saturation throughput** — jobs/second with every job in flight at
  once, the figure the >= 1.8x N-replica acceptance floor applies to.
  The floor is asserted only on a multi-core runner: replicas are
  separate worker *processes*, so on one core adding a replica just
  adds scheduling overhead, and the archived ``cpu_count`` says which
  regime produced the numbers.
* **job latency p50/p95/p99** — server-side ``finished_at -
  created_at`` per job (queue wait + solve), immune to client polling
  granularity.

A separate backpressure probe floods a deliberately tiny queue
(1 worker, depth 1) and checks the admission-control contract under
load: overflow is an explicit 429 with a ``Retry-After`` hint, and
every job that got a 201 is still tracked and cancellable — nothing is
silently dropped.

Smoke mode (``CLUSTER_SMOKE=1``, used by CI) shrinks the workload and
skips the scaling assertion.  Archives ``bench_results/cluster.txt`` +
``BENCH_cluster.json``.
"""

from __future__ import annotations

import math
import os
import time

from repro.datasets import load_enterprise1
from repro.io import state_to_dict
from repro.service import ServiceClient, ServiceError
from repro.service.cluster import ClusterHarness

SMOKE = os.environ.get("CLUSTER_SMOKE", "") not in ("", "0")
JOBS = 6 if SMOKE else 16
N_REPLICAS = 2
WORKERS_PER_REPLICA = 2
THROUGHPUT_FLOOR = 1.8  # N-replica vs 1-replica saturation throughput


def _percentile(values: list[float], q: float) -> float:
    ranked = sorted(values)
    index = max(0, min(len(ranked) - 1, math.ceil(q * len(ranked)) - 1))
    return ranked[index]


def _payloads(count: int) -> list[dict]:
    """``count`` distinct plan requests (distinct shard keys)."""
    doc = state_to_dict(load_enterprise1(scale=0.10))
    payloads = []
    for n in range(count):
        variant = dict(doc)
        variant["name"] = f"{doc['name']}-load{n}"
        payloads.append({"state": variant, "options": {"backend": "highs"}})
    return payloads


def _run_config(
    n_replicas: int, payloads: list[dict], store_url: str
) -> dict:
    with ClusterHarness(
        n_replicas=n_replicas,
        workers_per_replica=WORKERS_PER_REPLICA,
        store_url=store_url,
        job_timeout=300.0,
    ) as harness:
        client = ServiceClient(harness.url, timeout=120.0)
        start = time.perf_counter()
        job_ids = [
            client.submit("plan", payload)["id"] for payload in payloads
        ]
        latencies = []
        replicas_used = set()
        for job_id in job_ids:
            done = client.wait(job_id, timeout=300.0, poll_interval=0.02)
            assert done["state"] == "succeeded", done.get("error")
            latencies.append(done["finished_at"] - done["created_at"])
            replicas_used.add(done["replica"])
        wall = time.perf_counter() - start
        stats = harness.dispatcher.stats()
    return {
        "replicas": n_replicas,
        "wall_seconds": round(wall, 3),
        "jobs_per_second": round(len(payloads) / wall, 4),
        "latency_p50": round(_percentile(latencies, 0.50), 4),
        "latency_p95": round(_percentile(latencies, 0.95), 4),
        "latency_p99": round(_percentile(latencies, 0.99), 4),
        "replicas_used": sorted(replicas_used),
        "routed": stats["counters"].get("dispatcher.jobs.routed", 0),
    }


def _backpressure_probe(store_url: str) -> dict:
    """Flood a 1-worker depth-1 replica; the overflow must 429."""
    doc = state_to_dict(load_enterprise1(scale=0.10))
    with ClusterHarness(
        n_replicas=1,
        workers_per_replica=1,
        store_url=store_url,
        max_queue_depth=1,
        job_timeout=120.0,
    ) as harness:
        client = ServiceClient(harness.url, timeout=30.0)
        accepted: list[str] = []
        rejected = 0
        retry_after = None
        for n in range(6):
            variant = dict(doc)
            variant["name"] = f"{doc['name']}-flood{n}"
            payload = {
                "state": variant,
                "options": {"backend": "highs"},
                "simulation": {
                    "horizon_months": 200_000.0,
                    "mtbf_hours": 100.0,
                    "mttr_hours": 24.0,
                    "seed": n,
                },
            }
            try:
                accepted.append(client.submit("simulate", payload)["id"])
            except ServiceError as exc:
                assert exc.status == 429, f"unexpected status {exc.status}"
                assert exc.retry_after is not None and exc.retry_after >= 1.0
                rejected += 1
                retry_after = exc.retry_after
        # The no-silent-drop contract: every 201 is still tracked.
        for job_id in accepted:
            state = client.job(job_id)["state"]
            assert state in ("queued", "running"), state
            assert client.cancel(job_id)["cancelled"] is True
    return {
        "submitted": len(accepted) + rejected,
        "accepted": len(accepted),
        "rejected_429": rejected,
        "retry_after_hint": retry_after,
    }


def test_bench_cluster_scaling(archive, archive_json, tmp_path):
    payloads = _payloads(JOBS)
    single = _run_config(1, payloads, f"sqlite://{tmp_path}/jobs_1.db")
    multi = _run_config(
        N_REPLICAS, payloads, f"sqlite://{tmp_path}/jobs_n.db"
    )
    backpressure = _backpressure_probe(f"sqlite://{tmp_path}/jobs_bp.db")

    speedup = multi["jobs_per_second"] / single["jobs_per_second"]
    cpus = os.cpu_count() or 1
    lines = [
        "Cluster-tier load benchmark",
        f"workload: {JOBS} distinct plan requests (enterprise1 @ 0.10, "
        f"backend=highs), {WORKERS_PER_REPLICA} workers/replica, {cpus} cpu",
        "",
        f"{'config':<24} {'wall':>8} {'jobs/s':>8} "
        f"{'p50':>7} {'p95':>7} {'p99':>7}",
    ]
    for row in (single, multi):
        lines.append(
            f"{str(row['replicas']) + ' replica(s)':<24} "
            f"{row['wall_seconds']:>7.2f}s {row['jobs_per_second']:>8.2f} "
            f"{row['latency_p50']:>6.2f}s {row['latency_p95']:>6.2f}s "
            f"{row['latency_p99']:>6.2f}s"
        )
    lines += [
        "",
        f"saturation throughput {N_REPLICAS} vs 1 replicas: {speedup:.2f}x"
        + (
            f" (single-core runner: no parallelism to win; the "
            f">= {THROUGHPUT_FLOOR}x floor applies on >= 2 cpus)"
            if cpus < 2
            else f" (acceptance floor >= {THROUGHPUT_FLOOR}x)"
        ),
        f"backpressure probe: {backpressure['accepted']} accepted, "
        f"{backpressure['rejected_429']} rejected with 429 "
        f"(Retry-After {backpressure['retry_after_hint']}s); every "
        "accepted job remained tracked and cancellable",
    ]
    archive("cluster", "\n".join(lines))
    archive_json(
        "cluster",
        {
            "workload_jobs": JOBS,
            "workers_per_replica": WORKERS_PER_REPLICA,
            "single_replica": single,
            "multi_replica": multi,
            "throughput_speedup": round(speedup, 3),
            "throughput_floor": THROUGHPUT_FLOOR,
            "floor_asserted": not SMOKE and cpus >= 2,
            "backpressure": backpressure,
            "cpu_count": cpus,
            "smoke": SMOKE,
        },
    )
    print("\n".join(lines))

    # The multi-replica run actually spread the shard keys around.
    assert len(multi["replicas_used"]) == N_REPLICAS
    assert backpressure["rejected_429"] >= 1
    if not SMOKE and cpus >= 2:
        assert speedup >= THROUGHPUT_FLOOR, (
            f"{N_REPLICAS}-replica saturation throughput only {speedup:.2f}x "
            f"the single replica's on a {cpus}-cpu runner "
            f"(floor {THROUGHPUT_FLOOR}x)"
        )
