"""Incremental re-solve vs cold rebuild across an iterative session.

Runs the same 5-directive refinement script twice on an
enterprise1-scale state — once through an incremental
:class:`IterativeSession` (revisioned model + solve cache) and once in
cold mode (full model rebuild and fresh branch-and-bound per step) —
and times every ``plan()`` call.  The figure of merit is the total time
spent on the five *directive re-solves*: the initial solve is identical
work on both paths and is excluded.  Asserts identical plans at every
step and, outside smoke mode, a >= 3x speedup on the directive
re-solves; archives both timelines to ``bench_results/incremental.txt``.

The script mixes the cases an operator actually produces: a pin that
confirms the incumbent (tightening shortcut, ~ms), a forbid on a pair
the optimum never used (tightening shortcut), a forbid that evicts a
group from its chosen site (genuine re-solve, warm-started), a
headroom cap at the current occupancy (tightening shortcut), and an
undo (fingerprint cache hit).

Smoke mode (``INCREMENTAL_SMOKE=1``, used by CI) runs a reduced-scale
state and skips the timing assertion — machine load must not fail CI.
"""

from __future__ import annotations

import os
import time
from collections import Counter

from repro.core import IterativeSession, PlannerOptions
from repro.datasets import load_enterprise1

SMOKE = os.environ.get("INCREMENTAL_SMOKE", "") not in ("", "0")
SCALE = 0.12 if SMOKE else 0.2


def _plans_equal(a, b) -> bool:
    return (
        a.placement == b.placement
        and abs(a.breakdown.total - b.breakdown.total) <= 1e-6
    )


def _timed_plan(session):
    t0 = time.perf_counter()
    plan = session.plan()
    return plan, time.perf_counter() - t0


def test_bench_incremental_session(archive):
    state = load_enterprise1(scale=SCALE)
    opts = PlannerOptions(backend="branch_bound")
    inc = IterativeSession(state, opts, incremental=True)
    cold = IterativeSession(state, opts, incremental=False)

    base, inc_initial = _timed_plan(inc)
    cold_base, cold_initial = _timed_plan(cold)
    assert _plans_equal(base, cold_base)

    groups = sorted(base.placement)
    sites = [dc.name for dc in state.target_datacenters]
    # Directive script derived from the base plan so every case fires.
    g_confirm = groups[0]
    g_idle = groups[1]
    idle_site = next(s for s in sites if s != base.placement[g_idle])
    g_move = groups[2]

    steps: list[tuple[str, float, float]] = []  # (label, inc_s, cold_s)

    def run_step(label, act):
        act(inc)
        act(cold)
        p_inc, t_inc = _timed_plan(inc)
        p_cold, t_cold = _timed_plan(cold)
        assert _plans_equal(p_inc, p_cold), f"plans diverged at step {label!r}"
        steps.append((label, t_inc, t_cold))
        return p_inc

    run_step(
        f"pin {g_confirm} (confirms incumbent)",
        lambda s: s.pin(g_confirm, base.placement[g_confirm]),
    )
    run_step(
        f"forbid {g_idle} from unused {idle_site}",
        lambda s: s.forbid(g_idle, idle_site),
    )
    moved = run_step(
        f"forbid {g_move} from its site (real move)",
        lambda s: s.forbid(g_move, base.placement[g_move]),
    )
    counts = Counter(moved.placement.values())
    cap_site, cap_n = counts.most_common(1)[0]
    run_step(
        f"cap {cap_site} at current occupancy {cap_n}",
        lambda s: s.cap_groups(cap_site, cap_n),
    )
    run_step("undo the cap", lambda s: s.undo())

    inc_total = sum(t for _, t, _ in steps)
    cold_total = sum(t for _, _, t in steps)
    ratio = cold_total / inc_total if inc_total > 0 else float("inf")
    cache = inc.solve_cache

    lines = [
        "Incremental re-solve benchmark (enterprise1-scale session)",
        f"  state                        {len(state.app_groups)} groups x "
        f"{len(state.target_datacenters)} sites (scale {SCALE})",
        f"  initial solve                inc {inc_initial:.3f} s   "
        f"cold {cold_initial:.3f} s   (identical work, excluded)",
        "  directive re-solves:",
    ]
    for label, t_inc, t_cold in steps:
        lines.append(f"    {label:<44} inc {t_inc:8.3f} s   cold {t_cold:8.3f} s")
    lines += [
        f"  directive re-solve total     inc {inc_total:.3f} s   "
        f"cold {cold_total:.3f} s",
        f"  speedup                      {ratio:.2f}x",
        f"  fingerprint hits / misses    {cache.hits} / {cache.misses}",
        f"  tightening shortcuts         {cache.tightening_reuses}",
        f"  smoke mode                   {SMOKE}",
    ]
    archive("incremental", "\n".join(lines))

    if not SMOKE:
        assert ratio >= 3.0, f"incremental speedup {ratio:.2f}x < 3x"
