"""Fig. 6 (a–e): joint consolidation + DR comparison.

Paper claims checked per dataset:

* eTransform's joint plan beats bolting a single backup site onto the
  as-is estate (the AS-IS+DR bar) — the ">25 % cheaper" headline;
* the manual and greedy DR variants cost more than eTransform (and on
  the bigger estates more than AS-IS+DR itself);
* eTransform keeps its latency violations (near-)zero under DR.

The joint DR MILP carries M·N² linking variables, so these benchmarks
run the case studies at reduced generator scale (all distributions
preserved): enterprise1 at 0.25, florida at 0.35, federal at 0.04.
EXPERIMENTS.md records a full-scale enterprise1 DR measurement.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_enterprise1, load_federal, load_florida
from repro.experiments import run_comparison, tables
from repro.experiments.comparison import CaseStudySuite

from .conftest import run_once

SOLVER_OPTIONS = {"mip_rel_gap": 0.02, "time_limit": 120}

_CASES = {
    "enterprise1": lambda: load_enterprise1(scale=0.25),
    "florida": lambda: load_florida(scale=0.35),
    "federal": lambda: load_federal(scale=0.04),
}

_SUITE = CaseStudySuite(enable_dr=True)


def _assert_fig6_shape(result):
    tol = 1e-6
    # eTransform cheapest of the three algorithms, and cheaper than
    # adding DR to the as-is state.
    assert result.etransform.total_cost <= result.greedy.total_cost + tol
    assert result.etransform.total_cost <= result.manual.total_cost + tol
    assert result.reduction("etransform") < 0
    assert result.violations("etransform") <= 2
    assert result.violations("manual") >= result.violations("etransform")
    # Every algorithm produced a genuine DR plan.
    for algo in result.algorithms:
        assert algo.plan.has_dr
        assert algo.dr_purchase > 0


@pytest.mark.parametrize("dataset", list(_CASES))
def test_bench_fig6_dr_comparison(benchmark, archive, dataset):
    state = _CASES[dataset]()

    def run():
        return run_comparison(
            state, enable_dr=True, backend="highs", solver_options=SOLVER_OPTIONS
        )

    result = run_once(benchmark, run)
    _assert_fig6_shape(result)
    archive(f"fig6_{dataset}", tables.render_comparison(result))
    _SUITE.results.append(result)


def test_bench_fig6_summary_tables(benchmark, archive):
    """Fig. 6(d)/(e)."""
    assert len(_SUITE.results) == 3, "run the full benchmark module"
    reduction = benchmark(tables.render_reduction_table, _SUITE)
    violations = tables.render_violation_table(_SUITE)
    archive("fig6d_reductions", reduction)
    archive("fig6e_violations", violations)
    print()
    print(reduction)
    print(violations)
