"""Dual-simplex node throughput: warm dual re-solves vs primal restarts.

Replays the same seeded stream of branch-and-bound-style bound
tightenings as the revised benchmark on an enterprise1-scale
consolidation LP, solving every node through two cached
:class:`RelaxationContext` instances with parent warm tokens — both on
the sparse revised core, differing only in the node re-solve path:

* baseline: ``node_resolve="primal"``, ``presolve=False`` — the PR-5
  configuration, full phase-1/phase-2 restart per node;
* candidate: ``node_resolve="dual"``, ``presolve=True`` — the dual
  simplex entered from the parent token (+ the array presolve and the
  factorization pool), the PR-6 default.

Both contexts run presolve *without* integrality information:
integer-aware bound snapping legitimately strengthens node relaxations
(a snapped binary bound can move the LP value while preserving every
integral point), which would break the node-for-node objective
comparison this benchmark relies on.  Continuous-only reductions keep
the LP feasible region identical, so exact equality is asserted; the
integer-aware strengthening is validated at the MILP level by the
branch-and-bound suite instead.

Asserts identical statuses/objectives node for node, that the dual path
actually ran (``dual_entries > 0``), and, outside smoke mode, a >= 1.5x
node-throughput ratio; archives to ``bench_results/dual.txt``
(+ ``BENCH_dual.json`` with a ``throughput_ratio`` field).

Smoke mode (``DUAL_SMOKE=1``, used by CI) runs a reduced node stream
and only asserts correctness plus dual-path engagement — machine load
must not flake CI on an exact multiple.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ConsolidationModel, ModelOptions
from repro.datasets import load_enterprise1
from repro.lp.matrix_lp import RelaxationContext
from repro.lp.standard_form import to_matrix_form

SMOKE = os.environ.get("DUAL_SMOKE", "") not in ("", "0")


def _node_stream(form, n_nodes: int, seed: int = 42):
    """Seeded B&B-style bound tightenings: fix random binary subsets."""
    rng = np.random.default_rng(seed)
    binaries = np.nonzero(
        (form.integrality > 0) & (form.lb <= 0.0) & (form.ub >= 1.0)
    )[0]
    nodes = [(form.lb.copy(), form.ub.copy(), None)]  # (lb, ub, parent)
    for _ in range(n_nodes - 1):
        parent = int(rng.integers(0, len(nodes)))
        lb, ub, _ = nodes[parent]
        lb, ub = lb.copy(), ub.copy()
        j = int(rng.choice(binaries))
        if rng.random() < 0.5:
            ub[j] = 0.0  # fix to zero
        else:
            lb[j] = 1.0  # fix to one
        nodes.append((lb, ub, parent))
    return nodes


@pytest.fixture(scope="module")
def form():
    state = load_enterprise1(scale=0.05 if SMOKE else 0.08)
    problem = ConsolidationModel(state, ModelOptions()).problem
    return to_matrix_form(problem)


def _run(form, nodes, node_resolve: str, presolve: bool):
    ctx = RelaxationContext(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
        form.lb, form.ub, engine="builtin",
        node_resolve=node_resolve, presolve=presolve,
    )
    tokens: list = [None] * len(nodes)
    results = []
    t0 = time.perf_counter()
    for i, (lb, ub, parent) in enumerate(nodes):
        warm = tokens[parent] if parent is not None else None
        res = ctx.solve(lb, ub, warm=warm)
        tokens[i] = res.warm_token
        results.append(res)
    elapsed = time.perf_counter() - t0
    return ctx, results, elapsed


def test_bench_dual_node_throughput(form, archive, archive_json):
    n_nodes = 12 if SMOKE else 48
    nodes = _node_stream(form, n_nodes)

    primal_ctx, primal, primal_s = _run(form, nodes, "primal", presolve=False)
    dual_ctx, dual, dual_s = _run(form, nodes, "dual", presolve=True)

    # Identical answers node for node.
    for ref, res in zip(primal, dual):
        assert res.status == ref.status
        if ref.status == "optimal":
            assert res.objective == pytest.approx(ref.objective, rel=1e-7, abs=1e-7)

    # The candidate must actually take the new path, not silently fall
    # back to primal restarts for every node.
    assert dual_ctx.dual_entries > 0, "dual path never entered"

    ratio = primal_s / dual_s if dual_s > 0 else float("inf")
    lines = [
        "Dual-simplex node re-solve benchmark (enterprise1-scale LP)",
        f"  nodes solved                 {len(nodes)}",
        f"  matrix shape                 {form.a_ub.shape[0]}+{form.a_eq.shape[0]} rows x {form.c.shape[0]} vars",
        f"  primal restarts (PR-5 path)  {primal_s:.3f} s  "
        f"({len(nodes) / primal_s:.1f} nodes/s)",
        f"  dual re-solves  (PR-6 path)  {dual_s:.3f} s  "
        f"({len(nodes) / dual_s:.1f} nodes/s)",
        f"  throughput ratio             {ratio:.2f}x",
        f"  dual entries / fallbacks     {dual_ctx.dual_entries} / {dual_ctx.dual_fallbacks}",
        f"  dual pivots                  {dual_ctx.dual_pivots}",
        f"  presolve rows dropped        {dual_ctx.presolve_rows_dropped}",
        f"  presolve bounds tightened    {dual_ctx.presolve_bounds_tightened}",
        f"  smoke mode                   {SMOKE}",
    ]
    archive("dual", "\n".join(lines))
    archive_json("dual", {
        "nodes": len(nodes),
        "primal_seconds": round(primal_s, 6),
        "dual_seconds": round(dual_s, 6),
        "throughput_ratio": round(ratio, 4),
        "dual_entries": dual_ctx.dual_entries,
        "dual_fallbacks": dual_ctx.dual_fallbacks,
        "dual_pivots": dual_ctx.dual_pivots,
        "presolve_rows_dropped": dual_ctx.presolve_rows_dropped,
        "presolve_bounds_tightened": dual_ctx.presolve_bounds_tightened,
        "smoke": SMOKE,
    })

    if SMOKE:
        assert ratio > 0.0
    else:
        assert ratio >= 1.5, f"dual node throughput {ratio:.2f}x < 1.5x"
