"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these isolate what each modeling ingredient buys:

* economies of scale (Schoomer segment binaries) vs flat base pricing;
* shared single-failure backup pools vs dedicated per-group backups;
* metered vs dedicated-VPN WAN pricing;
* the exact solvers against each other (HiGHS vs our branch & bound)
  and against the relax-and-round heuristic.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ConsolidationModel,
    ETransformPlanner,
    ModelOptions,
    PlannerOptions,
    plan_consolidation,
)
from repro.datasets import load_enterprise1
from repro.lp import SolveStatus, solve

from .conftest import run_once

GAP = {"mip_rel_gap": 0.005, "time_limit": 120}


def test_bench_ablation_economies_of_scale(benchmark, archive):
    """Volume discounts modeled exactly vs ignored (base-tier pricing)."""
    state = load_enterprise1()

    def run():
        with_scale = plan_consolidation(state, backend="highs", **GAP)
        flat = plan_consolidation(
            state, backend="highs", economies_of_scale=False, **GAP
        )
        return with_scale, flat

    with_scale, flat = run_once(benchmark, run)
    # Both plans are re-priced by the same evaluator (true step costs),
    # so the exact model can only win: it optimizes the real bill while
    # the flat model optimizes a distorted one.  Tolerance covers the
    # MIP gap on both solves.
    tolerance = 0.012 * flat.total_cost
    assert with_scale.total_cost <= flat.total_cost + tolerance
    # And the flat model's own belief (base-tier pricing) overestimates
    # what its placement actually costs — the distortion being ablated.
    base_tier_estimate = sum(
        state.target(name).space_cost.unit_price(1) * usage.total_servers
        for name, usage in flat.usage.items()
    )
    assert base_tier_estimate > flat.breakdown.space
    archive(
        "ablation_economies_of_scale",
        f"plan optimized with exact volume discounts: ${with_scale.total_cost:,.0f}\n"
        f"plan optimized at flat base-tier prices:    ${flat.total_cost:,.0f}\n"
        f"flat model's believed space bill: ${base_tier_estimate:,.0f} "
        f"(actual: ${flat.breakdown.space:,.0f})",
    )


def test_bench_ablation_shared_vs_dedicated_pools(benchmark, archive):
    """The paper's shared single-failure pools vs per-group backups."""
    state = load_enterprise1(scale=0.2)

    def run():
        shared = plan_consolidation(
            state, enable_dr=True, backend="highs", mip_rel_gap=0.02, time_limit=90
        )
        planner = ETransformPlanner(
            state,
            PlannerOptions(
                enable_dr=True,
                dedicated_backups=True,
                backend="highs",
                solver_options={"mip_rel_gap": 0.02, "time_limit": 90},
            ),
        )
        dedicated = planner.plan()
        return shared, dedicated

    shared, dedicated = run_once(benchmark, run)
    assert shared.total_cost <= dedicated.total_cost + 1e-6
    assert sum(shared.backup_servers.values()) <= sum(dedicated.backup_servers.values())
    archive(
        "ablation_backup_sharing",
        f"shared pools:    {sum(shared.backup_servers.values())} servers, "
        f"${shared.total_cost:,.0f}\n"
        f"dedicated pools: {sum(dedicated.backup_servers.values())} servers, "
        f"${dedicated.total_cost:,.0f}",
    )


def test_bench_ablation_wan_models(benchmark, archive):
    """Metered per-megabit vs distance-priced dedicated VPN links."""
    state = load_enterprise1(scale=0.3)

    def run():
        metered = plan_consolidation(state, backend="highs", wan_model="metered", **GAP)
        vpn = plan_consolidation(state, backend="highs", wan_model="vpn", **GAP)
        return metered, vpn

    metered, vpn = run_once(benchmark, run)
    # Different regimes price different placements; both must be valid
    # and WAN must be a live component under each.
    assert metered.breakdown.wan > 0
    assert vpn.breakdown.wan > 0
    archive(
        "ablation_wan_models",
        f"metered WAN plan: ${metered.total_cost:,.0f} "
        f"(WAN ${metered.breakdown.wan:,.0f}) into {metered.datacenters_used}\n"
        f"VPN WAN plan:     ${vpn.total_cost:,.0f} "
        f"(WAN ${vpn.breakdown.wan:,.0f}) into {vpn.datacenters_used}",
    )


def test_bench_ablation_solver_backends(benchmark, archive):
    """Our exact branch & bound agrees with HiGHS; rounding is bounded."""
    state = load_enterprise1(scale=0.08)
    model = ConsolidationModel(state, ModelOptions())

    def run():
        highs = solve(model.problem, backend="highs")
        bb = solve(model.problem, backend="branch_bound", node_limit=50_000)
        rounding = solve(model.problem, backend="rounding")
        return highs, bb, rounding

    highs, bb, rounding = run_once(benchmark, run)
    assert highs.status is SolveStatus.OPTIMAL
    assert bb.status is SolveStatus.OPTIMAL
    assert highs.objective == pytest.approx(bb.objective, rel=1e-6)
    lines = [
        f"highs:        obj ${highs.objective:,.0f}",
        f"branch&bound: obj ${bb.objective:,.0f} ({bb.iterations} nodes)",
    ]
    if rounding.status is SolveStatus.FEASIBLE:
        assert rounding.objective >= highs.objective - 1e-6
        lines.append(f"rounding:     obj ${rounding.objective:,.0f} (heuristic)")
    else:
        lines.append("rounding:     no feasible rounding (expected on tight capacities)")
    archive("ablation_solver_backends", "\n".join(lines))
