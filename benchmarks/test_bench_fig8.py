"""Fig. 8: influence of the DR server cost ζ.

Sweeps ζ over the paper's decades (10⁰ … 10⁴) while jointly planning
consolidation + DR on the line scenario, and checks the two curves:

* data centers used grows (2 sites when backups are nearly free →
  most of the line when they are precious);
* total DR servers purchased falls severalfold (full mirror → one
  small shared pool sized to the worst single failure).
"""

from __future__ import annotations

from repro.experiments import run_dr_cost_sweep, tables
from repro.experiments.dr_cost_sweep import DEFAULT_DR_COSTS

from .conftest import run_once


def test_bench_fig8_dr_cost_sweep(benchmark, archive):
    def run():
        return run_dr_cost_sweep(
            dr_costs=DEFAULT_DR_COSTS,
            backend="highs",
            solver_options={"mip_rel_gap": 0.02, "time_limit": 60},
        )

    result = run_once(benchmark, run)

    dcs = result.datacenters_used()
    servers = result.dr_servers()

    # Cheap backups: concentrate into two sites and mirror in full.
    assert dcs[0] == 2
    assert servers[0] == 450  # the whole estate, mirrored

    # Expensive backups: spread out, pool shrinks severalfold.
    assert dcs[-1] >= 6
    assert servers[-1] * 2 < servers[0]

    # Monotone trends across the sweep (gap/time-limit noise tolerated
    # up to one step back).
    assert dcs[-1] > dcs[0]
    assert servers[-1] < servers[0]

    text = tables.render_dr_sweep(result)
    archive("fig8_dr_cost_sweep", text)
    print()
    print(text)
