"""Online re-planning: warm incremental loop vs full re-plan per event.

Replays two online traces through the controller, each twice — once with
warm incremental re-solves (RevisionedModel deltas + SolveCache on the
repo's own branch-and-bound stack) and once rebuilding the model from
scratch at every re-plan, the paper's one-shot path in a loop:

* ``diurnal`` — the steady-state regime: daily load cycling re-triggers
  structurally repeated re-plans, exactly what the fingerprint cache and
  tightening shortcuts were built for.  This is the headline
  ``throughput_ratio``.
* ``mixed`` — the stress regime: a flash crowd and a site outage force
  structurally *new* models (fresh cap rows, retired sites).  The warm
  path must survive the churn on its merits: row-append context
  extension, repaired-and-polished incumbent seeds, iterated root
  reduced-cost fixing and pseudo-cost branching tables persisted
  across re-solves, with its own ratio floor.  It doubles as the
  correctness arm — both modes must emit identical delta sequences
  under maximum churn.

Both arms of each profile must produce the *identical* migration-delta
sequence.  Results land in ``bench_results/online.txt`` and
``BENCH_online.json``.

Smoke mode (``ONLINE_SMOKE=1``, used by CI) shrinks the estate and the
horizon and skips the timing assertion — at toy scale the warm path has
nothing to amortize and machine load must not fail CI.
"""

from __future__ import annotations

import os
import time

from repro.core.planner import PlannerOptions
from repro.datasets import online_line_scenario, online_line_trace
from repro.online import ReplayConfig, run_replay

SMOKE = os.environ.get("ONLINE_SMOKE", "") not in ("", "0")
HORIZON_HOURS = 96.0 if SMOKE else 24.0 * 14
PROFILES = ("diurnal", "mixed")
RATIO_FLOOR = 1.5  # headline (diurnal) ratio; measured ~3.9x
MIXED_RATIO_FLOOR = 1.2  # stress (mixed) ratio; measured ~1.5x


def _scenario():
    if SMOKE:
        return online_line_scenario(
            n_groups=16, total_servers=400, n_datacenters=5,
            capacity=220, seed=11,
        )
    return online_line_scenario()


def _signature(result):
    return [
        (
            d.time_hours,
            d.reason,
            round(d.cost_before, 6),
            round(d.cost_after, 6),
            [(m.group, m.from_site, m.to_site) for m in d.moves],
        )
        for d in result.deltas
    ]


def test_bench_online_replay(archive, archive_json):
    state = _scenario()
    opts = PlannerOptions(backend="branch_bound")
    n_groups = len(state.app_groups)

    lines = [
        "Online re-planning benchmark (incremental vs full re-plan)",
        f"  state                        {n_groups} groups x "
        f"{len(state.target_datacenters)} sites, "
        f"{HORIZON_HOURS / 24:g} day horizon",
    ]
    record: dict = {"horizon_hours": HORIZON_HOURS, "profiles": {}, "smoke": SMOKE}

    for profile in PROFILES:
        # Trace seed chosen so both profiles actually exercise the replay:
        # the diurnal trace must re-trigger enough structurally-repeated
        # replans to amortize the warm path (some seeds settle after a
        # handful), and the mixed trace must keep its outage + flash
        # crowd.  Seed 3 gives 15 diurnal / 20 mixed replans.
        load_events, outages = online_line_trace(
            state, profile=profile, horizon_hours=HORIZON_HOURS, seed=3
        )
        results = {}
        for incremental in (True, False):
            config = ReplayConfig(
                horizon_hours=HORIZON_HOURS, incremental=incremental
            )
            results[incremental] = run_replay(
                state, load_events, outages, config, opts
            )
        inc, full = results[True], results[False]

        # Both arms walk the same trace to the same delta sequence — the
        # warm path may only be *faster*, never different.
        assert _signature(inc) == _signature(full), f"{profile}: arms diverged"
        assert inc.deltas, f"{profile}: the trace must force migrations"
        # Deltas are diffs, not plans: nothing relocates the whole estate.
        assert all(0 < len(d.moves) < n_groups for d in inc.deltas)

        ratio = (
            full.replan_solve_seconds / inc.replan_solve_seconds
            if inc.replan_solve_seconds > 0
            else float("inf")
        )
        replans = int(inc.counters.get("online.replans_triggered", 0))
        oscillations = len(inc.oscillations())
        if profile == "diurnal":
            # The steady-state regime must also be thrash-free.
            assert oscillations == 0
        if profile == "mixed":
            # Structurally-new replans must actually ride the warm path:
            # appended cap rows extend the context in place, and at least
            # one rejected incumbent comes back as a repaired seed.
            assert inc.counters.get("incremental.context_extended", 0) > 0
            assert inc.counters.get("incremental.hint_repaired", 0) >= 1
            assert inc.counters.get("incremental.warm_start_seeded", 0) >= 1

        lines += [
            f"  profile: {profile}",
            f"    trace                      {len(load_events)} load events, "
            f"{len(outages)} outages",
            f"    replans / deltas / moves   {replans} / {len(inc.deltas)} / "
            f"{inc.total_moves}",
            f"    oscillating moves          {oscillations}",
            f"    replan solve time          inc {inc.replan_solve_seconds:.3f} s"
            f"   full {full.replan_solve_seconds:.3f} s",
            f"    throughput ratio           {ratio:.2f}x",
        ]
        record["profiles"][profile] = {
            "load_events": len(load_events),
            "outages": len(outages),
            "replans": replans,
            "deltas_emitted": len(inc.deltas),
            "moves_emitted": inc.total_moves,
            "oscillating_moves": oscillations,
            "incremental_solve_seconds": round(inc.replan_solve_seconds, 6),
            "full_solve_seconds": round(full.replan_solve_seconds, 6),
            "throughput_ratio": round(ratio, 4),
            "counters": dict(inc.counters),
        }

    headline = record["profiles"]["diurnal"]["throughput_ratio"]
    record["throughput_ratio"] = headline
    lines += [
        f"  headline throughput ratio    {headline:.2f}x (diurnal steady state)",
        f"  smoke mode                   {SMOKE}",
    ]
    archive("online", "\n".join(lines))
    archive_json("online", record)
    print("\n".join(lines))

    if not SMOKE:
        assert headline >= RATIO_FLOOR, (
            f"incremental replan throughput {headline:.2f}x below the "
            f"{RATIO_FLOOR}x floor on the diurnal steady-state trace"
        )
        mixed_ratio = record["profiles"]["mixed"]["throughput_ratio"]
        assert mixed_ratio >= MIXED_RATIO_FLOOR, (
            f"incremental replan throughput {mixed_ratio:.2f}x below the "
            f"{MIXED_RATIO_FLOOR}x floor on the mixed churn trace"
        )
