"""Extension benchmarks (beyond the paper's figures).

* Resilience: the DR designs' availability under replayed disasters.
* Site count: the diminishing-returns curve behind "consolidate 2100
  sites into less than 1000"-style targets.
"""

from __future__ import annotations

from repro.datasets import load_enterprise1
from repro.experiments import run_resilience, run_site_count

from .conftest import run_once

SOLVER = {"mip_rel_gap": 0.02, "time_limit": 90}


def test_bench_resilience(benchmark, archive):
    state = load_enterprise1(scale=0.15)

    def run():
        return run_resilience(
            state, horizon_months=240, backend="highs", solver_options=SOLVER
        )

    result = run_once(benchmark, run)
    no_dr = result.row("no-dr")
    shared = result.row("shared-pools")
    dedicated = result.row("dedicated")

    # DR buys orders of magnitude less downtime for a bounded premium.
    assert shared.availability > no_dr.availability
    assert shared.downtime_hours < no_dr.downtime_hours / 5
    assert shared.monthly_cost <= dedicated.monthly_cost + 1e-6
    # Dedicated pools can never shortfall; shared ones may (rarely).
    assert dedicated.shortfalls == 0

    text = result.render()
    archive("ext_resilience", text)
    print()
    print(text)


def test_bench_site_count(benchmark, archive):
    state = load_enterprise1(scale=0.4)

    def run():
        return run_site_count(state, backend="highs", solver_options=SOLVER)

    result = run_once(benchmark, run)
    feasible = result.feasible_points()
    assert feasible, "no feasible prefix at all"
    costs = [p.total_cost for p in feasible]
    # More candidate sites never hurt (monotone up to MIP gap), and the
    # full menu is materially cheaper than the smallest feasible one.
    assert costs[-1] <= costs[0] * 1.02
    assert costs[-1] < costs[0]

    text = result.render()
    archive("ext_site_count", text)
    print()
    print(text)
