"""Planning-service throughput vs sequential one-shot CLI runs.

The same mixed workload — several distinct plan requests, each
submitted twice, the way a dashboard or a fleet of admins actually
drives a planner — is executed two ways:

* **sequential baseline**: one ``python -m repro.cli plan`` subprocess
  per request.  Every run pays the full interpreter + numpy/scipy cold
  start and re-solves duplicates from scratch; this is what operating
  the planner as a one-shot tool costs.
* **service**: one :class:`~repro.service.JobManager` with a pool of 4
  forked workers.  Workers inherit the warm solver stack (no cold
  start) and the fingerprint-keyed result cache serves every duplicate
  without touching a worker.

Two figures are reported, deliberately kept apart so cache dedup is
never conflated with pool throughput:

* **cache-cold pool throughput** — the first wave, where every request
  misses the result cache and actually occupies a worker, against the
  sequential per-job rate.  On a multi-core box this shows pool
  parallelism; on a single-core runner it is only the amortized
  interpreter + numpy start-up, so the CPU count is archived with it.
* **aggregate workload throughput** — all waves, where the fingerprint
  cache serves every repeat.  This is the figure the PR's >= 3x
  acceptance floor applies to: repeat traffic is the workload the
  service exists for, and serving it without a solve is the design.

Smoke mode (``SERVICE_SMOKE=1``, used by CI) shrinks the workload and
skips the speedup assertion — machine load must not fail CI.
Archives ``bench_results/service.txt`` + ``BENCH_service.json``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.datasets import load_enterprise1
from repro.io import save_state, state_to_dict
from repro.service import JobManager, JobState, ServiceConfig

SMOKE = os.environ.get("SERVICE_SMOKE", "") not in ("", "0")
SCALES = (0.10, 0.15) if SMOKE else (0.10, 0.15, 0.20, 0.25)
REPEATS = 3  # each unique request submitted this many times
WORKERS = 4
SPEEDUP_FLOOR = 3.0

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _sequential_cli(state_files: list[str]) -> float:
    """Run one cold ``repro.cli plan`` subprocess per request."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    start = time.perf_counter()
    for path in state_files:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "plan", path, "--backend", "highs"],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
    return time.perf_counter() - start


def _service(waves: list[list[dict]]) -> tuple[list[float], dict]:
    """Run each wave of requests against a warm 4-worker service.

    Waves model repeat traffic: the second wave re-requests what the
    first already asked for, the way operators and dashboards do, so
    the fingerprint cache gets to serve it without a solve.  Each wave
    is timed separately — wave 1 is all cache misses, so its wall time
    is the pool's cache-cold throughput.
    """
    config = ServiceConfig(workers=WORKERS, job_timeout=300.0, poll_interval=0.01)
    wave_walls: list[float] = []
    with JobManager(config) as manager:
        for wave in waves:
            start = time.perf_counter()
            records = [manager.submit("plan", payload) for payload in wave]
            for record in records:
                done = manager.wait(record.id, timeout=300.0)
                assert done.state is JobState.SUCCEEDED, done.error
            wave_walls.append(time.perf_counter() - start)
        stats = manager.stats()
    return wave_walls, stats


def test_bench_service_throughput(archive, archive_json, tmp_path):
    states = [load_enterprise1(scale=scale) for scale in SCALES]
    state_files = []
    for scale, state in zip(SCALES, states):
        path = str(tmp_path / f"state_{scale}.json")
        save_state(state, path)
        state_files.append(path)

    # The workload: every unique request arrives REPEATS times, in
    # waves (the second wave re-requests the first wave's plans).
    cli_jobs = state_files * REPEATS
    wave = [
        {"state": state_to_dict(state), "options": {"backend": "highs"}}
        for state in states
    ]
    waves = [wave] * REPEATS

    seq_wall = _sequential_cli(cli_jobs)
    wave_walls, stats = _service(waves)
    svc_wall = sum(wave_walls)
    cold_wall = wave_walls[0]  # wave 1: every request misses the cache

    jobs = len(cli_jobs)
    unique = len(SCALES)
    seq_jps = jobs / seq_wall
    cold_jps = unique / cold_wall if cold_wall > 0 else float("inf")
    svc_jps = jobs / svc_wall if svc_wall > 0 else float("inf")
    cold_speedup = cold_jps / seq_jps
    overall_speedup = svc_jps / seq_jps
    cpus = os.cpu_count() or 1
    lines = [
        "Planning-service throughput benchmark",
        f"workload: {unique} unique plan requests x {REPEATS} "
        f"submissions = {jobs} jobs (backend=highs, {cpus} cpu)",
        "",
        f"{'mode':<38} {'jobs':>5} {'wall':>9} {'jobs/s':>8}",
        f"{'sequential one-shot CLI':<38} {jobs:>5} "
        f"{seq_wall:>8.2f}s {seq_jps:>8.2f}",
        f"{'service pool=' + str(WORKERS) + ', cache-cold (wave 1)':<38} "
        f"{unique:>5} {cold_wall:>8.2f}s {cold_jps:>8.2f}",
        f"{'service pool=' + str(WORKERS) + ', all waves (warm+cache)':<38} "
        f"{jobs:>5} {svc_wall:>8.2f}s {svc_jps:>8.2f}",
        "",
        f"cache-cold pool throughput: {cold_speedup:.1f}x vs one-shot CLI"
        + (
            " (single-core runner: start-up amortization only, no parallel win)"
            if cpus == 1
            else f" (pool parallelism across {cpus} cpus + start-up amortization)"
        ),
        f"aggregate workload throughput: {overall_speedup:.1f}x "
        f"({stats['cache']['hits']} of {jobs} jobs served from the result "
        f"cache, {stats['cache']['misses']} solved; acceptance floor "
        f">= {SPEEDUP_FLOOR:.0f}x applies to this figure)",
    ]
    archive("service", "\n".join(lines))
    archive_json(
        "service",
        {
            "workload_jobs": jobs,
            "unique_requests": unique,
            "pool_size": WORKERS,
            "sequential_wall_seconds": round(seq_wall, 3),
            "service_cold_wall_seconds": round(cold_wall, 3),
            "service_wall_seconds": round(svc_wall, 3),
            "sequential_jobs_per_second": round(seq_jps, 4),
            "service_cold_jobs_per_second": round(cold_jps, 4),
            "service_jobs_per_second": round(svc_jps, 4),
            "speedup_cache_cold": round(cold_speedup, 3),
            "speedup_overall": round(overall_speedup, 3),
            "cpu_count": cpus,
            "cache": stats["cache"],
            "smoke": SMOKE,
        },
    )
    print("\n".join(lines))

    # Correct dedup: every duplicate was a fingerprint-cache hit.
    expected_hits = jobs - unique
    assert stats["cache"]["hits"] == expected_hits
    if not SMOKE:
        assert overall_speedup >= SPEEDUP_FLOOR, (
            f"aggregate service speedup {overall_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor (sequential {seq_wall:.2f}s vs "
            f"service {svc_wall:.2f}s)"
        )
        # The cold figure has no parallelism to win on a 1-cpu runner;
        # elsewhere the pool itself must clear the floor too.
        if cpus >= WORKERS:
            assert cold_speedup >= SPEEDUP_FLOOR, (
                f"cache-cold service speedup {cold_speedup:.2f}x below the "
                f"{SPEEDUP_FLOOR}x floor on a {cpus}-cpu runner"
            )
