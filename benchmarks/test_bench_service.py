"""Planning-service throughput vs sequential one-shot CLI runs.

The same mixed workload — several distinct plan requests, each
submitted twice, the way a dashboard or a fleet of admins actually
drives a planner — is executed two ways:

* **sequential baseline**: one ``python -m repro.cli plan`` subprocess
  per request.  Every run pays the full interpreter + numpy/scipy cold
  start and re-solves duplicates from scratch; this is what operating
  the planner as a one-shot tool costs.
* **service**: one :class:`~repro.service.JobManager` with a pool of 4
  forked workers.  Workers inherit the warm solver stack (no cold
  start) and the fingerprint-keyed result cache serves every duplicate
  without touching a worker.

The figure of merit is wall-clock speedup; the PR's acceptance floor is
>= 3x at pool size 4.  On a single-core runner the win comes from
amortized process start-up and cache dedup rather than parallelism —
which is exactly the service's value on any machine.

Smoke mode (``SERVICE_SMOKE=1``, used by CI) shrinks the workload and
skips the speedup assertion — machine load must not fail CI.
Archives ``bench_results/service.txt`` + ``BENCH_service.json``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

from repro.datasets import load_enterprise1
from repro.io import save_state, state_to_dict
from repro.service import JobManager, JobState, ServiceConfig

SMOKE = os.environ.get("SERVICE_SMOKE", "") not in ("", "0")
SCALES = (0.10, 0.15) if SMOKE else (0.10, 0.15, 0.20, 0.25)
REPEATS = 3  # each unique request submitted this many times
WORKERS = 4
SPEEDUP_FLOOR = 3.0

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _sequential_cli(state_files: list[str]) -> float:
    """Run one cold ``repro.cli plan`` subprocess per request."""
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    start = time.perf_counter()
    for path in state_files:
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "plan", path, "--backend", "highs"],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
    return time.perf_counter() - start


def _service(waves: list[list[dict]]) -> tuple[float, dict]:
    """Run each wave of requests against a warm 4-worker service.

    Waves model repeat traffic: the second wave re-requests what the
    first already asked for, the way operators and dashboards do, so
    the fingerprint cache gets to serve it without a solve.
    """
    config = ServiceConfig(workers=WORKERS, job_timeout=300.0, poll_interval=0.01)
    with JobManager(config) as manager:
        start = time.perf_counter()
        for wave in waves:
            records = [manager.submit("plan", payload) for payload in wave]
            for record in records:
                done = manager.wait(record.id, timeout=300.0)
                assert done.state is JobState.SUCCEEDED, done.error
        wall = time.perf_counter() - start
        stats = manager.stats()
    return wall, stats


def test_bench_service_throughput(archive, archive_json, tmp_path):
    states = [load_enterprise1(scale=scale) for scale in SCALES]
    state_files = []
    for scale, state in zip(SCALES, states):
        path = str(tmp_path / f"state_{scale}.json")
        save_state(state, path)
        state_files.append(path)

    # The workload: every unique request arrives REPEATS times, in
    # waves (the second wave re-requests the first wave's plans).
    cli_jobs = state_files * REPEATS
    wave = [
        {"state": state_to_dict(state), "options": {"backend": "highs"}}
        for state in states
    ]
    waves = [wave] * REPEATS

    seq_wall = _sequential_cli(cli_jobs)
    svc_wall, stats = _service(waves)

    speedup = seq_wall / svc_wall if svc_wall > 0 else float("inf")
    jobs = len(cli_jobs)
    lines = [
        "Planning-service throughput benchmark",
        f"workload: {len(SCALES)} unique plan requests x {REPEATS} "
        f"submissions = {jobs} jobs (backend=highs)",
        "",
        f"{'mode':<34} {'wall':>9} {'jobs/s':>8}",
        f"{'sequential one-shot CLI':<34} {seq_wall:>8.2f}s {jobs / seq_wall:>8.2f}",
        f"{'service (pool=' + str(WORKERS) + ', warm+cache)':<34} "
        f"{svc_wall:>8.2f}s {jobs / svc_wall:>8.2f}",
        "",
        f"speedup: {speedup:.1f}x "
        f"(cache: {stats['cache']['hits']} hits / "
        f"{stats['cache']['misses']} misses)",
    ]
    archive("service", "\n".join(lines))
    archive_json(
        "service",
        {
            "workload_jobs": jobs,
            "unique_requests": len(SCALES),
            "pool_size": WORKERS,
            "sequential_wall_seconds": round(seq_wall, 3),
            "service_wall_seconds": round(svc_wall, 3),
            "sequential_jobs_per_second": round(jobs / seq_wall, 4),
            "service_jobs_per_second": round(jobs / svc_wall, 4),
            "speedup": round(speedup, 3),
            "cache": stats["cache"],
            "smoke": SMOKE,
        },
    )
    print("\n".join(lines))

    # Correct dedup: every duplicate was a fingerprint-cache hit.
    expected_hits = jobs - len(SCALES)
    assert stats["cache"]["hits"] == expected_hits
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"service speedup {speedup:.2f}x below the {SPEEDUP_FLOOR}x floor "
            f"(sequential {seq_wall:.2f}s vs service {svc_wall:.2f}s)"
        )
