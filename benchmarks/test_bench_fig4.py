"""Fig. 4 (a–e): non-DR consolidation comparison on the case studies.

Each benchmark runs the full four-way comparison (as-is, manual, greedy,
eTransform) on one dataset and checks the paper's qualitative claims:

* eTransform achieves the deepest cost reduction and (near-)zero
  latency violations;
* the manual heuristic's savings are eaten by latency penalties;
* violations order manual ≥ greedy ≥ eTransform.

enterprise1 and florida run at full Table II scale.  federal runs at
0.2 scale (380 groups × 20 sites) so the benchmark stays in CI budget —
see EXPERIMENTS.md for a full-scale federal measurement.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_enterprise1, load_federal, load_florida
from repro.experiments import run_comparison, tables
from repro.experiments.comparison import CaseStudySuite

from .conftest import run_once

SOLVER_OPTIONS = {"mip_rel_gap": 0.005, "time_limit": 180}

_CASES = {
    "enterprise1": lambda: load_enterprise1(),
    "florida": lambda: load_florida(),
    "federal": lambda: load_federal(scale=0.2),
}

_SUITE = CaseStudySuite(enable_dr=False)


def _assert_fig4_shape(result):
    tol = 1e-6
    assert result.etransform.total_cost <= result.greedy.total_cost + tol
    assert result.etransform.total_cost <= result.manual.total_cost + tol
    assert result.reduction("etransform") < -0.30
    assert result.violations("etransform") <= 2
    assert result.violations("manual") >= result.violations("greedy")
    assert result.violations("greedy") >= result.violations("etransform")
    assert result.manual.latency_penalty > 0


@pytest.mark.parametrize("dataset", list(_CASES))
def test_bench_fig4_comparison(benchmark, archive, dataset):
    state = _CASES[dataset]()

    def run():
        return run_comparison(
            state, backend="highs", solver_options=SOLVER_OPTIONS
        )

    result = run_once(benchmark, run)
    _assert_fig4_shape(result)
    archive(f"fig4_{dataset}", tables.render_comparison(result))
    _SUITE.results.append(result)


def test_bench_fig4_summary_tables(benchmark, archive):
    """Fig. 4(d)/(e): rendered after all three panels have run."""
    assert len(_SUITE.results) == 3, "run the full benchmark module"
    reduction = benchmark(tables.render_reduction_table, _SUITE)
    violations = tables.render_violation_table(_SUITE)
    archive("fig4d_reductions", reduction)
    archive("fig4e_violations", violations)
    print()
    print(reduction)
    print(violations)
