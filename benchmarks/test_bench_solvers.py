"""Optimization-engine benchmarks: the substrate itself.

Timings of the from-scratch components against the HiGHS reference on
consolidation-shaped instances, plus the effect of presolve and cover
cuts.  These are throughput benchmarks (pytest-benchmark runs them
repeatedly), unlike the run-once experiment benches.
"""

from __future__ import annotations

import pytest

from repro.core import ConsolidationModel, ModelOptions
from repro.datasets import load_enterprise1
from repro.lp import SolveStatus, solve, solve_with_presolve
from repro.lp.standard_form import to_matrix_form


@pytest.fixture(scope="module")
def small_model():
    state = load_enterprise1(scale=0.08)
    return ConsolidationModel(state, ModelOptions()).problem


@pytest.fixture(scope="module")
def medium_model():
    state = load_enterprise1(scale=0.3)
    return ConsolidationModel(state, ModelOptions()).problem


def test_bench_model_build(benchmark):
    state = load_enterprise1(scale=0.3)
    problem = benchmark(
        lambda: ConsolidationModel(state, ModelOptions()).problem
    )
    assert problem.num_variables > 100


def test_bench_matrix_conversion(benchmark, medium_model):
    form = benchmark(to_matrix_form, medium_model)
    assert form.c.shape[0] == medium_model.num_variables


def test_bench_highs_small(benchmark, small_model):
    sol = benchmark(lambda: solve(small_model, backend="highs"))
    assert sol.status is SolveStatus.OPTIMAL


def test_bench_branch_bound_small(benchmark, small_model):
    sol = benchmark(
        lambda: solve(small_model, backend="branch_bound", node_limit=50_000)
    )
    assert sol.status is SolveStatus.OPTIMAL


def test_bench_branch_bound_with_cuts_small(benchmark, small_model):
    sol = benchmark(
        lambda: solve(
            small_model, backend="branch_bound",
            node_limit=50_000, cover_cut_rounds=3,
        )
    )
    assert sol.status is SolveStatus.OPTIMAL


def test_bench_presolve_plus_highs_medium(benchmark, medium_model):
    sol = benchmark(lambda: solve_with_presolve(medium_model, backend="highs"))
    assert sol.status is SolveStatus.OPTIMAL


def test_bench_highs_medium(benchmark, medium_model):
    sol = benchmark(lambda: solve(medium_model, backend="highs"))
    assert sol.status is SolveStatus.OPTIMAL


def test_bench_exactness_cross_check(benchmark, small_model):
    """The three exact paths agree on the same instance."""
    highs = benchmark.pedantic(
        lambda: solve(small_model, backend="highs"), rounds=1, iterations=1
    )
    bb = solve(small_model, backend="branch_bound")
    pre = solve_with_presolve(small_model, backend="highs")
    assert highs.objective == pytest.approx(bb.objective, rel=1e-6)
    assert highs.objective == pytest.approx(pre.objective, rel=1e-6)
