"""Fig. 7 (a, b, c): influence of the latency penalty.

Sweeps the per-band penalty over the paper's five user splits on the
10-site line and checks each panel's claim:

(a) total cost rises with the penalty unless users are fully
    concentrated at the cheap end;
(b) space cost rises with the penalty when users sit at the costly end
    (placements migrate toward location 9);
(c) user-weighted mean latency falls as the penalty grows.
"""

from __future__ import annotations

from repro.experiments import run_latency_sweep, tables

from .conftest import run_once

PENALTIES = (0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0)
SPLITS = (1.0, 0.75, 0.5, 0.25, 0.0)


def test_bench_fig7_latency_sweep(benchmark, archive):
    def run():
        return run_latency_sweep(
            penalties=PENALTIES,
            user_splits=SPLITS,
            backend="highs",
            solver_options={"mip_rel_gap": 0.003, "time_limit": 30},
        )

    result = run_once(benchmark, run)

    # (a) cost monotone-ish up for non-concentrated splits, flat at 1.0.
    west_all = result.by_split(1.0).ys("total_cost")
    assert west_all[-1] <= west_all[0] * 1.02
    for split in (0.5, 0.0):
        costs = result.by_split(split).ys("total_cost")
        assert costs[-1] > costs[0]

    # (b) space cost rises with penalty when users are at location 9.
    space = result.by_split(0.0).ys("space_cost")
    assert space[-1] > space[0]

    # (c) mean latency non-increasing overall for the movable split, and
    # strictly better at the top of the sweep.
    lats = result.by_split(0.0).ys("mean_latency_ms")
    assert lats[-1] < lats[0]
    assert min(lats) == lats[-1] or lats[-1] <= min(lats) * 1.05

    # Concentrated-west users never pay and never move.
    west_lats = result.by_split(1.0).ys("mean_latency_ms")
    assert max(west_lats) - min(west_lats) < 1e-6

    for key, name in (
        ("total_cost", "fig7a_total_cost"),
        ("space_cost", "fig7b_space_cost"),
        ("mean_latency_ms", "fig7c_mean_latency"),
    ):
        text = tables.render_latency_sweep(result, key)
        archive(name, text)
        print()
        print(text)
