"""Revised-simplex node throughput: sparse implicit-bound core vs tableau.

Replays the same seeded stream of branch-and-bound-style bound
tightenings as the node-cache benchmark on an enterprise1-scale
consolidation LP, solving every node through two cached
:class:`RelaxationContext` instances with parent warm tokens: the
sparse bounded-variable revised simplex (``engine="builtin"``) and the
PR-2 dense tableau path (``engine="tableau"``).  Asserts identical
statuses/objectives node for node and, outside smoke mode, a >= 5x
node-throughput ratio; archives the comparison to
``bench_results/revised.txt`` (+ ``BENCH_revised.json`` extras).

Smoke mode (``REVISED_SMOKE=1``, used by CI) runs a reduced node stream
and only asserts that the revised engine beats the tableau engine at
all — machine load must not flake CI on an exact multiple.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ConsolidationModel, ModelOptions
from repro.datasets import load_enterprise1
from repro.lp.matrix_lp import RelaxationContext
from repro.lp.standard_form import to_matrix_form

SMOKE = os.environ.get("REVISED_SMOKE", "") not in ("", "0")


def _node_stream(form, n_nodes: int, seed: int = 42):
    """Seeded B&B-style bound tightenings: fix random binary subsets."""
    rng = np.random.default_rng(seed)
    binaries = np.nonzero(
        (form.integrality > 0) & (form.lb <= 0.0) & (form.ub >= 1.0)
    )[0]
    nodes = [(form.lb.copy(), form.ub.copy(), None)]  # (lb, ub, parent)
    for _ in range(n_nodes - 1):
        parent = int(rng.integers(0, len(nodes)))
        lb, ub, _ = nodes[parent]
        lb, ub = lb.copy(), ub.copy()
        j = int(rng.choice(binaries))
        if rng.random() < 0.5:
            ub[j] = 0.0  # fix to zero
        else:
            lb[j] = 1.0  # fix to one
        nodes.append((lb, ub, parent))
    return nodes


@pytest.fixture(scope="module")
def form():
    state = load_enterprise1(scale=0.05 if SMOKE else 0.08)
    problem = ConsolidationModel(state, ModelOptions()).problem
    return to_matrix_form(problem)


def _run_engine(form, nodes, engine: str):
    ctx = RelaxationContext(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq,
        form.lb, form.ub, engine=engine,
    )
    tokens: list = [None] * len(nodes)
    results = []
    t0 = time.perf_counter()
    for i, (lb, ub, parent) in enumerate(nodes):
        warm = tokens[parent] if parent is not None else None
        res = ctx.solve(lb, ub, warm=warm)
        tokens[i] = res.warm_token
        results.append(res)
    elapsed = time.perf_counter() - t0
    return ctx, results, elapsed


def test_bench_revised_node_throughput(form, archive, archive_json):
    n_nodes = 12 if SMOKE else 48
    nodes = _node_stream(form, n_nodes)

    tab_ctx, tableau, tableau_s = _run_engine(form, nodes, "tableau")
    rev_ctx, revised, revised_s = _run_engine(form, nodes, "builtin")

    # Identical answers node for node.
    for ref, res in zip(tableau, revised):
        assert res.status == ref.status
        if ref.status == "optimal":
            assert res.objective == pytest.approx(ref.objective, rel=1e-7, abs=1e-7)

    ratio = tableau_s / revised_s if revised_s > 0 else float("inf")
    lines = [
        "Revised-simplex node throughput benchmark (enterprise1-scale LP)",
        f"  nodes solved                 {len(nodes)}",
        f"  matrix shape                 {form.a_ub.shape[0]}+{form.a_eq.shape[0]} rows x {form.c.shape[0]} vars",
        f"  tableau engine (dense rows)  {tableau_s:.3f} s  "
        f"({len(nodes) / tableau_s:.1f} nodes/s)",
        f"  revised engine (sparse)      {revised_s:.3f} s  "
        f"({len(nodes) / revised_s:.1f} nodes/s)",
        f"  speedup                      {ratio:.2f}x",
        f"  revised warm starts (h / m)  {rev_ctx.warm_start_hits} / {rev_ctx.warm_start_misses}",
        f"  revised refactorizations     {rev_ctx.refactorizations}",
        f"  eta file length at refactor  {rev_ctx.eta_file_length}",
        f"  pricing passes               {rev_ctx.pricing_passes}",
        f"  bound-flip pivots            {rev_ctx.bound_flips}",
        f"  smoke mode                   {SMOKE}",
    ]
    archive("revised", "\n".join(lines))
    archive_json("revised", {
        "nodes": len(nodes),
        "tableau_seconds": round(tableau_s, 6),
        "revised_seconds": round(revised_s, 6),
        "speedup": round(ratio, 4),
        "revised_refactorizations": rev_ctx.refactorizations,
        "revised_eta_file_length": rev_ctx.eta_file_length,
        "revised_pricing_passes": rev_ctx.pricing_passes,
        "revised_bound_flips": rev_ctx.bound_flips,
        "smoke": SMOKE,
    })

    if SMOKE:
        assert ratio > 1.0, f"revised engine slower than tableau ({ratio:.2f}x)"
    else:
        assert ratio >= 5.0, f"revised node throughput {ratio:.2f}x < 5x"
