"""Node-relaxation cache throughput: cached context vs per-node rebuild.

Replays a seeded stream of branch-and-bound-style bound tightenings on
an enterprise1-scale consolidation LP and solves every node twice: once
through the pre-PR path (full Python-loop standardization per node,
``solve_lp_arrays_reference``) and once through the shared
:class:`RelaxationContext` with parent warm tokens.  Asserts identical
statuses/objectives and, outside smoke mode, a >= 3x node-throughput
ratio; archives both timings to ``bench_results/nodecache.txt``.

Smoke mode (``NODECACHE_SMOKE=1``, used by CI) runs a reduced node
stream and skips the timing assertion — machine load must not fail CI.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import ConsolidationModel, ModelOptions
from repro.datasets import load_enterprise1
from repro.lp.matrix_lp import RelaxationContext, solve_lp_arrays_reference
from repro.lp.standard_form import to_matrix_form

SMOKE = os.environ.get("NODECACHE_SMOKE", "") not in ("", "0")


def _node_stream(form, n_nodes: int, seed: int = 42):
    """Seeded B&B-style bound tightenings: fix random binary subsets.

    Children chain off their parent (depth grows along the stream), so
    warm tokens follow the same parent→child hand-off branch-and-bound
    uses.
    """
    rng = np.random.default_rng(seed)
    binaries = np.nonzero(
        (form.integrality > 0) & (form.lb <= 0.0) & (form.ub >= 1.0)
    )[0]
    nodes = [(form.lb.copy(), form.ub.copy(), None)]  # (lb, ub, parent)
    for i in range(n_nodes - 1):
        parent = int(rng.integers(0, len(nodes)))
        lb, ub, _ = nodes[parent]
        lb, ub = lb.copy(), ub.copy()
        j = int(rng.choice(binaries))
        if rng.random() < 0.5:
            ub[j] = 0.0  # fix to zero
        else:
            lb[j] = 1.0  # fix to one
        nodes.append((lb, ub, parent))
    return nodes


@pytest.fixture(scope="module")
def form():
    state = load_enterprise1(scale=0.05 if SMOKE else 0.08)
    problem = ConsolidationModel(state, ModelOptions()).problem
    return to_matrix_form(problem)


def test_bench_nodecache_throughput(form, archive):
    n_nodes = 12 if SMOKE else 48
    nodes = _node_stream(form, n_nodes)

    # --- baseline: restandardize from scratch at every node ------------
    t0 = time.perf_counter()
    baseline = [
        solve_lp_arrays_reference(
            form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq, lb, ub
        )
        for lb, ub, _ in nodes
    ]
    baseline_s = time.perf_counter() - t0

    # --- cached context + parent warm tokens ----------------------------
    ctx = RelaxationContext(
        form.c, form.a_ub, form.b_ub, form.a_eq, form.b_eq, form.lb, form.ub
    )
    tokens: list = [None] * len(nodes)
    t0 = time.perf_counter()
    cached = []
    for i, (lb, ub, parent) in enumerate(nodes):
        warm = tokens[parent] if parent is not None else None
        res = ctx.solve(lb, ub, warm=warm)
        tokens[i] = res.warm_token
        cached.append(res)
    cached_s = time.perf_counter() - t0

    # Identical answers node for node.
    for ref, res in zip(baseline, cached):
        assert res.status == ref.status
        if ref.status == "optimal":
            assert res.objective == pytest.approx(ref.objective, rel=1e-7, abs=1e-7)

    ratio = baseline_s / cached_s if cached_s > 0 else float("inf")
    lines = [
        "Node-relaxation cache benchmark (enterprise1-scale LP)",
        f"  nodes solved                 {len(nodes)}",
        f"  matrix shape                 {form.a_ub.shape[0]}+{form.a_eq.shape[0]} rows x {form.c.shape[0]} vars",
        f"  baseline (per-node rebuild)  {baseline_s:.3f} s  "
        f"({len(nodes) / baseline_s:.1f} nodes/s)",
        f"  cached context + warm start  {cached_s:.3f} s  "
        f"({len(nodes) / cached_s:.1f} nodes/s)",
        f"  speedup                      {ratio:.2f}x",
        f"  warm starts (hit / miss)     {ctx.warm_start_hits} / {ctx.warm_start_misses}",
        f"  smoke mode                   {SMOKE}",
    ]
    archive("nodecache", "\n".join(lines))

    if not SMOKE:
        assert ratio >= 3.0, f"node cache speedup {ratio:.2f}x < 3x"
