"""eTransform — automated transformation and consolidation planning for
enterprise data centers.

A from-scratch reproduction of *"eTransform: Transforming Enterprise
Data Centers by Automated Consolidation"* (Singh, Shenoy, Ramakrishnan,
Kelkar, Vin — ICDCS 2012), including its optimization-engine substrate,
the manual/greedy comparison baselines, synthetic versions of the three
case-study datasets, and a harness for every table and figure of the
paper's evaluation.

Quick start::

    from repro import load_enterprise1, solve

    state = load_enterprise1()
    result = solve(state, method="auto")
    print(result.plan.breakdown.total, result.method, result.gap)

The planning surface is exported here so users never need deep module
paths: :func:`solve` is the unified planning entry point (``method`` of
``"auto"``, ``"milp"``, ``"decomposition"`` or ``"greedy"``, returning
a typed :class:`PlanResult`), :class:`ETransformPlanner` /
:class:`PlannerOptions` the full facade, :class:`IterativeSession` the
admin refinement loop, and :class:`SolveOptions` the knobs for the
optimization engine underneath.  The pre-1.1 helpers
(:func:`plan_consolidation`, :func:`greedy_plan`, and the LP-level
``repro.lp.solve``) keep working as deprecated shims.
"""

from .core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    DirectiveConflictError,
    ETransformPlanner,
    IterativeSession,
    LatencyPenaltyFunction,
    PlannerOptions,
    StepCostFunction,
    TransformationPlan,
    UserLocation,
    evaluate_plan,
    plan_consolidation,
)
from .api import METHODS, PlanResult, solve
from .lp import SolveCache, SolveOptions
from .analysis import run_robustness, run_sensitivity
from .baselines import asis_plan, asis_with_dr_plan, greedy_plan, manual_plan
from .core import improve_plan, split_oversized_groups
from .migration import MigrationConfig, plan_migration
from .online import ControllerConfig, OnlineController, ReplayConfig, run_replay
from .service import JobManager, ServiceClient, ServiceConfig
from .sim import SimulatorConfig, simulate_plan
from .datasets import (
    latency_line_scenario,
    load_enterprise1,
    load_federal,
    load_florida,
    tradeoff_line_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationGroup",
    "AsIsState",
    "CostParameters",
    "DataCenter",
    "DirectiveConflictError",
    "ETransformPlanner",
    "IterativeSession",
    "LatencyPenaltyFunction",
    "METHODS",
    "PlanResult",
    "PlannerOptions",
    "SolveCache",
    "SolveOptions",
    "StepCostFunction",
    "TransformationPlan",
    "UserLocation",
    "__version__",
    "ControllerConfig",
    "JobManager",
    "MigrationConfig",
    "OnlineController",
    "ReplayConfig",
    "ServiceClient",
    "ServiceConfig",
    "SimulatorConfig",
    "asis_plan",
    "asis_with_dr_plan",
    "evaluate_plan",
    "greedy_plan",
    "improve_plan",
    "plan_migration",
    "run_replay",
    "run_robustness",
    "run_sensitivity",
    "simulate_plan",
    "solve",
    "split_oversized_groups",
    "latency_line_scenario",
    "load_enterprise1",
    "load_federal",
    "load_florida",
    "manual_plan",
    "plan_consolidation",
    "tradeoff_line_scenario",
]
