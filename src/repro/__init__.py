"""eTransform — automated transformation and consolidation planning for
enterprise data centers.

A from-scratch reproduction of *"eTransform: Transforming Enterprise
Data Centers by Automated Consolidation"* (Singh, Shenoy, Ramakrishnan,
Kelkar, Vin — ICDCS 2012), including its optimization-engine substrate,
the manual/greedy comparison baselines, synthetic versions of the three
case-study datasets, and a harness for every table and figure of the
paper's evaluation.

Quick start::

    from repro import load_enterprise1, plan_consolidation

    state = load_enterprise1()
    plan = plan_consolidation(state, backend="highs")
    print(plan.breakdown.total, plan.datacenters_used)

The planning surface is exported here so users never need deep module
paths: :func:`plan_consolidation` for one-shot planning,
:class:`ETransformPlanner` / :class:`PlannerOptions` for the full
facade, :class:`IterativeSession` for the admin refinement loop, and
:class:`SolveOptions` / :func:`solve` for direct access to the
optimization engine.  Deep imports (``repro.core.planner`` etc.) keep
working.
"""

from .core import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    DirectiveConflictError,
    ETransformPlanner,
    IterativeSession,
    LatencyPenaltyFunction,
    PlannerOptions,
    StepCostFunction,
    TransformationPlan,
    UserLocation,
    evaluate_plan,
    plan_consolidation,
)
from .lp import SolveCache, SolveOptions, solve
from .analysis import run_robustness, run_sensitivity
from .baselines import asis_plan, asis_with_dr_plan, greedy_plan, manual_plan
from .core import improve_plan, split_oversized_groups
from .migration import MigrationConfig, plan_migration
from .online import ControllerConfig, OnlineController, ReplayConfig, run_replay
from .service import JobManager, ServiceClient, ServiceConfig
from .sim import SimulatorConfig, simulate_plan
from .datasets import (
    latency_line_scenario,
    load_enterprise1,
    load_federal,
    load_florida,
    tradeoff_line_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationGroup",
    "AsIsState",
    "CostParameters",
    "DataCenter",
    "DirectiveConflictError",
    "ETransformPlanner",
    "IterativeSession",
    "LatencyPenaltyFunction",
    "PlannerOptions",
    "SolveCache",
    "SolveOptions",
    "StepCostFunction",
    "TransformationPlan",
    "UserLocation",
    "__version__",
    "ControllerConfig",
    "JobManager",
    "MigrationConfig",
    "OnlineController",
    "ReplayConfig",
    "ServiceClient",
    "ServiceConfig",
    "SimulatorConfig",
    "asis_plan",
    "asis_with_dr_plan",
    "evaluate_plan",
    "greedy_plan",
    "improve_plan",
    "plan_migration",
    "run_replay",
    "run_robustness",
    "run_sensitivity",
    "simulate_plan",
    "solve",
    "split_oversized_groups",
    "latency_line_scenario",
    "load_enterprise1",
    "load_federal",
    "load_florida",
    "manual_plan",
    "plan_consolidation",
    "tradeoff_line_scenario",
]
