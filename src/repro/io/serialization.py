"""JSON serialization of as-is states and transformation plans.

The on-disk format is a plain-JSON mirror of the entity classes so that
enterprise inventories can be authored or exported by other tooling and
fed to the CLI (``etransform plan --input state.json``).
"""

from __future__ import annotations

import json
import os
from typing import Any

from ..core.costs import PriceSegment, StepCostFunction
from ..core.entities import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    UserLocation,
)
from ..core.latency import NO_PENALTY, LatencyPenaltyFunction, PenaltyStep
from ..core.plan import CostBreakdown, DataCenterUsage, TransformationPlan
from ..telemetry import SolveStats

#: Format version written to every file; bump on breaking changes.
SCHEMA_VERSION = 1


# -- cost / penalty functions -------------------------------------------------
def step_cost_to_dict(fn: StepCostFunction) -> list[dict[str, Any]]:
    return [
        {"lower": s.lower, "upper": s.upper, "unit_price": s.unit_price}
        for s in fn.segments
    ]


def step_cost_from_dict(data: list[dict[str, Any]]) -> StepCostFunction:
    return StepCostFunction(
        [PriceSegment(d["lower"], d["upper"], d["unit_price"]) for d in data]
    )


def penalty_to_dict(fn: LatencyPenaltyFunction) -> list[dict[str, float]]:
    return [
        {"threshold_ms": s.threshold_ms, "penalty_per_user": s.penalty_per_user}
        for s in fn.steps
    ]


def penalty_from_dict(data: list[dict[str, float]]) -> LatencyPenaltyFunction:
    if not data:
        return NO_PENALTY
    return LatencyPenaltyFunction(
        [PenaltyStep(d["threshold_ms"], d["penalty_per_user"]) for d in data]
    )


# -- entities --------------------------------------------------------------
def group_to_dict(group: ApplicationGroup) -> dict[str, Any]:
    return {
        "name": group.name,
        "servers": group.servers,
        "monthly_data_mb": group.monthly_data_mb,
        "users": dict(group.users),
        "latency_penalty": penalty_to_dict(group.latency_penalty),
        "current_datacenter": group.current_datacenter,
        "allowed_regions": sorted(group.allowed_regions)
        if group.allowed_regions is not None
        else None,
        "forbidden_datacenters": sorted(group.forbidden_datacenters),
        "risk_group": group.risk_group,
        "peers": dict(group.peers),
    }


def group_from_dict(data: dict[str, Any]) -> ApplicationGroup:
    allowed = data.get("allowed_regions")
    return ApplicationGroup(
        name=data["name"],
        servers=data["servers"],
        monthly_data_mb=data.get("monthly_data_mb", 0.0),
        users=dict(data.get("users", {})),
        latency_penalty=penalty_from_dict(data.get("latency_penalty", [])),
        current_datacenter=data.get("current_datacenter"),
        allowed_regions=frozenset(allowed) if allowed is not None else None,
        forbidden_datacenters=frozenset(data.get("forbidden_datacenters", [])),
        risk_group=data.get("risk_group"),
        peers=dict(data.get("peers", {})),
    )


def datacenter_to_dict(dc: DataCenter) -> dict[str, Any]:
    return {
        "name": dc.name,
        "capacity": dc.capacity,
        "space_cost": step_cost_to_dict(dc.space_cost),
        "power_cost_per_kw": dc.power_cost_per_kw,
        "labor_cost_per_admin": dc.labor_cost_per_admin,
        "wan_cost_per_mb": dc.wan_cost_per_mb,
        "latency_to_users": dict(dc.latency_to_users),
        "vpn_link_cost": dict(dc.vpn_link_cost),
        "region": dc.region,
        "x": dc.x,
        "y": dc.y,
        "fixed_monthly_cost": dc.fixed_monthly_cost,
    }


def datacenter_from_dict(data: dict[str, Any]) -> DataCenter:
    return DataCenter(
        name=data["name"],
        capacity=data["capacity"],
        space_cost=step_cost_from_dict(data["space_cost"]),
        power_cost_per_kw=data["power_cost_per_kw"],
        labor_cost_per_admin=data["labor_cost_per_admin"],
        wan_cost_per_mb=data["wan_cost_per_mb"],
        latency_to_users=dict(data.get("latency_to_users", {})),
        vpn_link_cost=dict(data.get("vpn_link_cost", {})),
        region=data.get("region", "global"),
        x=data.get("x", 0.0),
        y=data.get("y", 0.0),
        fixed_monthly_cost=data.get("fixed_monthly_cost", 0.0),
    )


def params_to_dict(params: CostParameters) -> dict[str, Any]:
    return {
        "server_power_kw": params.server_power_kw,
        "servers_per_admin": params.servers_per_admin,
        "vpn_link_capacity_mb": params.vpn_link_capacity_mb,
        "dr_server_cost": params.dr_server_cost,
        "business_impact": params.business_impact,
        "include_backup_in_capacity": params.include_backup_in_capacity,
        "backup_power_fraction": params.backup_power_fraction,
        "backup_labor_fraction": params.backup_labor_fraction,
    }


def params_from_dict(data: dict[str, Any]) -> CostParameters:
    return CostParameters(**data)


def state_to_dict(state: AsIsState) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "name": state.name,
        "app_groups": [group_to_dict(g) for g in state.app_groups],
        "target_datacenters": [datacenter_to_dict(d) for d in state.target_datacenters],
        "current_datacenters": [
            datacenter_to_dict(d) for d in state.current_datacenters
        ],
        "user_locations": [
            {"name": loc.name, "x": loc.x, "y": loc.y} for loc in state.user_locations
        ],
        "params": params_to_dict(state.params),
    }


def state_from_dict(data: dict[str, Any]) -> AsIsState:
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version} (this build reads {SCHEMA_VERSION})"
        )
    return AsIsState(
        name=data["name"],
        app_groups=[group_from_dict(g) for g in data["app_groups"]],
        target_datacenters=[
            datacenter_from_dict(d) for d in data["target_datacenters"]
        ],
        current_datacenters=[
            datacenter_from_dict(d) for d in data.get("current_datacenters", [])
        ],
        user_locations=[
            UserLocation(d["name"], d.get("x", 0.0), d.get("y", 0.0))
            for d in data.get("user_locations", [])
        ],
        params=params_from_dict(data.get("params", {})),
    )


def breakdown_from_dict(data: dict[str, Any]) -> CostBreakdown:
    """Rebuild a :class:`CostBreakdown` (derived totals are recomputed)."""
    return CostBreakdown(
        space=data.get("space", 0.0),
        power=data.get("power", 0.0),
        labor=data.get("labor", 0.0),
        wan=data.get("wan", 0.0),
        fixed=data.get("fixed", 0.0),
        latency_penalty=data.get("latency_penalty", 0.0),
        dr_purchase=data.get("dr_purchase", 0.0),
    )


def usage_to_dict(usage: DataCenterUsage) -> dict[str, Any]:
    return {
        "name": usage.name,
        "primary_servers": usage.primary_servers,
        "backup_servers": usage.backup_servers,
        "groups": list(usage.groups),
        "space_cost": usage.space_cost,
        "power_cost": usage.power_cost,
        "labor_cost": usage.labor_cost,
        "wan_cost": usage.wan_cost,
        "fixed_cost": usage.fixed_cost,
        "latency_penalty": usage.latency_penalty,
    }


def usage_from_dict(data: dict[str, Any]) -> DataCenterUsage:
    return DataCenterUsage(**data)


def plan_to_dict(plan: TransformationPlan) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "placement": dict(plan.placement),
        "secondary": dict(plan.secondary),
        "backup_servers": dict(plan.backup_servers),
        "breakdown": plan.breakdown.as_dict(),
        "usage": {name: usage_to_dict(u) for name, u in plan.usage.items()},
        "latency_violations": plan.latency_violations,
        "solver": plan.solver,
        "objective": plan.objective,
        "datacenters_used": plan.datacenters_used,
        "solver_stats": plan.solver_stats.as_dict()
        if plan.solver_stats is not None
        else None,
    }


def plan_from_dict(data: dict[str, Any]) -> TransformationPlan:
    """Inverse of :func:`plan_to_dict`.

    Derived figures (``breakdown.total``, per-site totals) are
    recomputed from the stored components, and a plan written by an
    older build (no ``usage`` key) still loads.
    """
    version = data.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema version {version} (this build reads {SCHEMA_VERSION})"
        )
    stats = data.get("solver_stats")
    objective = data.get("objective")
    return TransformationPlan(
        placement=dict(data["placement"]),
        secondary=dict(data.get("secondary", {})),
        backup_servers=dict(data.get("backup_servers", {})),
        breakdown=breakdown_from_dict(data.get("breakdown", {})),
        usage={
            name: usage_from_dict(u) for name, u in data.get("usage", {}).items()
        },
        latency_violations=data.get("latency_violations", 0),
        solver=data.get("solver", ""),
        objective=float("nan") if objective is None else objective,
        solver_stats=SolveStats.from_dict(stats) if stats is not None else None,
    )


# -- file helpers --------------------------------------------------------------
def save_state(state: AsIsState, path: str) -> None:
    """Write a state to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(state_to_dict(state), handle, indent=2)


def load_state(path: str) -> AsIsState:
    """Read a state back from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return state_from_dict(json.load(handle))


def save_plan(plan: TransformationPlan, path: str) -> None:
    """Write a plan summary to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2)


def load_plan(path: str) -> TransformationPlan:
    """Read a plan back from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return plan_from_dict(json.load(handle))


# -- JSON-lines journals -------------------------------------------------------
def append_jsonl(handle, record: dict[str, Any]) -> None:
    """Append one record to an open JSON-lines journal and flush it.

    One ``write`` call per record keeps lines atomic under concurrent
    appenders on POSIX; the flush makes the journal crash-consistent up
    to the last completed event (the planning service's job journal).
    """
    handle.write(json.dumps(record, sort_keys=True) + "\n")
    handle.flush()


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Read every record of a JSON-lines file, skipping a torn last line.

    A missing file reads as the empty journal — first boot of a service
    pointed at a journal path that does not exist yet.
    """
    records: list[dict[str, Any]] = []
    if not os.path.exists(path):
        return records
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                # A crash mid-append can leave one torn trailing line;
                # anything before it is still good.
                break
    return records
