"""Serialization and reporting (the output-generation subroutine)."""

from .csv_export import (
    export_plan_csv,
    write_comparison_csv,
    write_placement_csv,
    write_usage_csv,
)
from .report import render_placement_listing, render_plan_report, render_solve_stats
from .serialization import (
    SCHEMA_VERSION,
    append_jsonl,
    load_plan,
    load_state,
    plan_from_dict,
    plan_to_dict,
    read_jsonl,
    save_plan,
    save_state,
    state_from_dict,
    state_to_dict,
)

__all__ = [
    "SCHEMA_VERSION",
    "append_jsonl",
    "export_plan_csv",
    "write_comparison_csv",
    "write_placement_csv",
    "write_usage_csv",
    "load_plan",
    "load_state",
    "plan_from_dict",
    "plan_to_dict",
    "read_jsonl",
    "render_placement_listing",
    "render_plan_report",
    "render_solve_stats",
    "save_plan",
    "save_state",
    "state_from_dict",
    "state_to_dict",
]
