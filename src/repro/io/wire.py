"""Compact binary wire encoding for job payloads and CSC arrays.

Planning states and solver payloads are dominated by long homogeneous
numeric lists — server counts, cost-step tables and, above all, the CSC
``indptr``/``indices``/``values`` triplets out of :mod:`repro.lp.sparse`.
Shipping them between the dispatcher, the replicas and the persistent
job store as JSON costs ~20 text bytes per float plus a full parse on
every hop.  This module packs exactly those payloads as tagged binary:
homogeneous numeric lists (and 1-D numpy arrays) become raw
little-endian machine words copied in one ``struct``/``tobytes`` call,
everything else nests recursively.

Every message starts with one **version byte**:

=======  ========================================================
``0x00``  JSON fallback — the rest of the buffer is UTF-8 JSON
``0x01``  tagged binary, this module's format
=======  ========================================================

so readers can always decode messages from older (or conservative)
writers, and a payload the binary encoder cannot express — non-string
dict keys, exotic objects — transparently falls back to JSON instead of
failing the job.  Unknown versions raise :class:`WireFormatError`
rather than guessing.

The format is self-contained (no pickle — payloads cross trust and
process boundaries) and value-faithful: ``decode(encode(x))`` compares
equal for any JSON-able ``x``, with non-finite floats surviving the
trip (unlike strict JSON).
"""

from __future__ import annotations

import json
import struct
from typing import Any

#: ``Content-Type`` announcing a wire-encoded HTTP body.
WIRE_CONTENT_TYPE = "application/x-etransform-wire"

#: Version bytes (the first byte of every encoded buffer).
WIRE_JSON = 0x00
WIRE_BINARY = 0x01

# -- value tags (binary bodies only) -------------------------------------------
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03        # int64, struct '<q'
_T_BIGINT = 0x04     # u32 length + ascii decimal (ints beyond int64)
_T_FLOAT = 0x05      # float64, struct '<d'
_T_STR = 0x06        # u32 length + utf-8
_T_BYTES = 0x07      # u32 length + raw
_T_LIST = 0x08       # u32 count + items
_T_DICT = 0x09       # u32 count + (str key, value) pairs
_T_ARR_F64 = 0x0A    # u32 count + count * 8 bytes little-endian doubles
_T_ARR_I64 = 0x0B    # u32 count + count * 8 bytes little-endian int64

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")

#: Homogeneous lists at least this long take the packed-array path;
#: shorter ones are not worth the type scan.
_ARRAY_MIN = 8

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


class WireFormatError(ValueError):
    """The buffer is not a decodable wire message."""


class _Unencodable(TypeError):
    """Internal: the value needs the JSON fallback."""


def _numpy_1d(value: Any):
    """Return ``value`` as a 1-D numpy array when it is one, else ``None``."""
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        return None
    if isinstance(value, np.ndarray) and value.ndim == 1:
        return value
    return None


def _pack_array(out: list[bytes], values, kinds: frozenset) -> bool:
    """Append a packed homogeneous numeric list; ``False`` if mixed."""
    if float in kinds and kinds <= {float, int}:
        out.append(bytes([_T_ARR_F64]) + _U32.pack(len(values)))
        out.append(struct.pack(f"<{len(values)}d", *map(float, values)))
        return True
    if kinds == {int} and all(_INT64_MIN <= v <= _INT64_MAX for v in values):
        out.append(bytes([_T_ARR_I64]) + _U32.pack(len(values)))
        out.append(struct.pack(f"<{len(values)}q", *values))
        return True
    return False


def _encode_value(value: Any, out: list[bytes]) -> None:
    import numpy as np

    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, (int, np.integer)) and not isinstance(value, bool):
        value = int(value)
        if _INT64_MIN <= value <= _INT64_MAX:
            out.append(bytes([_T_INT]) + _I64.pack(value))
        else:
            digits = str(value).encode("ascii")
            out.append(bytes([_T_BIGINT]) + _U32.pack(len(digits)) + digits)
    elif isinstance(value, (float, np.floating)):
        out.append(bytes([_T_FLOAT]) + _F64.pack(float(value)))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(bytes([_T_STR]) + _U32.pack(len(data)) + data)
    elif isinstance(value, (bytes, bytearray)):
        out.append(bytes([_T_BYTES]) + _U32.pack(len(value)) + bytes(value))
    elif (array := _numpy_1d(value)) is not None:
        if array.dtype.kind == "f":
            data = array.astype("<f8", copy=False).tobytes()
            out.append(bytes([_T_ARR_F64]) + _U32.pack(len(array)) + data)
        elif array.dtype.kind in "iu":
            if array.dtype.kind == "u" and (array > _INT64_MAX).any():
                raise _Unencodable("unsigned array exceeds int64")
            data = array.astype("<i8", copy=False).tobytes()
            out.append(bytes([_T_ARR_I64]) + _U32.pack(len(array)) + data)
        else:
            raise _Unencodable(f"array dtype {array.dtype!r}")
    elif isinstance(value, (list, tuple)):
        if len(value) >= _ARRAY_MIN:
            kinds = {type(v) for v in value}
            if kinds <= {int, float} and bool not in kinds:
                if _pack_array(out, value, frozenset(kinds)):
                    return
        out.append(bytes([_T_LIST]) + _U32.pack(len(value)))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(bytes([_T_DICT]) + _U32.pack(len(value)))
        for key, item in value.items():
            if not isinstance(key, str):
                raise _Unencodable(f"dict key {key!r} is not a string")
            data = key.encode("utf-8")
            out.append(_U32.pack(len(data)) + data)
            _encode_value(item, out)
    else:
        raise _Unencodable(f"cannot wire-encode {type(value).__name__}")


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int) -> None:
        self.data = data
        self.pos = pos

    def take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise WireFormatError("truncated wire message")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]


def _decode_value(reader: _Reader) -> Any:
    tag = reader.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(reader.take(8))[0]
    if tag == _T_BIGINT:
        return int(reader.take(reader.u32()).decode("ascii"))
    if tag == _T_FLOAT:
        return _F64.unpack(reader.take(8))[0]
    if tag == _T_STR:
        return reader.take(reader.u32()).decode("utf-8")
    if tag == _T_BYTES:
        return reader.take(reader.u32())
    if tag == _T_ARR_F64:
        count = reader.u32()
        return list(struct.unpack(f"<{count}d", reader.take(count * 8)))
    if tag == _T_ARR_I64:
        count = reader.u32()
        return list(struct.unpack(f"<{count}q", reader.take(count * 8)))
    if tag == _T_LIST:
        return [_decode_value(reader) for _ in range(reader.u32())]
    if tag == _T_DICT:
        record = {}
        for _ in range(reader.u32()):
            key = reader.take(reader.u32()).decode("utf-8")
            record[key] = _decode_value(reader)
        return record
    raise WireFormatError(f"unknown wire tag 0x{tag:02x}")


def encode_payload(value: Any, binary: bool = True) -> bytes:
    """Encode ``value`` for the wire; binary when possible, JSON otherwise.

    ``binary=False`` forces the JSON body (used to exercise readers
    against conservative writers); a value the binary format cannot
    express falls back to JSON automatically.
    """
    if binary:
        out: list[bytes] = [bytes([WIRE_BINARY])]
        try:
            _encode_value(value, out)
        except _Unencodable:
            pass
        else:
            return b"".join(out)
    return bytes([WIRE_JSON]) + json.dumps(value).encode("utf-8")


def decode_payload(data: bytes) -> Any:
    """Decode one wire message produced by :func:`encode_payload`."""
    if not data:
        raise WireFormatError("empty wire message")
    version = data[0]
    if version == WIRE_JSON:
        try:
            return json.loads(data[1:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"bad JSON wire body: {exc}") from exc
    if version == WIRE_BINARY:
        reader = _Reader(data, 1)
        value = _decode_value(reader)
        if reader.pos != len(data):
            raise WireFormatError(
                f"{len(data) - reader.pos} trailing bytes after wire value"
            )
        return value
    raise WireFormatError(f"unknown wire version 0x{version:02x}")
