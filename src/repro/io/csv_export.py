"""CSV exports — the lingua franca of consolidation engagements.

Three sheets: the placement listing (one row per application group),
the per-site usage/cost table, and an algorithm-comparison table.  All
writers use :mod:`csv` with plain headers so the files open directly in
a spreadsheet.
"""

from __future__ import annotations

import csv
from typing import Iterable, TextIO

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan

PLACEMENT_HEADER = [
    "group", "servers", "users", "primary_site", "secondary_site",
    "mean_latency_ms", "latency_violated",
]

USAGE_HEADER = [
    "site", "groups", "primary_servers", "backup_servers",
    "space_cost", "power_cost", "labor_cost", "wan_cost", "fixed_cost",
    "latency_penalty", "total_cost",
]

COMPARISON_HEADER = [
    "algorithm", "total_cost", "operational_cost", "latency_penalty",
    "dr_purchase", "latency_violations", "datacenters_used",
]


def write_placement_csv(
    state: AsIsState, plan: TransformationPlan, stream: TextIO
) -> int:
    """Write the group-level sheet; returns the number of data rows."""
    by_name = {dc.name: dc for dc in state.target_datacenters}
    by_name.update({dc.name: dc for dc in state.current_datacenters})
    writer = csv.writer(stream)
    writer.writerow(PLACEMENT_HEADER)
    rows = 0
    for group in state.app_groups:
        site_name = plan.placement[group.name]
        site = by_name.get(site_name)
        mean_latency = ""
        violated = ""
        if site is not None and group.total_users > 0:
            latency = group.mean_latency(site.latency_to_users)
            mean_latency = f"{latency:.2f}"
            violated = str(group.latency_penalty.violates(latency)).lower()
        writer.writerow([
            group.name,
            group.servers,
            f"{group.total_users:.0f}",
            site_name,
            plan.secondary.get(group.name, ""),
            mean_latency,
            violated,
        ])
        rows += 1
    return rows


def write_usage_csv(plan: TransformationPlan, stream: TextIO) -> int:
    """Write the per-site sheet; returns the number of data rows."""
    writer = csv.writer(stream)
    writer.writerow(USAGE_HEADER)
    rows = 0
    for name in sorted(plan.usage):
        slot = plan.usage[name]
        writer.writerow([
            name,
            len(slot.groups),
            slot.primary_servers,
            slot.backup_servers,
            f"{slot.space_cost:.2f}",
            f"{slot.power_cost:.2f}",
            f"{slot.labor_cost:.2f}",
            f"{slot.wan_cost:.2f}",
            f"{slot.fixed_cost:.2f}",
            f"{slot.latency_penalty:.2f}",
            f"{slot.total_cost:.2f}",
        ])
        rows += 1
    return rows


def write_comparison_csv(results: Iterable, stream: TextIO) -> int:
    """Write an algorithm-comparison sheet from
    :class:`~repro.experiments.harness.AlgorithmResult` records."""
    writer = csv.writer(stream)
    writer.writerow(COMPARISON_HEADER)
    rows = 0
    for result in results:
        writer.writerow([
            result.algorithm,
            f"{result.total_cost:.2f}",
            f"{result.operational_cost:.2f}",
            f"{result.latency_penalty:.2f}",
            f"{result.dr_purchase:.2f}",
            result.latency_violations,
            result.datacenters_used,
        ])
        rows += 1
    return rows


def export_plan_csv(
    state: AsIsState,
    plan: TransformationPlan,
    placement_path: str,
    usage_path: str,
) -> None:
    """Write both plan sheets to disk."""
    with open(placement_path, "w", newline="", encoding="utf-8") as handle:
        write_placement_csv(state, plan, handle)
    with open(usage_path, "w", newline="", encoding="utf-8") as handle:
        write_usage_csv(plan, handle)
