"""Human-readable "to-be" state reports (the output-generation module)."""

from __future__ import annotations

import math

from ..core.entities import AsIsState
from ..core.plan import TransformationPlan
from ..telemetry import SolveStats


def _money(value: float) -> str:
    return f"${value:,.0f}"


def _bound(value: float) -> str:
    return f"{value:,.2f}" if math.isfinite(value) else "n/a"


def _gap(value: float) -> str:
    return f"{value * 100.0:.4f}%" if math.isfinite(value) else "n/a"


def render_solve_stats(stats: SolveStats) -> str:
    """Per-solve statistics block (the CLI's ``--profile`` output)."""
    lines = [
        "Solver statistics",
        f"  backend                        {stats.backend or 'n/a'}",
        f"  wall-clock seconds             {stats.elapsed_seconds:.3f}",
        f"  LP iterations                  {stats.lp_iterations}",
        f"    phase-1 / phase-2            {stats.phase1_iterations} / {stats.phase2_iterations}",
        f"    Bland switches               {stats.bland_switches}",
        f"    degenerate pivots            {stats.degenerate_pivots}",
        f"  conversion / solve seconds     {stats.conversion_seconds:.3f} / "
        f"{stats.relaxation_solve_seconds:.3f}",
        f"  warm starts (hit / miss)       {stats.warm_start_hits} / {stats.warm_start_misses}",
        f"  basis refactorizations         {stats.refactorizations}",
        f"    eta file length at refactor  {stats.eta_file_length}",
        f"  pricing passes                 {stats.pricing_passes}",
        f"  bound-flip pivots              {stats.bound_flips}",
        "  dual re-solves (entry / fall)  "
        f"{stats.dual_entries} / {stats.dual_fallbacks}",
        f"    dual pivots                  {stats.dual_pivots}",
        "  context extended / hint fixed  "
        f"{stats.context_extended} / {stats.hint_repaired}",
        f"    bordered dual re-entries     {stats.extension_dual_entries}",
        f"  B&B nodes explored             {stats.nodes_explored}",
        f"  B&B nodes pruned               {stats.nodes_pruned}",
        f"  cut rounds / cuts added        {stats.cut_rounds} / {stats.cuts_added}",
        f"  incumbent objective            {_bound(stats.incumbent)}",
        f"  best bound                     {_bound(stats.best_bound)}",
        f"  best-bound gap                 {_gap(stats.mip_gap)}",
        "  presolve reductions            "
        f"{stats.presolve_fixed_variables} vars fixed, "
        f"{stats.presolve_dropped_constraints} rows dropped, "
        f"{stats.presolve_tightened_bounds} bounds tightened "
        f"({stats.presolve_rounds} rounds)",
    ]
    return "\n".join(lines)


def render_plan_report(state: AsIsState, plan: TransformationPlan) -> str:
    """Full text report: headline, per-site table, cost breakdown."""
    lines: list[str] = []
    title = f'Transformation plan for "{state.name}"'
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(
        f"{len(state.app_groups)} application groups / {state.total_servers} servers "
        f"consolidated into {len(plan.datacenters_used)} of "
        f"{len(state.target_datacenters)} candidate sites"
        + (" (with disaster recovery)" if plan.has_dr else "")
    )
    lines.append("")

    lines.append(
        f"{'site':<14} {'groups':>7} {'servers':>8} {'backups':>8} "
        f"{'space':>12} {'power':>10} {'labor':>10} {'WAN':>12} {'fixed':>10} {'penalty':>12}"
    )
    for name in plan.datacenters_used:
        slot = plan.usage.get(name)
        if slot is None:
            continue
        lines.append(
            f"{name:<14} {len(slot.groups):>7d} {slot.primary_servers:>8d} "
            f"{slot.backup_servers:>8d} {_money(slot.space_cost):>12} "
            f"{_money(slot.power_cost):>10} {_money(slot.labor_cost):>10} "
            f"{_money(slot.wan_cost):>12} {_money(slot.fixed_cost):>10} "
            f"{_money(slot.latency_penalty):>12}"
        )
    lines.append("")

    b = plan.breakdown
    lines.append("Monthly cost breakdown")
    for label, value in (
        ("space", b.space),
        ("power", b.power),
        ("labor", b.labor),
        ("WAN", b.wan),
        ("fixed facilities", b.fixed),
        ("latency penalty", b.latency_penalty),
        ("DR server purchase (one-off)", b.dr_purchase),
    ):
        lines.append(f"  {label:<30} {_money(value):>14}")
    lines.append(f"  {'TOTAL':<30} {_money(b.total):>14}")
    lines.append("")
    lines.append(
        f"Latency violations: {plan.latency_violations}   solver: {plan.solver or 'n/a'}"
    )
    if plan.has_dr:
        pools = ", ".join(
            f"{name}:{count}" for name, count in sorted(plan.backup_servers.items())
        )
        lines.append(f"Backup pools: {pools or 'none'}")
    return "\n".join(lines)


def render_placement_listing(plan: TransformationPlan) -> str:
    """Group → site listing (plus DR site when present)."""
    lines = [f"{'application group':<24} {'primary':<14}" + ("secondary" if plan.has_dr else "")]
    for group in sorted(plan.placement):
        row = f"{group:<24} {plan.placement[group]:<14}"
        if plan.has_dr:
            row += plan.secondary.get(group, "-")
        lines.append(row)
    return "\n".join(lines)
