"""JSON-lines trace emission for per-solve records.

A :class:`TraceWriter` appends one strict-JSON object per line — the
same shape the ``bench_results/`` artifacts and external analysis
notebooks consume.  A single module-level writer can be activated
(``set_trace`` or the ``trace_to`` context manager); the solver registry
then emits a record for every solve that passes through it, so sweeps
and comparisons are traced without any per-call plumbing.
"""

from __future__ import annotations

import contextlib
import json
import math
from typing import Any, IO, Iterator

from .counters import metrics
from .stats import SolveStats


def _sanitize(value: Any) -> Any:
    """Recursively replace non-finite floats so output is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class TraceWriter:
    """Append-only JSONL sink (owns the handle when given a path)."""

    def __init__(self, target: str | IO[str]) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.records_written = 0

    def emit(self, record: dict[str, Any]) -> None:
        """Write one record as a single JSON line and flush."""
        self._handle.write(json.dumps(_sanitize(record), allow_nan=False) + "\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._owns_handle and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_active_writer: TraceWriter | None = None


def set_trace(writer: TraceWriter | None) -> None:
    """Install (or clear, with ``None``) the process-wide trace writer."""
    global _active_writer
    _active_writer = writer


def get_trace() -> TraceWriter | None:
    """The currently-installed trace writer, if any."""
    return _active_writer


def trace_enabled() -> bool:
    return _active_writer is not None


@contextlib.contextmanager
def trace_to(target: str | IO[str]) -> Iterator[TraceWriter]:
    """Activate a trace writer for the duration of the block."""
    writer = TraceWriter(target)
    previous = get_trace()
    set_trace(writer)
    try:
        yield writer
    finally:
        set_trace(previous)
        writer.close()


def emit_record(record: dict[str, Any]) -> None:
    """Emit ``record`` to the active writer; no-op when tracing is off."""
    writer = get_trace()
    if writer is not None:
        writer.emit(record)


def record_solve(
    problem: str,
    backend: str,
    solver: str,
    status: str,
    objective: float,
    stats: SolveStats | None,
    elapsed_seconds: float,
) -> None:
    """Account for one finished solve: bump counters, emit a trace line."""
    metrics.increment("solves.total")
    metrics.increment(f"solves.backend.{backend}")
    emit_record(
        {
            "event": "solve",
            "problem": problem,
            "backend": backend,
            "solver": solver,
            "status": status,
            "objective": objective,
            "elapsed_seconds": elapsed_seconds,
            "stats": stats.as_dict() if stats is not None else None,
        }
    )
