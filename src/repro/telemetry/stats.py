"""The :class:`SolveStats` record threaded through every solver backend.

One structured object describes what a solve *did* — simplex pivots,
branch-and-bound search progress, cut separation, presolve reductions,
wall-clock time — regardless of which backend produced it.  Backends
fill in the fields they know about and leave the rest at their
defaults; consumers (reports, traces, benchmarks) can therefore render
a single schema for every solver.

Related MILP studies report exactly these quantities (node counts,
optimality gaps, per-phase iteration counts) as first-class results;
this module is what lets the reproduction do the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any


def _json_safe(value: Any) -> Any:
    """Map non-finite floats to ``None`` so records stay strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _from_json(value: Any, default: float) -> float:
    """Inverse of :func:`_json_safe`: ``None`` becomes ``default``."""
    return default if value is None else float(value)


@dataclass
class GapPoint:
    """One sample of the incumbent / best-bound trajectory."""

    nodes_explored: int
    best_bound: float
    incumbent: float
    elapsed_seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "nodes_explored": self.nodes_explored,
            "best_bound": _json_safe(self.best_bound),
            "incumbent": _json_safe(self.incumbent),
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GapPoint":
        """Inverse of :meth:`as_dict` (``None`` floats read back non-finite)."""
        return cls(
            nodes_explored=data["nodes_explored"],
            best_bound=_from_json(data.get("best_bound"), float("-inf")),
            incumbent=_from_json(data.get("incumbent"), float("nan")),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
        )


@dataclass
class SolveStats:
    """Structured search statistics for one solve.

    Field groups (all optional; backends fill what they measure):

    * **identity / timing** — ``backend``, ``elapsed_seconds``;
    * **LP / simplex** — total ``lp_iterations`` plus the two-phase
      split, Bland-rule switches and degenerate pivots;
    * **branch and bound** — nodes explored/pruned, cut rounds and cuts
      added, the proven ``best_bound``, the ``incumbent`` objective, the
      final relative ``mip_gap`` and the gap trajectory over the search;
    * **presolve** — variables fixed, constraints dropped, bounds
      tightened and fixpoint rounds.
    """

    backend: str = ""
    elapsed_seconds: float = 0.0

    # -- LP / simplex ------------------------------------------------------
    lp_iterations: int = 0
    phase1_iterations: int = 0
    phase2_iterations: int = 0
    bland_switches: int = 0
    degenerate_pivots: int = 0

    # -- node-relaxation hot path ------------------------------------------
    #: Wall clock spent converting to standard form across all node solves.
    conversion_seconds: float = 0.0
    #: Wall clock spent inside the LP engine across all node solves.
    relaxation_solve_seconds: float = 0.0
    #: Node solves that skipped phase 1 via the parent's basis.
    warm_start_hits: int = 0
    #: Node solves where the parent basis was stale and phase 1 reran.
    warm_start_misses: int = 0

    # -- revised simplex core ----------------------------------------------
    #: Basis refactorizations (LU rebuilds retiring the eta file).
    refactorizations: int = 0
    #: Total eta-file length retired across refactorizations.
    eta_file_length: int = 0
    #: Partial-pricing block scans across all pivots.
    pricing_passes: int = 0
    #: Nonbasic lower<->upper bound flips (pivots without a basis change).
    bound_flips: int = 0
    #: Node re-solves entered through the dual simplex.
    dual_entries: int = 0
    #: Dual-simplex pivots across those re-solves.
    dual_pivots: int = 0
    #: Dual entries that fell back to the primal engine.
    dual_fallbacks: int = 0

    # -- incremental warm path ---------------------------------------------
    #: 1 when this solve ran on a row-extended context instead of a rebuild.
    context_extended: int = 0
    #: 1 when the incumbent MIP start was repaired before seeding.
    hint_repaired: int = 0
    #: Dual re-entries that carried a bordered (extended) basis across
    #: a row append — the proof the extension kept the warm start alive.
    extension_dual_entries: int = 0

    # -- branch and bound --------------------------------------------------
    nodes_explored: int = 0
    nodes_pruned: int = 0
    cut_rounds: int = 0
    cuts_added: int = 0
    best_bound: float = float("-inf")
    incumbent: float = float("nan")
    mip_gap: float = float("nan")
    gap_trajectory: list[GapPoint] = field(default_factory=list)

    # -- presolve ----------------------------------------------------------
    presolve_fixed_variables: int = 0
    presolve_dropped_constraints: int = 0
    presolve_tightened_bounds: int = 0
    presolve_rounds: int = 0

    #: Free-form backend extras (e.g. native solver node counts).
    extra: dict[str, float] = field(default_factory=dict)

    def relative_gap(self) -> float:
        """Relative incumbent / best-bound gap (``nan`` when unknown)."""
        if not math.isfinite(self.incumbent) or not math.isfinite(self.best_bound):
            return float("nan")
        return abs(self.incumbent - self.best_bound) / max(1.0, abs(self.incumbent))

    def merge_presolve(
        self,
        fixed_variables: int = 0,
        dropped_constraints: int = 0,
        tightened_bounds: int = 0,
        rounds: int = 0,
    ) -> "SolveStats":
        """Fold presolve reductions into this record (returns ``self``)."""
        self.presolve_fixed_variables += fixed_variables
        self.presolve_dropped_constraints += dropped_constraints
        self.presolve_tightened_bounds += tightened_bounds
        self.presolve_rounds += rounds
        return self

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe dict (non-finite floats become ``None``)."""
        return {
            "backend": self.backend,
            "elapsed_seconds": self.elapsed_seconds,
            "lp_iterations": self.lp_iterations,
            "phase1_iterations": self.phase1_iterations,
            "phase2_iterations": self.phase2_iterations,
            "bland_switches": self.bland_switches,
            "degenerate_pivots": self.degenerate_pivots,
            "conversion_seconds": self.conversion_seconds,
            "relaxation_solve_seconds": self.relaxation_solve_seconds,
            "warm_start_hits": self.warm_start_hits,
            "warm_start_misses": self.warm_start_misses,
            "refactorizations": self.refactorizations,
            "eta_file_length": self.eta_file_length,
            "pricing_passes": self.pricing_passes,
            "bound_flips": self.bound_flips,
            "dual_entries": self.dual_entries,
            "dual_pivots": self.dual_pivots,
            "dual_fallbacks": self.dual_fallbacks,
            "context_extended": self.context_extended,
            "hint_repaired": self.hint_repaired,
            "extension_dual_entries": self.extension_dual_entries,
            "nodes_explored": self.nodes_explored,
            "nodes_pruned": self.nodes_pruned,
            "cut_rounds": self.cut_rounds,
            "cuts_added": self.cuts_added,
            "best_bound": _json_safe(self.best_bound),
            "incumbent": _json_safe(self.incumbent),
            "mip_gap": _json_safe(self.mip_gap),
            "gap_trajectory": [p.as_dict() for p in self.gap_trajectory],
            "presolve_fixed_variables": self.presolve_fixed_variables,
            "presolve_dropped_constraints": self.presolve_dropped_constraints,
            "presolve_tightened_bounds": self.presolve_tightened_bounds,
            "presolve_rounds": self.presolve_rounds,
            "extra": {k: _json_safe(v) for k, v in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SolveStats":
        """Inverse of :meth:`as_dict`, so stats survive a JSON round-trip.

        ``None`` floats (the JSON spelling of non-finite values) read
        back as the field's non-finite default: ``-inf`` for
        ``best_bound``, ``nan`` for ``incumbent`` / ``mip_gap`` and for
        ``extra`` values.  Missing keys keep their dataclass defaults,
        so records written by older builds still load.
        """
        stats = cls(
            backend=data.get("backend", ""),
            elapsed_seconds=data.get("elapsed_seconds", 0.0),
            lp_iterations=data.get("lp_iterations", 0),
            phase1_iterations=data.get("phase1_iterations", 0),
            phase2_iterations=data.get("phase2_iterations", 0),
            bland_switches=data.get("bland_switches", 0),
            degenerate_pivots=data.get("degenerate_pivots", 0),
            conversion_seconds=data.get("conversion_seconds", 0.0),
            relaxation_solve_seconds=data.get("relaxation_solve_seconds", 0.0),
            warm_start_hits=data.get("warm_start_hits", 0),
            warm_start_misses=data.get("warm_start_misses", 0),
            refactorizations=data.get("refactorizations", 0),
            eta_file_length=data.get("eta_file_length", 0),
            pricing_passes=data.get("pricing_passes", 0),
            bound_flips=data.get("bound_flips", 0),
            dual_entries=data.get("dual_entries", 0),
            dual_pivots=data.get("dual_pivots", 0),
            dual_fallbacks=data.get("dual_fallbacks", 0),
            context_extended=data.get("context_extended", 0),
            hint_repaired=data.get("hint_repaired", 0),
            extension_dual_entries=data.get("extension_dual_entries", 0),
            nodes_explored=data.get("nodes_explored", 0),
            nodes_pruned=data.get("nodes_pruned", 0),
            cut_rounds=data.get("cut_rounds", 0),
            cuts_added=data.get("cuts_added", 0),
            best_bound=_from_json(data.get("best_bound"), float("-inf")),
            incumbent=_from_json(data.get("incumbent"), float("nan")),
            mip_gap=_from_json(data.get("mip_gap"), float("nan")),
            gap_trajectory=[
                GapPoint.from_dict(p) for p in data.get("gap_trajectory", [])
            ],
            presolve_fixed_variables=data.get("presolve_fixed_variables", 0),
            presolve_dropped_constraints=data.get("presolve_dropped_constraints", 0),
            presolve_tightened_bounds=data.get("presolve_tightened_bounds", 0),
            presolve_rounds=data.get("presolve_rounds", 0),
        )
        stats.extra = {
            k: _from_json(v, float("nan")) for k, v in data.get("extra", {}).items()
        }
        return stats
