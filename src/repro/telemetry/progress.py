"""Mid-solve progress ticks: the telemetry feed behind job streaming.

:class:`~repro.telemetry.stats.SolveStats` describes a solve after the
fact; this module is the *live* counterpart.  Long-running engines call
:func:`emit_progress` at natural checkpoints — branch-and-bound gap
points, decomposition master rounds — with a small JSON-able dict.  By
default that is a no-op costing one global read, so library users pay
nothing.  A host that wants the feed installs a sink callable
(:func:`set_progress_sink`); the planning-service worker installs one
that forwards ticks over its result pipe, which is how
``GET /jobs/<id>/events`` streams SolveStats ticks to HTTP clients.

Throttling lives here, not in the engines: a sink is installed with a
``min_interval`` and ticks inside the window are dropped, so a hot
branch-and-bound loop cannot flood a pipe no matter how often it calls
in.  Sinks must never raise into the solver; exceptions are swallowed
(a broken pipe must not fail the solve whose progress it was
reporting).

Like the rest of :mod:`repro.telemetry`, this imports nothing from the
library above it.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable

_sink: Callable[[dict[str, Any]], None] | None = None
_min_interval: float = 0.0
_last_emit: float = 0.0


def set_progress_sink(
    sink: Callable[[dict[str, Any]], None] | None,
    min_interval: float = 0.0,
) -> None:
    """Install (or clear, with ``None``) the process-wide progress sink.

    ``min_interval`` throttles: ticks arriving within that many seconds
    of the previously delivered one are dropped.
    """
    global _sink, _min_interval, _last_emit
    _sink = sink
    _min_interval = max(0.0, min_interval)
    _last_emit = 0.0


def progress_enabled() -> bool:
    return _sink is not None


def emit_progress(event: dict[str, Any]) -> None:
    """Deliver one tick to the sink; no-op when none is installed.

    Non-finite floats are mapped to ``None`` (ticks end up in strict-
    JSON streams); sink exceptions are swallowed.
    """
    global _last_emit
    sink = _sink
    if sink is None:
        return
    now = time.monotonic()
    if _min_interval and now - _last_emit < _min_interval:
        return
    _last_emit = now
    safe = {
        key: (None if isinstance(v, float) and not math.isfinite(v) else v)
        for key, v in event.items()
    }
    try:
        sink(safe)
    except Exception:
        pass
