"""Solver observability: counters, timers, stats records, JSONL traces.

This package sits *below* :mod:`repro.lp` in the layering — it imports
nothing from the rest of the library, so every layer (solvers, planner,
experiments, CLI) can depend on it freely:

* :class:`SolveStats` — the structured per-solve record every backend
  fills in and attaches to :class:`repro.lp.Solution`;
* :class:`Counter` / :class:`Timer` / :class:`MetricsRegistry` — the
  process-wide :data:`metrics` registry the solver registry bumps;
* :class:`TraceWriter` / :func:`trace_to` — JSON-lines emission of one
  record per solve (the CLI's ``--trace FILE``).
"""

from .counters import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    declare_counters,
    declared_counters,
    metrics,
)
from .progress import emit_progress, progress_enabled, set_progress_sink
from .stats import GapPoint, SolveStats
from .trace import (
    TraceWriter,
    emit_record,
    get_trace,
    record_solve,
    set_trace,
    trace_enabled,
    trace_to,
)

__all__ = [
    "Counter",
    "GapPoint",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SolveStats",
    "Timer",
    "TraceWriter",
    "declare_counters",
    "declared_counters",
    "emit_progress",
    "emit_record",
    "get_trace",
    "metrics",
    "progress_enabled",
    "record_solve",
    "set_progress_sink",
    "set_trace",
    "trace_enabled",
    "trace_to",
]
