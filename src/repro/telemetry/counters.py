"""Process-wide counters, gauges, histograms and wall-clock timers.

A tiny metrics substrate: named monotonically-increasing counters, an
up-and-down :class:`Gauge` (queue depths, in-flight work), a
fixed-bucket :class:`Histogram` (solve-time distributions) and a
context-manager :class:`Timer`, grouped in a :class:`MetricsRegistry`.
The module-level :data:`metrics` registry is what the solver stack
increments (``solves.total``, ``solves.backend.<name>``, ...) and what
the planning service surfaces on ``GET /metrics``; tests and benchmarks
may create private registries.

Subsystems *declare* the counter names they own up front with
:func:`declare_counters`; declaring a name twice raises, mirroring the
solver-backend registry's duplicate guard, so two modules can never
silently share (and double-count) one counter.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Counter names claimed by a subsystem, name → owner label.
_DECLARED: dict[str, str] = {}


def declare_counters(owner: str, names: "tuple[str, ...] | list[str]") -> None:
    """Claim counter ``names`` for ``owner`` (a module path).

    Raises ``ValueError`` when any name was already claimed — the same
    duplicate guard :func:`repro.lp.register_backend` applies to solver
    backends.  Purely a namespace registry: counters are still created
    lazily by :meth:`MetricsRegistry.counter`.
    """
    for name in names:
        if name in _DECLARED:
            raise ValueError(
                f"counter {name!r} already declared by {_DECLARED[name]!r}"
            )
    for name in names:
        _DECLARED[name] = owner


def declared_counters() -> dict[str, str]:
    """Snapshot of every claimed counter name → owning module."""
    return dict(_DECLARED)


@dataclass
class Counter:
    """A named monotonically-increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError("counters only move forward; use a new counter")
        self.value += amount
        return self.value

    def reset(self) -> None:
        self.value = 0.0


@dataclass
class Gauge:
    """A named value that can move both ways (queue depth, in-flight)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def increment(self, amount: float = 1.0) -> float:
        self.value += amount
        return self.value

    def decrement(self, amount: float = 1.0) -> float:
        self.value -= amount
        return self.value

    def reset(self) -> None:
        self.value = 0.0


#: Default histogram bucket upper bounds, in seconds (solve times).
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


class Histogram:
    """Fixed-bucket histogram of observations (Prometheus-style).

    ``buckets`` are upper bounds; an implicit +inf bucket catches the
    rest.  Tracks count and sum so consumers can report rates and means
    without keeping raw samples.
    """

    def __init__(self, name: str, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted non-empty sequence")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-safe snapshot (bucket upper bound → count, plus totals)."""
        labels = [str(b) for b in self.buckets] + ["inf"]
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0


class Timer:
    """Wall-clock timer usable as a context manager.

    ::

        with Timer() as t:
            solve(...)
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.monotonic()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was never started")
        self.elapsed = time.monotonic() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class MetricsRegistry:
    """A namespace of counters/gauges/histograms, snapshot-able for tests."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str, buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> Histogram:
        """Get or create the histogram called ``name``."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, buckets)
        return self.histograms[name]

    def increment(self, name: str, amount: float = 1.0) -> float:
        return self.counter(name).increment(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> dict[str, float]:
        """Current counter and gauge values, sorted by name."""
        values = {name: c.value for name, c in self.counters.items()}
        values.update({name: g.value for name, g in self.gauges.items()})
        return dict(sorted(values.items()))

    def histogram_snapshot(self) -> dict[str, dict]:
        """JSON-safe dump of every histogram, sorted by name."""
        return {name: h.as_dict() for name, h in sorted(self.histograms.items())}

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()
        for gauge in self.gauges.values():
            gauge.reset()
        for histogram in self.histograms.values():
            histogram.reset()


#: The process-wide registry used by the solver stack.
metrics = MetricsRegistry()
