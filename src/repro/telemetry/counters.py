"""Process-wide counters and wall-clock timers.

A tiny metrics substrate: named monotonically-increasing counters and a
context-manager :class:`Timer`, grouped in a :class:`MetricsRegistry`.
The module-level :data:`metrics` registry is what the solver stack
increments (``solves.total``, ``solves.backend.<name>``, ...); tests and
benchmarks may create private registries.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Counter:
    """A named monotonically-increasing counter."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> float:
        if amount < 0:
            raise ValueError("counters only move forward; use a new counter")
        self.value += amount
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Timer:
    """Wall-clock timer usable as a context manager.

    ::

        with Timer() as t:
            solve(...)
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Timer":
        self._start = time.monotonic()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer was never started")
        self.elapsed = time.monotonic() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


@dataclass
class MetricsRegistry:
    """A namespace of counters, snapshot-able for reports and tests."""

    counters: dict[str, Counter] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def increment(self, name: str, amount: float = 1.0) -> float:
        return self.counter(name).increment(amount)

    def snapshot(self) -> dict[str, float]:
        """Current counter values, sorted by name."""
        return {name: c.value for name, c in sorted(self.counters.items())}

    def reset(self) -> None:
        for counter in self.counters.values():
            counter.reset()


#: The process-wide registry used by the solver stack.
metrics = MetricsRegistry()
