"""Job execution — the code that runs *inside* a worker process.

One worker executes one job at a time.  Everything here takes plain
JSON-able payloads and returns plain JSON-able results, because results
cross a process boundary and may have been served from the result cache
or the journal rather than a live object.

Refine jobs are **idempotent**: the payload always carries the full
state and the *cumulative* directive list.  The worker keeps an
:class:`~repro.core.iterative.IterativeSession` per session id; when the
request's state + options fingerprint matches the session's and the new
directive list extends the session's current one, only the suffix is
applied and the re-solve goes through the warm
:class:`~repro.core.incremental.RevisionedModel` + ``SolveCache`` path.
When the base fingerprint or directive prefix does not match (or the
session died with a killed worker), the session is rebuilt from the
payload — slower, same answer.  That is what makes retry-after-worker-
death safe for every job kind.
"""

from __future__ import annotations

import math
import time
from typing import Any

from ..core.incremental import directive_from_dict
from ..core.iterative import IterativeSession
from ..core.planner import ETransformPlanner, PlannerOptions
from ..io.serialization import plan_to_dict, state_from_dict
from ..lp.fingerprint import payload_fingerprint
from .jobs import JobKind


class PayloadError(ValueError):
    """The job payload is malformed (maps to HTTP 400 at submit time)."""


def _require_state(payload: dict[str, Any]):
    data = payload.get("state")
    if not isinstance(data, dict):
        raise PayloadError("payload field 'state' must be an as-is state object")
    try:
        return state_from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        field = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        raise PayloadError(f"invalid state in payload: {field}") from exc


def _planner_options(payload: dict[str, Any]) -> PlannerOptions:
    try:
        return PlannerOptions.from_wire(payload.get("options"))
    except (TypeError, ValueError) as exc:
        raise PayloadError(f"invalid planner options: {exc}") from exc


def validate_payload(kind: JobKind, payload: dict[str, Any]) -> None:
    """Reject malformed payloads at submit time (before queueing).

    Parses the state, options and directives exactly as the worker
    will, so a bad request fails fast with HTTP 400 instead of
    occupying a worker and failing there.
    """
    if not isinstance(payload, dict):
        raise PayloadError("job payload must be a JSON object")
    _require_state(payload)
    _planner_options(payload)
    if kind is JobKind.REFINE:
        _parse_directives(payload)
        if not isinstance(payload.get("session", "default"), str):
            raise PayloadError("payload field 'session' must be a string")


def _parse_directives(payload: dict[str, Any]):
    raw = payload.get("directives", [])
    if not isinstance(raw, list):
        raise PayloadError("payload field 'directives' must be a list")
    try:
        return [directive_from_dict(d) for d in raw]
    except (TypeError, ValueError, AttributeError) as exc:
        raise PayloadError(f"invalid directive: {exc}") from exc


def _summary(plan) -> dict[str, Any]:
    return {
        "total_cost": plan.breakdown.total,
        "operational_cost": plan.breakdown.operational,
        "latency_penalty": plan.breakdown.latency_penalty,
        "latency_violations": plan.latency_violations,
        "datacenters_used": plan.datacenters_used,
        "solver": plan.solver,
    }


def _execute_plan(payload: dict[str, Any]) -> dict[str, Any]:
    from ..api import solve as plan_solve

    state = _require_state(payload)
    options = _planner_options(payload)
    # Route through the unified entry point so the wire `method` field
    # (auto/milp/decomposition/greedy) actually selects the engine.
    result = plan_solve(state, options=options)
    summary = _summary(result.plan)
    summary["method"] = result.method
    if math.isfinite(result.gap):
        summary["gap"] = result.gap
    return {"plan": plan_to_dict(result.plan), "summary": summary}


def _apply_directive(session: IterativeSession, directive) -> None:
    if directive.kind == "pin":
        session.pin(directive.group, directive.datacenter)
    elif directive.kind == "forbid":
        session.forbid(directive.group, directive.datacenter)
    elif directive.kind == "retire_site":
        session.retire_site(directive.datacenter)
    elif directive.kind == "cap_groups":
        session.cap_groups(directive.datacenter, directive.limit)
    else:  # directive_from_dict already screens kinds; belt and braces
        raise PayloadError(f"unknown directive kind {directive.kind!r}")


def _execute_refine(
    payload: dict[str, Any], sessions: dict[str, "_SessionEntry"]
) -> dict[str, Any]:
    session_id = payload.get("session", "default")
    directives = _parse_directives(payload)
    entry = sessions.get(session_id)

    # Warm only when the *whole* request prefix matches: same base
    # state and options (by canonical fingerprint) and a directive list
    # that extends the session's.  A client reusing a session id with a
    # different state or options gets a rebuild, not a silently stale
    # plan against the old model.
    base_fp = payload_fingerprint([payload.get("state"), payload.get("options")])
    warm = (
        entry is not None
        and entry.base_fingerprint == base_fp
        and entry.session.directives == directives[: len(entry.session.directives)]
    )
    if warm:
        session = entry.session
    else:
        session = IterativeSession(
            _require_state(payload), _planner_options(payload), incremental=True
        )
        sessions[session_id] = _SessionEntry(base_fp, session)
    for directive in directives[len(session.directives):]:
        _apply_directive(session, directive)

    plan = session.plan()
    cache = session.solve_cache
    return {
        "plan": plan_to_dict(plan),
        "summary": _summary(plan),
        "session": session_id,
        "warm": warm,
        "directives_applied": len(session.directives),
        "solve_cache": cache.stats() if cache is not None else None,
    }


class _SessionEntry:
    """A worker's warm refine session plus the request base it answers.

    ``base_fingerprint`` hashes the payload's state + options; a refine
    request only reuses the warm session when it matches, so a session
    id recycled with different inputs rebuilds instead of silently
    planning against the old model.
    """

    __slots__ = ("base_fingerprint", "session")

    def __init__(self, base_fingerprint: str, session: IterativeSession) -> None:
        self.base_fingerprint = base_fingerprint
        self.session = session


def _execute_compare(payload: dict[str, Any]) -> dict[str, Any]:
    from ..experiments.comparison import run_comparison

    state = _require_state(payload)
    options = _planner_options(payload)
    result = run_comparison(
        state,
        enable_dr=options.enable_dr,
        backend=options.backend,
        wan_model=options.wan_model,
        solver_options=dict(options.solver_options),
    )
    algorithms = {}
    for algo in [result.asis, result.manual, result.greedy, result.etransform]:
        algorithms[algo.algorithm] = {
            "total_cost": algo.total_cost,
            "operational_cost": algo.operational_cost,
            "latency_penalty": algo.latency_penalty,
            "latency_violations": algo.latency_violations,
            "datacenters_used": algo.datacenters_used,
            "runtime_seconds": algo.runtime_seconds,
        }
    return {
        "dataset": result.dataset,
        "algorithms": algorithms,
        "reductions": {
            name: result.reduction(name) for name in ("manual", "greedy", "etransform")
        },
    }


def _execute_simulate(payload: dict[str, Any]) -> dict[str, Any]:
    from ..sim import FailureModelConfig, SimulatorConfig, simulate_plan

    state = _require_state(payload)
    options = _planner_options(payload)
    sim = payload.get("simulation", {})
    if not isinstance(sim, dict):
        raise PayloadError("payload field 'simulation' must be an object")
    plan = ETransformPlanner(state, options).build_plan()
    config = SimulatorConfig(
        horizon_months=float(sim.get("horizon_months", 60.0)),
        failure=FailureModelConfig(
            mtbf_hours=float(sim.get("mtbf_hours", 10 * 8760.0)),
            mttr_hours=float(sim.get("mttr_hours", 96.0)),
            seed=int(sim.get("seed", 0)),
        ),
    )
    report = simulate_plan(state, plan, config)
    return {
        "plan_summary": _summary(plan),
        "outages": report.outages,
        "failovers": report.total_failovers,
        "mean_availability": report.mean_availability,
        "total_downtime_hours": report.total_downtime_hours,
        "pool_shortfalls": len(report.shortfalls),
        "summary": report.summary(),
    }


def execute_job(
    kind: JobKind,
    payload: dict[str, Any],
    sessions: dict[str, _SessionEntry] | None = None,
) -> tuple[dict[str, Any], float]:
    """Run one job; returns ``(result, elapsed_seconds)``.

    ``sessions`` is the worker's session registry (refine affinity);
    pass ``None`` for one-shot execution (the sequential benchmark
    baseline does).
    """
    start = time.monotonic()
    if kind is JobKind.PLAN:
        result = _execute_plan(payload)
    elif kind is JobKind.REFINE:
        result = _execute_refine(payload, sessions if sessions is not None else {})
    elif kind is JobKind.COMPARE:
        result = _execute_compare(payload)
    elif kind is JobKind.SIMULATE:
        result = _execute_simulate(payload)
    else:
        raise PayloadError(f"unknown job kind {kind!r}")
    elapsed = time.monotonic() - start
    result["backend"] = (payload.get("options") or {}).get("backend", "auto")
    return result, elapsed
