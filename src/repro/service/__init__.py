"""The long-running planning service (paper Fig. 5, module 4, as a daemon).

Turns the one-shot planner into an always-on system: jobs (plan /
refine / compare / simulate) arrive over a stdlib HTTP JSON API, run on
a bounded pool of worker *processes* (one solver per process — a wedged
simplex can never stall the service), and results are deduplicated
through a fingerprint-keyed cache.  Sequential refine jobs against the
same session are routed to the worker holding that session's warm
:class:`~repro.core.incremental.RevisionedModel`, so the incremental
re-solve engine pays off across HTTP requests, not just within one
process's lifetime.

Layers, bottom up: :mod:`~repro.service.jobs` (the job model and its
lifecycle state machine), :mod:`~repro.service.executor` (what runs
inside a worker), :mod:`~repro.service.workers` (the process pool),
:mod:`~repro.service.manager` (queueing, retries, timeouts, cache,
journal), :mod:`~repro.service.http` (the API), and
:mod:`~repro.service.client` (a caller-side helper).
"""

from .client import JobFailedError, ServiceClient, ServiceError
from .config import ServiceConfig
from .executor import PayloadError, execute_job
from .jobs import (
    CACHEABLE_KINDS,
    TERMINAL_STATES,
    JobKind,
    JobRecord,
    JobState,
)
from .manager import (
    JobManager,
    QueueFullError,
    ServiceUnavailableError,
    UnknownJobError,
    replay_journal,
)
from .cluster import JobStore, MemoryJobStore, SqliteJobStore, open_store
from .http import PlanningServer, run_service
from .workers import WorkerPool

__all__ = [
    "CACHEABLE_KINDS",
    "JobFailedError",
    "JobKind",
    "JobManager",
    "JobRecord",
    "JobState",
    "JobStore",
    "MemoryJobStore",
    "PayloadError",
    "PlanningServer",
    "QueueFullError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailableError",
    "SqliteJobStore",
    "TERMINAL_STATES",
    "UnknownJobError",
    "WorkerPool",
    "execute_job",
    "open_store",
    "replay_journal",
    "run_service",
]
