"""The bounded process worker pool.

One solver per process: a wedged simplex, a pathological branch-and-
bound or a hard crash in native code takes down *its worker*, never the
service.  Workers are plain ``multiprocessing`` processes (the ``fork``
start method where available, so workers inherit the already-imported
solver stack instead of paying a cold interpreter start each) with a
private inbox queue each — private inboxes are what give refine jobs
worker affinity — and a private result pipe each.  Results deliberately
do *not* share a queue: the manager kills workers (timeouts,
cancellation), and killing a process mid-``put`` on a shared
``multiprocessing.Queue`` can leave the queue's pipe/lock corrupt for
every other producer.  A per-worker ``Pipe`` confines any such damage
to the killed worker's connection, which the manager simply discards.

The pool only *hosts* processes; job bookkeeping (retries, timeouts,
cancellation) lives in :class:`repro.service.manager.JobManager`, which
watches ``Process.is_alive()`` and the result pipes.
"""

from __future__ import annotations

import multiprocessing
import signal
from typing import Any

from ..telemetry import set_progress_sink
from .executor import execute_job
from .jobs import JobKind

#: Message sent to a worker inbox to make it exit its loop.
STOP = None

#: Ticks inside this window are dropped before they reach the result
#: pipe — a hot branch-and-bound loop must not flood the manager.
PROGRESS_MIN_INTERVAL = 0.2


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def worker_main(worker_id: int, inbox, results) -> None:
    """The worker process loop: take a job, run it, report back.

    Keeps the per-process refine-session registry alive across jobs —
    that is what lets sequential refine requests against one session
    reuse a warm :class:`~repro.core.incremental.RevisionedModel`.
    ``results`` is this worker's private end of its result pipe.
    """
    # The manager owns lifecycle; a terminal Ctrl-C must not kill
    # workers before the manager drains them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    sessions: dict[str, Any] = {}
    while True:
        message = inbox.get()
        if message is STOP:
            break
        job_id, kind, payload = message

        def forward_tick(event: dict, _job_id: str = job_id) -> None:
            # Rides the same private pipe as the final result; the
            # manager files it under the running job's event stream.
            results.send((worker_id, _job_id, "progress", event, 0.0))

        set_progress_sink(forward_tick, min_interval=PROGRESS_MIN_INTERVAL)
        try:
            result, elapsed = execute_job(JobKind(kind), payload, sessions)
            results.send((worker_id, job_id, "ok", result, elapsed))
        except BaseException as exc:  # noqa: BLE001 - must never kill the loop
            results.send(
                (worker_id, job_id, "error", f"{type(exc).__name__}: {exc}", 0.0)
            )
        finally:
            set_progress_sink(None)


class WorkerHandle:
    """One pool slot: the live process plus manager-side bookkeeping."""

    def __init__(self, worker_id: int, ctx) -> None:
        self.worker_id = worker_id
        self._ctx = ctx
        self.inbox = ctx.Queue()
        #: Manager-side read end of this worker's private result pipe.
        self.results, worker_end = ctx.Pipe(duplex=False)
        self.process = ctx.Process(
            target=worker_main,
            args=(worker_id, self.inbox, worker_end),
            name=f"planning-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        # The child holds its own copy; closing ours makes a worker
        # death observable as EOF on the read end.
        worker_end.close()
        #: Job id currently executing on this worker (manager-side view).
        self.busy_job: str | None = None
        #: Monotonic deadline of the running job, if it has a timeout.
        self.deadline: float | None = None
        #: Refine sessions pinned to this worker.
        self.sessions: set[str] = set()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    @property
    def idle(self) -> bool:
        return self.alive and self.busy_job is None

    def send(self, job_id: str, kind: JobKind, payload: dict) -> None:
        self.inbox.put((job_id, kind.value, payload))

    def stop(self) -> None:
        """Ask the worker to exit after its current job (graceful)."""
        self.inbox.put(STOP)

    def kill(self) -> None:
        """Hard-stop the worker immediately (timeout / cancellation).

        The result pipe is discarded with the process: a worker killed
        mid-``send`` can leave a truncated message in it, and nothing a
        killed worker was reporting is wanted anyway.
        """
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        self.results.close()

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout=timeout)


class WorkerPool:
    """A fixed-size set of :class:`WorkerHandle` slots."""

    def __init__(self, size: int) -> None:
        self._ctx = _mp_context()
        self._next_id = 0
        self.restarts = 0
        self.workers: list[WorkerHandle] = [self._spawn() for _ in range(size)]

    def _spawn(self) -> WorkerHandle:
        handle = WorkerHandle(self._next_id, self._ctx)
        self._next_id += 1
        return handle

    def poll_results(self) -> list[tuple]:
        """Collect every buffered completion message, non-blocking.

        Reads each worker's private result pipe.  A pipe that hits EOF
        (worker died) or yields garbage (worker killed mid-``send``) is
        closed and ignored — the damage cannot reach other workers'
        results, and the reaper re-queues whatever job was in flight.
        """
        messages: list[tuple] = []
        for worker in self.workers:
            conn = worker.results
            if conn.closed:
                continue
            try:
                while conn.poll():
                    messages.append(conn.recv())
            except (EOFError, OSError):
                conn.close()
            except Exception:  # truncated pickle from a killed sender
                conn.close()
        return messages

    def restart(self, worker: WorkerHandle) -> WorkerHandle:
        """Replace a dead/killed worker with a fresh process, in place.

        The dead worker's inbox, result pipe and any refine sessions it
        held are abandoned; the manager re-queues its in-flight job from
        the job record, so nothing is lost except warm solver state.
        """
        worker.kill()  # reap if half-dead; no-op when already gone
        index = self.workers.index(worker)
        replacement = self._spawn()
        self.workers[index] = replacement
        self.restarts += 1
        return replacement

    def idle_workers(self) -> list[WorkerHandle]:
        return [w for w in self.workers if w.idle]

    def worker_for_session(self, session: str) -> WorkerHandle | None:
        for worker in self.workers:
            if session in worker.sessions and worker.alive:
                return worker
        return None

    @property
    def alive_count(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    @property
    def busy_count(self) -> int:
        return sum(1 for w in self.workers if w.busy_job is not None)

    def stop_all(self, timeout: float = 5.0) -> None:
        """Graceful stop: sentinel each inbox, join, then kill stragglers."""
        for worker in self.workers:
            if worker.alive:
                worker.stop()
        for worker in self.workers:
            worker.join(timeout=timeout)
        for worker in self.workers:
            if worker.alive:
                worker.kill()
            elif not worker.results.closed:
                worker.results.close()

    def kill_all(self) -> None:
        for worker in self.workers:
            worker.kill()
