"""The stdlib HTTP JSON API over :class:`JobManager`.

Routes::

    POST   /jobs          {"kind": ..., "payload": {...},
                           "timeout": s?, "max_retries": n?}   → 201 job
    GET    /jobs          list of job summaries (no result bodies)
    GET    /jobs/{id}     full job record, result included       → 200/404
    DELETE /jobs/{id}     cancel                                 → 200/404/409
    GET    /healthz       liveness + worker census               → 200/503
    GET    /metrics       queues, jobs by state, cache, solve-time
                          histograms, telemetry counters         → 200

Errors are JSON too: ``{"error": "..."}`` with 400 for malformed
requests, 404 for unknown ids, 409 for cancelling a finished job and
503 while draining.  Built on :class:`http.server.ThreadingHTTPServer`
— requests are cheap bookkeeping; all heavy lifting happens on the
worker pool, so thread-per-request is plenty.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .config import ServiceConfig
from .executor import PayloadError
from .jobs import JobState
from .manager import JobManager, ServiceUnavailableError, UnknownJobError


class PlanningRequestHandler(BaseHTTPRequestHandler):
    server_version = "etransform-planning/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(self, status: int, body: dict[str, Any]) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise PayloadError("request body must be a JSON object")
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise PayloadError(f"request body is not valid JSON: {exc.msg}") from exc
        if not isinstance(body, dict):
            raise PayloadError("request body must be a JSON object")
        return body

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            health = self.manager.healthz()
            self._send_json(200 if health["status"] == "ok" else 503, health)
        elif path == "/metrics":
            self._send_json(200, self.manager.stats())
        elif path == "/jobs":
            self._send_json(
                200,
                {
                    "jobs": [
                        job.to_dict(include_result=False)
                        for job in self.manager.jobs()
                    ]
                },
            )
        elif path.startswith("/jobs/"):
            try:
                record = self.manager.get(path.removeprefix("/jobs/"))
            except UnknownJobError:
                self._error(404, "no such job")
                return
            self._send_json(200, record.to_dict())
        else:
            self._error(404, f"no route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no route {self.path!r}")
            return
        try:
            body = self._read_body()
            kind = body.get("kind")
            if not isinstance(kind, str):
                raise PayloadError("field 'kind' must be a job kind string")
            record = self.manager.submit(
                kind,
                body.get("payload") or {},
                timeout=body.get("timeout"),
                max_retries=body.get("max_retries"),
            )
        except ServiceUnavailableError as exc:
            self._error(503, str(exc))
        except (PayloadError, ValueError, TypeError) as exc:
            self._error(400, str(exc))
        else:
            self._send_json(201, record.to_dict())

    def do_DELETE(self) -> None:  # noqa: N802
        if not self.path.startswith("/jobs/"):
            self._error(404, f"no route {self.path!r}")
            return
        try:
            cancelled = self.manager.cancel(self.path.rstrip("/").removeprefix("/jobs/"))
        except UnknownJobError:
            self._error(404, "no such job")
            return
        if cancelled:
            self._send_json(200, {"cancelled": True})
        else:
            self._error(409, "job already finished")


class PlanningServer(ThreadingHTTPServer):
    """The HTTP front end; owns nothing but the listening socket."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig, manager: JobManager, verbose: bool = False):
        super().__init__((config.host, config.port), PlanningRequestHandler)
        self.manager = manager
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def run_service(
    config: ServiceConfig,
    verbose: bool = False,
    ready_callback=None,
    install_signal_handlers: bool = True,
) -> int:
    """Boot the manager + HTTP server and serve until SIGTERM/SIGINT.

    The ``repro serve`` CLI entry point.  ``port 0`` binds an ephemeral
    port; the bound address is printed (and passed to
    ``ready_callback``) so callers can discover it.  On SIGTERM the
    service drains: in-flight and queued jobs finish (up to
    ``drain_timeout``), workers exit, then the process does — exit code
    0 on a clean drain, 1 otherwise.
    """
    manager = JobManager(config).start()
    try:
        server = PlanningServer(config, manager, verbose=verbose)
    except OSError as exc:
        manager.shutdown(drain=False)
        print(f"cannot bind {config.host}:{config.port}: {exc}")
        return 1
    stop = threading.Event()

    if install_signal_handlers:
        def _request_stop(signum, frame):
            stop.set()
            # Wake serve_forever promptly; shutdown() must come from
            # another thread than the serving one.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    print(
        f"planning service listening on {server.url} "
        f"({config.workers} workers, journal={config.journal_path or 'off'})",
        flush=True,
    )
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        drained = manager.shutdown(drain=True)
        print(
            "planning service stopped "
            + ("(drained cleanly)" if drained else "(drain timed out)"),
            flush=True,
        )
    return 0 if drained else 1
