"""The stdlib HTTP JSON API over :class:`JobManager`.

Routes::

    POST   /jobs          {"kind": ..., "payload": {...},
                           "timeout": s?, "max_retries": n?}   → 201 job
    GET    /jobs          list of job summaries (no result bodies)
    GET    /jobs/{id}     full job record, result included       → 200/404
    GET    /jobs/{id}/events   chunked ndjson event stream
                          (?after=N resumes mid-stream)          → 200/404
    DELETE /jobs/{id}     cancel                                 → 200/404/409
    GET    /healthz       liveness + worker census               → 200/503
    GET    /metrics       queues, jobs by state, cache, solve-time
                          histograms, telemetry counters         → 200

Errors are JSON too: ``{"error": "..."}`` with 400 for malformed
requests, 404 for unknown ids, 409 for cancelling a finished job, 429
with a ``Retry-After`` header when admission control rejects a
submission, and 503 while draining.  ``POST /jobs`` bodies may be
JSON or the compact binary wire format (``Content-Type:
application/x-etransform-wire``, :mod:`repro.io.wire`).  Built on
:class:`http.server.ThreadingHTTPServer` — requests are cheap
bookkeeping; all heavy lifting happens on the worker pool, so
thread-per-request is plenty (the event stream ties up one thread per
watcher, all of them blocked in short sleeps).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import urllib.parse
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..io.wire import WIRE_CONTENT_TYPE, WireFormatError, decode_payload
from .config import ServiceConfig
from .executor import PayloadError
from .jobs import JobState
from .manager import (
    JobManager,
    QueueFullError,
    ServiceUnavailableError,
    UnknownJobError,
)

#: How often the event stream re-polls the manager for fresh events.
STREAM_POLL_INTERVAL = 0.05

#: Listening sockets to close in forked children (see below).
_LISTENING_SOCKETS: "weakref.WeakSet" = weakref.WeakSet()
_FORK_HOOK = threading.Event()


def _close_listeners_in_child() -> None:  # pragma: no cover - runs post-fork
    for sock in list(_LISTENING_SOCKETS):
        try:
            sock.close()
        except OSError:
            pass


def register_server_socket(sock) -> None:
    """Make ``sock`` die with any forked child (solver workers).

    ``fork`` copies the whole FD table, so a worker forked while some
    *other* replica's HTTP server is listening in this process keeps
    that listening socket alive after the replica closes it — the port
    then accepts connections into a backlog nothing ever drains, and
    clients hang instead of getting the prompt connection-refused the
    failover path relies on.  Closing every registered listener in the
    ``after_in_child`` fork hook restores honest death semantics.
    """
    if not _FORK_HOOK.is_set():
        _FORK_HOOK.set()
        os.register_at_fork(after_in_child=_close_listeners_in_child)
    _LISTENING_SOCKETS.add(sock)


class PlanningRequestHandler(BaseHTTPRequestHandler):
    server_version = "etransform-planning/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _error(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise PayloadError("request body must be a JSON object")
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        if content_type == WIRE_CONTENT_TYPE:
            try:
                body = decode_payload(raw)
            except WireFormatError as exc:
                raise PayloadError(f"malformed wire body: {exc}") from exc
        else:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise PayloadError(
                    f"request body is not valid JSON: {exc.msg}"
                ) from exc
        if not isinstance(body, dict):
            raise PayloadError("request body must be a JSON object")
        return body

    def _write_chunk(self, data: bytes) -> None:
        """One HTTP/1.1 chunk; an empty ``data`` terminates the stream."""
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        parts = urllib.parse.urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path.startswith("/jobs/") and path.endswith("/events"):
            job_id = path.removeprefix("/jobs/").removesuffix("/events")
            query = urllib.parse.parse_qs(parts.query)
            try:
                after = int(query.get("after", ["0"])[0])
            except ValueError:
                self._error(400, "query parameter 'after' must be an integer")
                return
            self._stream_events(job_id, after)
        elif path == "/healthz":
            health = self.manager.healthz()
            self._send_json(200 if health["status"] == "ok" else 503, health)
        elif path == "/metrics":
            self._send_json(200, self.manager.stats())
        elif path == "/jobs":
            self._send_json(
                200,
                {
                    "jobs": [
                        job.to_dict(include_result=False)
                        for job in self.manager.jobs()
                    ]
                },
            )
        elif path.startswith("/jobs/"):
            try:
                record = self.manager.get(path.removeprefix("/jobs/"))
            except UnknownJobError:
                self._error(404, "no such job")
                return
            self._send_json(200, record.to_dict())
        else:
            self._error(404, f"no route {self.path!r}")

    def _stream_events(self, job_id: str, after: int) -> None:
        """``GET /jobs/{id}/events``: chunked ndjson until terminal.

        One JSON event per line, flushed as it happens, so a watcher
        sees queue/dispatch transitions and solver progress ticks live.
        The stream closes itself once the job reaches a terminal state
        (the final ``state`` event is always delivered first).
        """
        try:
            events, done = self.manager.events(job_id, after)
        except UnknownJobError:
            self._error(404, "no such job")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            while True:
                for event in events:
                    self._write_chunk(json.dumps(event).encode("utf-8") + b"\n")
                    after = max(after, event["seq"])
                if done:
                    break
                time.sleep(STREAM_POLL_INTERVAL)
                events, done = self.manager.events(job_id, after)
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError, UnknownJobError):
            # Watcher went away (or the record was evicted mid-stream);
            # nothing to clean up beyond this request thread.
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no route {self.path!r}")
            return
        try:
            body = self._read_body()
            kind = body.get("kind")
            if not isinstance(kind, str):
                raise PayloadError("field 'kind' must be a job kind string")
            record = self.manager.submit(
                kind,
                body.get("payload") or {},
                timeout=body.get("timeout"),
                max_retries=body.get("max_retries"),
            )
        except QueueFullError as exc:
            self._error(
                429, str(exc), headers={"Retry-After": f"{exc.retry_after:.0f}"}
            )
        except ServiceUnavailableError as exc:
            self._error(503, str(exc))
        except (PayloadError, ValueError, TypeError) as exc:
            self._error(400, str(exc))
        else:
            self._send_json(201, record.to_dict())

    def do_DELETE(self) -> None:  # noqa: N802
        if not self.path.startswith("/jobs/"):
            self._error(404, f"no route {self.path!r}")
            return
        try:
            cancelled = self.manager.cancel(self.path.rstrip("/").removeprefix("/jobs/"))
        except UnknownJobError:
            self._error(404, "no such job")
            return
        if cancelled:
            self._send_json(200, {"cancelled": True})
        else:
            self._error(409, "job already finished")


class PlanningServer(ThreadingHTTPServer):
    """The HTTP front end; owns nothing but the listening socket."""

    daemon_threads = True

    def __init__(self, config: ServiceConfig, manager: JobManager, verbose: bool = False):
        super().__init__((config.host, config.port), PlanningRequestHandler)
        register_server_socket(self.socket)
        self.manager = manager
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def run_service(
    config: ServiceConfig,
    verbose: bool = False,
    ready_callback=None,
    install_signal_handlers: bool = True,
) -> int:
    """Boot the manager + HTTP server and serve until SIGTERM/SIGINT.

    The ``repro serve`` CLI entry point.  ``port 0`` binds an ephemeral
    port; the bound address is printed (and passed to
    ``ready_callback``) so callers can discover it.  On SIGTERM the
    service drains: in-flight and queued jobs finish (up to
    ``drain_timeout``), workers exit, then the process does — exit code
    0 on a clean drain, 1 otherwise.
    """
    manager = JobManager(config).start()
    try:
        server = PlanningServer(config, manager, verbose=verbose)
    except OSError as exc:
        manager.shutdown(drain=False)
        print(f"cannot bind {config.host}:{config.port}: {exc}")
        return 1
    stop = threading.Event()

    if install_signal_handlers:
        def _request_stop(signum, frame):
            stop.set()
            # Wake serve_forever promptly; shutdown() must come from
            # another thread than the serving one.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    print(
        f"planning service listening on {server.url} "
        f"({config.workers} workers, journal={config.journal_path or 'off'})",
        flush=True,
    )
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        drained = manager.shutdown(drain=True)
        print(
            "planning service stopped "
            + ("(drained cleanly)" if drained else "(drain timed out)"),
            flush=True,
        )
    return 0 if drained else 1
