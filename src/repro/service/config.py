"""Configuration for the long-running planning service."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to run, validated up front.

    ``job_timeout`` bounds one *attempt* (the worker is killed past it
    and the job ends ``timeout``); ``max_retries`` bounds how many times
    a job is re-queued after its worker *died* underneath it (timeouts
    are not retried — a solve that blew its budget once will again).
    ``retry_backoff`` is the first re-queue delay, doubling per attempt.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    job_timeout: float | None = 300.0
    max_retries: int = 2
    retry_backoff: float = 0.25
    result_cache_size: int = 128
    #: Max *terminal* job records kept in memory (oldest-finished are
    #: evicted past it; the JSONL journal stays the permanent audit
    #: trail).  ``None`` disables eviction.
    job_history_limit: int | None = 1024
    journal_path: str | None = None
    #: Supervisor loop tick; also the granularity of timeout detection.
    poll_interval: float = 0.02
    #: How long a graceful drain waits for in-flight jobs on shutdown.
    drain_timeout: float = 60.0
    #: Admission control: submissions are rejected with 429 +
    #: ``Retry-After`` once this many jobs are queued (``None`` → accept
    #: everything, the single-process default).
    max_queue_depth: int | None = None
    #: Persistent job store shared by every replica (``None`` keeps the
    #: job table in-process; ``sqlite:///path.db`` or a bare path opens
    #: the shared SQLite store).
    store_url: str | None = None
    #: Stable identity of this replica in the shared store (claims,
    #: recovery after restart).  ``None`` derives a fresh random id.
    replica_id: str | None = None
    #: How often the supervisor polls the shared store for cancellations
    #: requested through *other* replicas.
    remote_cancel_interval: float = 0.25

    def validated(self) -> "ServiceConfig":
        if self.workers < 1:
            raise ValueError("the worker pool needs at least one process")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive (or None for no limit)")
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff cannot be negative")
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size cannot be negative")
        if self.job_history_limit is not None and self.job_history_limit < 1:
            raise ValueError(
                "job_history_limit must be at least 1 (or None for no eviction)"
            )
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                "max_queue_depth must be at least 1 (or None for no limit)"
            )
        if self.remote_cancel_interval <= 0:
            raise ValueError("remote_cancel_interval must be positive")
        return self

    def replace(self, **changes) -> "ServiceConfig":
        return replace(self, **changes)
