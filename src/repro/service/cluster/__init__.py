"""The cluster tier: persistent job stores, the dispatcher, replicas.

Everything here is optional — a bare ``JobManager`` with no store
behaves exactly like the single-process service tier it grew out of.

Submodules above :mod:`~repro.service.cluster.store` are loaded
lazily: the manager imports the store at import time, and the replica
harness imports the manager, so an eager package init would be a
cycle.
"""

from .store import (
    LIVE_STATES,
    JobStore,
    MemoryJobStore,
    SqliteJobStore,
    open_store,
)

_DISPATCHER_NAMES = frozenset(
    {
        "ClusterQueueFullError",
        "Dispatcher",
        "DispatcherServer",
        "NoHealthyReplicaError",
        "Replica",
        "routing_key",
        "run_dispatcher",
    }
)
_REPLICA_NAMES = frozenset(
    {"ClusterHarness", "InProcessReplica", "SubprocessReplica"}
)

__all__ = [
    "JobStore",
    "LIVE_STATES",
    "MemoryJobStore",
    "SqliteJobStore",
    "open_store",
    *sorted(_DISPATCHER_NAMES),
    *sorted(_REPLICA_NAMES),
]


def __getattr__(name: str):
    if name in _DISPATCHER_NAMES:
        from . import dispatcher

        return getattr(dispatcher, name)
    if name in _REPLICA_NAMES:
        from . import replica

        return getattr(replica, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
