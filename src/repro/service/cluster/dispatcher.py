"""The cluster dispatcher: one front door over N ``serve`` replicas.

Clients talk to the dispatcher exactly as they would to a single
replica — same routes, same JSON — and the dispatcher:

* **shards by state fingerprint** — the routing key is the fingerprint
  of the payload's ``state`` document, so every job about one
  enterprise state (its plan, its refine session, its what-if
  simulations) lands on the same replica and reuses that replica's warm
  :class:`~repro.lp.SolveCache` and pinned refine sessions.  Rendezvous
  (highest-random-weight) hashing keeps the key→replica mapping stable
  when replicas are evicted or re-added: only keys owned by the dead
  replica move;
* **keeps a shared result cache** — fingerprint-keyed results observed
  from *any* replica are served directly on resubmission, so a plan
  solved through replica A is a cache hit when resubmitted through the
  dispatcher even if the shard hash would have sent it to replica B;
* **applies cluster-level backpressure** — a replica answering 429 is
  not the end: the job is offered to every other healthy replica once,
  and only when all of them refuse does the client see 429, with the
  largest ``Retry-After`` the cluster quoted;
* **health-gates the replica set** — a background monitor probes
  ``/healthz``; ``eviction_threshold`` consecutive failures evict a
  replica from routing, a later successful probe re-adds it.  Reads for
  jobs owned by a dead replica fall back to any healthy replica and
  then to the shared job store, so results outlive their replica.

The dispatcher holds no job state of its own beyond the owner map and
the result cache — restartable at will; the job store is the durable
tier.
"""

from __future__ import annotations

import hashlib
import json
import signal
import threading
import time
import urllib.parse
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable

from ...lp.fingerprint import payload_fingerprint
from ...telemetry import declare_counters, metrics
from ..client import ServiceClient, ServiceError
from ..jobs import CACHEABLE_KINDS, JobKind, new_job_id
from .store import JobStore, open_store

DISPATCHER_COUNTERS = (
    "dispatcher.jobs.routed",
    "dispatcher.jobs.rerouted",
    "dispatcher.jobs.rejected",
    "dispatcher.cache.hits",
    "dispatcher.replicas.evicted",
    "dispatcher.replicas.readded",
)

declare_counters(__name__, DISPATCHER_COUNTERS)

#: Terminal job states, as the wire spells them.
_TERMINAL = ("succeeded", "failed", "cancelled", "timeout")


class NoHealthyReplicaError(RuntimeError):
    """Every replica is down or evicted (maps to HTTP 503)."""


class ClusterQueueFullError(RuntimeError):
    """Every healthy replica refused the job (maps to HTTP 429)."""

    def __init__(self, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(
            f"all replicas are saturated; retry in {retry_after:.0f}s"
        )


class Replica:
    """One backend ``serve`` process, as the dispatcher sees it."""

    def __init__(self, url: str, client: ServiceClient) -> None:
        self.url = url.rstrip("/")
        self.client = client
        self.healthy = True
        self.consecutive_failures = 0
        self.last_error: str | None = None
        self.last_probe: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
        }


def routing_key(kind: JobKind, payload: dict[str, Any]) -> str:
    """The shard key: the *state* fingerprint when the payload has one.

    Keying on the state document (not the full payload) is what makes
    affinity useful: a plan, its refinements and its simulations all
    share the state and therefore the replica — and with it the warm
    solve cache and the pinned refine session.
    """
    state = payload.get("state")
    if isinstance(state, dict) and state:
        return payload_fingerprint(state)
    return payload_fingerprint([kind.value, payload])


class Dispatcher:
    """Routing, caching and failover policy (no HTTP of its own)."""

    def __init__(
        self,
        replica_urls: Iterable[str],
        store: "JobStore | None" = None,
        store_url: str | None = None,
        cache_size: int = 256,
        health_interval: float = 1.0,
        eviction_threshold: int = 3,
        client_timeout: float = 30.0,
    ) -> None:
        urls = [url.rstrip("/") for url in replica_urls]
        if not urls:
            raise ValueError("the dispatcher needs at least one replica URL")
        if len(set(urls)) != len(urls):
            raise ValueError("duplicate replica URLs")
        if cache_size < 0:
            raise ValueError("cache_size cannot be negative")
        if health_interval <= 0:
            raise ValueError("health_interval must be positive")
        if eviction_threshold < 1:
            raise ValueError("eviction_threshold must be at least 1")
        self.replicas = [
            Replica(
                url,
                ServiceClient(
                    url,
                    timeout=client_timeout,
                    # The dispatcher owns retry policy; the per-client
                    # connection-refused retry would only slow failover.
                    connect_retries=0,
                    connect_timeout=min(client_timeout, 2.0),
                ),
            )
            for url in urls
        ]
        self._store = store
        self._owns_store = False
        if self._store is None and store_url is not None:
            self._store = open_store(store_url)
            self._owns_store = True
        self._lock = threading.RLock()
        #: job id → owning replica URL (routing for status/result reads).
        self._owners: dict[str, str] = {}
        #: Jobs the dispatcher completed itself from the result cache.
        self._local: dict[str, dict[str, Any]] = {}
        self._cache: "OrderedDict[str, dict]" = OrderedDict()
        self._cache_size = cache_size
        self.cache_hits = 0
        self._health_interval = health_interval
        self._eviction_threshold = eviction_threshold
        self._stop = threading.Event()
        self._monitor: threading.Thread | None = None
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Dispatcher":
        if self._monitor is not None:
            raise RuntimeError("dispatcher already started")
        self.started_at = time.time()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="dispatcher-health", daemon=True
        )
        self._monitor.start()
        return self

    def shutdown(self) -> None:
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
            self._monitor = None
        if self._store is not None and self._owns_store:
            self._store.close()
            self._store = None

    def __enter__(self) -> "Dispatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- health ------------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stop.wait(self._health_interval):
            for replica in self.replicas:
                self.probe(replica)

    def probe(self, replica: Replica) -> bool:
        """One health check; updates eviction state, returns liveness."""
        try:
            health = replica.client.healthz()
            ok = health.get("status") in ("ok", "degraded")
            error = None if ok else f"status {health.get('status')}"
        except (ServiceError, OSError) as exc:
            ok, error = False, str(exc)
        with self._lock:
            replica.last_probe = time.time()
            replica.last_error = error
            if ok:
                if not replica.healthy:
                    metrics.increment("dispatcher.replicas.readded")
                replica.healthy = True
                replica.consecutive_failures = 0
            else:
                replica.consecutive_failures += 1
                if (
                    replica.healthy
                    and replica.consecutive_failures >= self._eviction_threshold
                ):
                    replica.healthy = False
                    metrics.increment("dispatcher.replicas.evicted")
        return ok

    def _mark_failure(self, replica: Replica, error: str) -> None:
        """An actual request failed — count it like a failed probe."""
        with self._lock:
            replica.last_error = error
            replica.consecutive_failures += 1
            if (
                replica.healthy
                and replica.consecutive_failures >= self._eviction_threshold
            ):
                replica.healthy = False
                metrics.increment("dispatcher.replicas.evicted")

    def healthy_replicas(self) -> list[Replica]:
        with self._lock:
            return [r for r in self.replicas if r.healthy]

    # -- routing -----------------------------------------------------------

    def _ranked(self, key: str) -> list[Replica]:
        """Healthy replicas by rendezvous weight for ``key``, best first.

        Each (key, replica) pair hashes to an independent weight; the
        max wins.  Removing a replica only remaps the keys it owned,
        which is exactly the affinity-preservation property sharded
        solve caches need.
        """
        replicas = self.healthy_replicas()
        return sorted(
            replicas,
            key=lambda r: hashlib.sha256(
                f"{key}|{r.url}".encode("utf-8")
            ).digest(),
            reverse=True,
        )

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> dict[str, Any]:
        """Route one submission; returns the job record dict.

        Raises :class:`ServiceError` (payload rejected by the replica),
        :class:`ClusterQueueFullError` (every healthy replica answered
        429) or :class:`NoHealthyReplicaError`.
        """
        kind = JobKind(kind)
        fingerprint = (
            payload_fingerprint([kind.value, payload])
            if kind in CACHEABLE_KINDS
            else None
        )
        if fingerprint is not None:
            with self._lock:
                cached = self._cache.get(fingerprint)
                if cached is not None:
                    self._cache.move_to_end(fingerprint)
                    self.cache_hits += 1
                    metrics.increment("dispatcher.cache.hits")
                    record = {
                        "id": new_job_id(),
                        "kind": kind.value,
                        "state": "succeeded",
                        "via": "dispatcher-cache",
                        "fingerprint": fingerprint,
                        "created_at": time.time(),
                        "finished_at": time.time(),
                        "elapsed": 0.0,
                        "attempts": 0,
                        "error": None,
                        "result": dict(cached),
                    }
                    self._local[record["id"]] = record
                    return record
        key = routing_key(kind, payload)
        candidates = self._ranked(key)
        if not candidates:
            raise NoHealthyReplicaError("no healthy replica to route to")
        retry_afters: list[float] = []
        last_error: ServiceError | None = None
        for position, replica in enumerate(candidates):
            try:
                record = replica.client.submit(
                    kind.value, payload, timeout=timeout, max_retries=max_retries
                )
            except ServiceError as exc:
                if exc.status == 429:
                    # Saturated, not broken: spill to the next-ranked
                    # replica (losing affinity beats losing the job).
                    retry_afters.append(exc.retry_after or 1.0)
                    last_error = exc
                    continue
                if exc.status == 0 or exc.status >= 500:
                    self._mark_failure(replica, str(exc))
                    last_error = exc
                    continue
                raise  # 4xx: the payload is bad everywhere
            with self._lock:
                self._owners[record["id"]] = replica.url
            metrics.increment("dispatcher.jobs.routed")
            if position > 0:
                metrics.increment("dispatcher.jobs.rerouted")
            self._maybe_cache(record)
            return record
        if retry_afters:
            metrics.increment("dispatcher.jobs.rejected")
            raise ClusterQueueFullError(max(retry_afters))
        raise NoHealthyReplicaError(str(last_error or "no replica accepted"))

    def _maybe_cache(self, record: dict[str, Any]) -> None:
        """Feed the shared cache from any completed record we see."""
        if (
            record.get("state") == "succeeded"
            and record.get("fingerprint")
            and isinstance(record.get("result"), dict)
        ):
            with self._lock:
                self._cache[record["fingerprint"]] = dict(record["result"])
                self._cache.move_to_end(record["fingerprint"])
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)

    # -- reads -------------------------------------------------------------

    def _owner(self, job_id: str) -> Replica | None:
        with self._lock:
            url = self._owners.get(job_id)
        if url is None:
            return None
        for replica in self.replicas:
            if replica.url == url:
                return replica
        return None

    def _read_candidates(self, job_id: str) -> list[Replica]:
        """Replicas to ask about a job: owner first, then the rest."""
        owner = self._owner(job_id)
        ordered: list[Replica] = []
        if owner is not None and owner.healthy:
            ordered.append(owner)
        ordered.extend(
            r for r in self.healthy_replicas() if r is not owner
        )
        return ordered

    def job(self, job_id: str) -> dict[str, Any] | None:
        """The job record, from wherever still answers for it."""
        with self._lock:
            local = self._local.get(job_id)
        if local is not None:
            return dict(local)
        for replica in self._read_candidates(job_id):
            try:
                record = replica.client.job(job_id)
            except ServiceError as exc:
                if exc.status == 404:
                    continue  # this replica genuinely does not know it
                self._mark_failure(replica, str(exc))
                continue
            self._maybe_cache(record)
            return record
        if self._store is not None:
            return self._store.get(job_id)
        return None

    def cancel(self, job_id: str) -> bool | None:
        """``True`` cancelled, ``False`` already finished, ``None`` unknown."""
        with self._lock:
            local = self._local.get(job_id)
        if local is not None:
            return False  # dispatcher-cache jobs are born terminal
        for replica in self._read_candidates(job_id):
            try:
                replica.client.cancel(job_id)
                return True
            except ServiceError as exc:
                if exc.status == 409:
                    return False
                if exc.status == 404:
                    continue
                self._mark_failure(replica, str(exc))
                continue
        if self._store is not None:
            data = self._store.get(job_id)
            if data is not None:
                if data.get("state") in _TERMINAL:
                    return False
                self._store.request_cancel(job_id)
                return True
        return None

    def events(self, job_id: str, after: int = 0):
        """``(events, done)`` like the manager's, across the cluster.

        The streaming endpoint polls this; events come from the owner
        replica when it is up, otherwise from any replica that knows
        the job, otherwise straight from the shared store.
        """
        for replica in self._read_candidates(job_id):
            try:
                record = replica.client.job(job_id)
            except ServiceError as exc:
                if exc.status == 404:
                    continue
                self._mark_failure(replica, str(exc))
                continue
            events = self._replica_events(replica, job_id, after)
            if events is not None:
                return events, record.get("state") in _TERMINAL
        with self._lock:
            local = self._local.get(job_id)
        if local is not None:
            return [], True
        if self._store is not None:
            data = self._store.get(job_id)
            if data is not None:
                events = [
                    {"seq": seq, **event}
                    for seq, event in self._store.events(job_id, after)
                ]
                return events, data.get("state") in _TERMINAL
        raise KeyError(job_id)

    def _replica_events(
        self, replica: Replica, job_id: str, after: int
    ) -> list[dict] | None:
        """One non-blocking-ish slurp of a replica's event stream."""
        events: list[dict] = []
        try:
            # The replica closes the stream at terminal state; for live
            # jobs we only want what is buffered *now*, so read with a
            # short gap timeout and treat it as end-of-batch.
            for event in replica.client.stream(job_id, after=after, timeout=0.5):
                events.append(event)
        except ServiceError as exc:
            if exc.status == 404:
                return None
            return events or None
        except OSError:
            return events  # gap timeout: batch complete
        return events

    # -- introspection -----------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        with self._lock:
            replicas = [r.to_dict() for r in self.replicas]
        healthy = sum(1 for r in replicas if r["healthy"])
        return {
            "status": "ok" if healthy else "down",
            "role": "dispatcher",
            "replicas": replicas,
            "replicas_healthy": healthy,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            cache_size = len(self._cache)
            routed = len(self._owners)
        counters = {
            name: value
            for name, value in metrics.snapshot().items()
            if name.startswith("dispatcher.")
        }
        return {
            "role": "dispatcher",
            "jobs_routed": routed,
            "cache": {"size": cache_size, "hits": self.cache_hits},
            "counters": counters,
            "replicas": [r.to_dict() for r in self.replicas],
        }


class DispatcherRequestHandler(BaseHTTPRequestHandler):
    """The dispatcher's HTTP face — route-compatible with a replica."""

    server_version = "etransform-dispatcher/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def dispatcher(self) -> Dispatcher:
        return self.server.dispatcher  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        body: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _error(
        self, status: int, message: str, headers: dict[str, str] | None = None
    ) -> None:
        self._send_json(status, {"error": message}, headers=headers)

    def do_GET(self) -> None:  # noqa: N802
        parts = urllib.parse.urlsplit(self.path)
        path = parts.path.rstrip("/") or "/"
        if path == "/healthz":
            health = self.dispatcher.healthz()
            self._send_json(200 if health["status"] == "ok" else 503, health)
        elif path == "/metrics":
            self._send_json(200, self.dispatcher.stats())
        elif path.startswith("/jobs/") and path.endswith("/events"):
            job_id = path.removeprefix("/jobs/").removesuffix("/events")
            query = urllib.parse.parse_qs(parts.query)
            try:
                after = int(query.get("after", ["0"])[0])
            except ValueError:
                self._error(400, "query parameter 'after' must be an integer")
                return
            self._stream_events(job_id, after)
        elif path.startswith("/jobs/"):
            record = self.dispatcher.job(path.removeprefix("/jobs/"))
            if record is None:
                self._error(404, "no such job")
            else:
                self._send_json(200, record)
        else:
            self._error(404, f"no route {self.path!r}")

    def _stream_events(self, job_id: str, after: int) -> None:
        try:
            events, done = self.dispatcher.events(job_id, after)
        except KeyError:
            self._error(404, "no such job")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()

        def chunk(data: bytes) -> None:
            self.wfile.write(
                f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"
            )
            self.wfile.flush()

        try:
            while True:
                for event in events:
                    chunk(json.dumps(event).encode("utf-8") + b"\n")
                    after = max(after, event.get("seq", after))
                if done:
                    break
                time.sleep(0.05)
                events, done = self.dispatcher.events(job_id, after)
            chunk(b"")
        except (BrokenPipeError, ConnectionResetError, KeyError):
            self.close_connection = True

    def do_POST(self) -> None:  # noqa: N802
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"no route {self.path!r}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw) if raw else None
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc.msg}")
            return
        if not isinstance(body, dict) or not isinstance(body.get("kind"), str):
            self._error(400, "request body must be a JSON object with 'kind'")
            return
        try:
            record = self.dispatcher.submit(
                body["kind"],
                body.get("payload") or {},
                timeout=body.get("timeout"),
                max_retries=body.get("max_retries"),
            )
        except ClusterQueueFullError as exc:
            self._error(
                429, str(exc), headers={"Retry-After": f"{exc.retry_after:.0f}"}
            )
        except NoHealthyReplicaError as exc:
            self._error(503, str(exc))
        except ServiceError as exc:
            self._error(exc.status if 400 <= exc.status < 500 else 502, str(exc))
        except ValueError as exc:
            self._error(400, str(exc))
        else:
            self._send_json(201, record)

    def do_DELETE(self) -> None:  # noqa: N802
        if not self.path.startswith("/jobs/"):
            self._error(404, f"no route {self.path!r}")
            return
        job_id = self.path.rstrip("/").removeprefix("/jobs/")
        cancelled = self.dispatcher.cancel(job_id)
        if cancelled is None:
            self._error(404, "no such job")
        elif cancelled:
            self._send_json(200, {"cancelled": True})
        else:
            self._error(409, "job already finished")


class DispatcherServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self,
        host: str,
        port: int,
        dispatcher: Dispatcher,
        verbose: bool = False,
    ) -> None:
        super().__init__((host, port), DispatcherRequestHandler)
        from ..http import register_server_socket

        register_server_socket(self.socket)
        self.dispatcher = dispatcher
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def run_dispatcher(
    replicas: Iterable[str],
    host: str = "127.0.0.1",
    port: int = 8079,
    store_url: str | None = None,
    cache_size: int = 256,
    health_interval: float = 1.0,
    verbose: bool = False,
    ready_callback=None,
    install_signal_handlers: bool = True,
) -> int:
    """The ``etransform dispatch`` entry point; serves until SIGTERM."""
    dispatcher = Dispatcher(
        replicas,
        store_url=store_url,
        cache_size=cache_size,
        health_interval=health_interval,
    ).start()
    # Probe synchronously once so routing works before the first tick.
    for replica in dispatcher.replicas:
        dispatcher.probe(replica)
    try:
        server = DispatcherServer(host, port, dispatcher, verbose=verbose)
    except OSError as exc:
        dispatcher.shutdown()
        print(f"cannot bind {host}:{port}: {exc}")
        return 1

    if install_signal_handlers:
        def _request_stop(signum, frame):
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _request_stop)
        signal.signal(signal.SIGINT, _request_stop)

    healthy = len(dispatcher.healthy_replicas())
    print(
        f"cluster dispatcher listening on {server.url} "
        f"({healthy}/{len(dispatcher.replicas)} replicas healthy)",
        flush=True,
    )
    if ready_callback is not None:
        ready_callback(server)
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        dispatcher.shutdown()
        print("cluster dispatcher stopped", flush=True)
    return 0
