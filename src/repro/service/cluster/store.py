"""Persistent job stores: any replica can load, serve and finish any job.

PR 4's :class:`~repro.service.manager.JobManager` kept its job table in
process memory; a replica restart forgot every job it ever ran.  The
cluster tier replaces that with a pluggable :class:`JobStore`: the
manager writes every record and lifecycle/progress event through it, so
a job submitted to one replica is visible — status, result, event
stream — from every other replica and from the dispatcher, and survives
the owning replica's death.

Two implementations:

* :class:`MemoryJobStore` — a dict under a lock; the single-process
  default (and what standalone ``etransform serve`` keeps using).
* :class:`SqliteJobStore` — one SQLite file in WAL mode shared by every
  replica on the host.  WAL gives concurrent readers against a single
  writer, which matches the access pattern exactly: many dispatcher /
  replica reads, one short write per lifecycle transition.

Records cross the store as wire-encoded blobs
(:mod:`repro.io.wire` — binary CSC/state arrays, version byte, JSON
fallback), not JSON text, so persisting a job costs a memcpy rather
than a serialize-parse round trip of its state payload.

**Claim semantics.**  :meth:`JobStore.claim` is the exactly-once
primitive: an atomic compare-and-set on the ``claimed_by`` column.  Of
N replicas (or a restarted replica re-adopting its own backlog) racing
to claim one job, exactly one wins; everyone else sees ``False`` and
moves on.  Cancellation across replicas rides the same table: any
replica may :meth:`request_cancel`; the owning replica polls the flag
for its running jobs and kills the worker locally.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from typing import Any, Iterable

from ...io.wire import decode_payload, encode_payload

#: Job states a restarted replica re-adopts from the store (everything
#: non-terminal; mirrors ``jobs.TERMINAL_STATES`` without the import).
LIVE_STATES = ("queued", "running", "retrying")


class JobStore:
    """Interface every store implements (see module docstring)."""

    def put(self, record: dict[str, Any], claimed_by: str | None = None) -> None:
        """Insert (or fully replace) one job record."""
        raise NotImplementedError

    def update(self, job_id: str, record: dict[str, Any]) -> None:
        """Replace the stored record for ``job_id`` (state included)."""
        raise NotImplementedError

    def get(self, job_id: str) -> dict[str, Any] | None:
        """The stored record, or ``None`` for an unknown id."""
        raise NotImplementedError

    def list(
        self,
        claimed_by: str | None = None,
        states: Iterable[str] | None = None,
    ) -> list[dict[str, Any]]:
        """Stored records, optionally filtered by owner and/or state."""
        raise NotImplementedError

    def claim(self, job_id: str, owner: str) -> bool:
        """Atomically claim an unclaimed job; ``True`` for the one winner."""
        raise NotImplementedError

    def release(self, job_id: str) -> None:
        """Drop the claim so another replica may adopt the job."""
        raise NotImplementedError

    def request_cancel(self, job_id: str) -> bool:
        """Flag the job for cancellation; ``False`` for an unknown id."""
        raise NotImplementedError

    def cancel_requested(self, job_id: str) -> bool:
        """Whether some replica flagged this job for cancellation."""
        raise NotImplementedError

    def append_event(self, job_id: str, event: dict[str, Any]) -> int:
        """Append one progress/lifecycle event; returns its 1-based seq."""
        raise NotImplementedError

    def events(self, job_id: str, after: int = 0) -> list[tuple[int, dict]]:
        """Events with seq > ``after``, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryJobStore(JobStore):
    """The in-process store: exact same contract, no persistence."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: dict[str, dict[str, Any]] = {}
        self._claims: dict[str, str | None] = {}
        self._cancels: set[str] = set()
        self._events: dict[str, list[tuple[int, dict]]] = {}

    def put(self, record: dict[str, Any], claimed_by: str | None = None) -> None:
        job_id = record["id"]
        with self._lock:
            self._records[job_id] = dict(record)
            self._claims[job_id] = claimed_by
            self._events.setdefault(job_id, [])

    def update(self, job_id: str, record: dict[str, Any]) -> None:
        with self._lock:
            if job_id in self._records:
                self._records[job_id] = dict(record)

    def get(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            record = self._records.get(job_id)
            return dict(record) if record is not None else None

    def list(self, claimed_by=None, states=None) -> list[dict[str, Any]]:
        states = set(states) if states is not None else None
        with self._lock:
            return [
                dict(record)
                for job_id, record in self._records.items()
                if (claimed_by is None or self._claims.get(job_id) == claimed_by)
                and (states is None or record.get("state") in states)
            ]

    def claim(self, job_id: str, owner: str) -> bool:
        with self._lock:
            if job_id not in self._records or self._claims.get(job_id) is not None:
                return False
            self._claims[job_id] = owner
            return True

    def release(self, job_id: str) -> None:
        with self._lock:
            if job_id in self._claims:
                self._claims[job_id] = None

    def request_cancel(self, job_id: str) -> bool:
        with self._lock:
            if job_id not in self._records:
                return False
            self._cancels.add(job_id)
            return True

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._cancels

    def append_event(self, job_id: str, event: dict[str, Any]) -> int:
        with self._lock:
            events = self._events.setdefault(job_id, [])
            seq = len(events) + 1
            events.append((seq, dict(event)))
            return seq

    def events(self, job_id: str, after: int = 0) -> list[tuple[int, dict]]:
        with self._lock:
            return [
                (seq, dict(event))
                for seq, event in self._events.get(job_id, [])
                if seq > after
            ]


_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    state            TEXT NOT NULL,
    claimed_by       TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    updated_at       REAL NOT NULL,
    record           BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    job_id TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    data   BLOB NOT NULL,
    PRIMARY KEY (job_id, seq)
);
CREATE INDEX IF NOT EXISTS jobs_by_owner ON jobs (claimed_by, state);
"""


class SqliteJobStore(JobStore):
    """The shared persistent store: one WAL-mode SQLite file per cluster.

    Connections are per-instance (every replica process and the
    dispatcher holds its own); SQLite's file locking plus WAL serialize
    the writers.  All writes are single short transactions, so the
    5-second busy timeout is orders of magnitude above observed
    contention.  Thread-safe within a process: one connection guarded
    by a lock (the store is off every hot path — solves dwarf it).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            path, timeout=5.0, check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)

    def put(self, record: dict[str, Any], claimed_by: str | None = None) -> None:
        blob = encode_payload(record)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs "
                "(id, state, claimed_by, cancel_requested, updated_at, record) "
                "VALUES (?, ?, ?, 0, ?, ?)",
                (record["id"], record["state"], claimed_by, time.time(), blob),
            )

    def update(self, job_id: str, record: dict[str, Any]) -> None:
        blob = encode_payload(record)
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, record = ? "
                "WHERE id = ?",
                (record["state"], time.time(), blob, job_id),
            )

    def get(self, job_id: str) -> dict[str, Any] | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT record FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return decode_payload(row[0]) if row is not None else None

    def list(self, claimed_by=None, states=None) -> list[dict[str, Any]]:
        query = "SELECT record FROM jobs"
        clauses, params = [], []
        if claimed_by is not None:
            clauses.append("claimed_by = ?")
            params.append(claimed_by)
        if states is not None:
            states = list(states)
            clauses.append(f"state IN ({','.join('?' * len(states))})")
            params.extend(states)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        with self._lock:
            rows = self._conn.execute(query + " ORDER BY updated_at", params).fetchall()
        return [decode_payload(row[0]) for row in rows]

    def claim(self, job_id: str, owner: str) -> bool:
        # The exactly-once primitive: the UPDATE's WHERE clause only
        # matches an unclaimed row, and SQLite serializes writers, so
        # concurrent claimants see rowcount 1 for exactly one of them.
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET claimed_by = ?, updated_at = ? "
                "WHERE id = ? AND claimed_by IS NULL",
                (owner, time.time(), job_id),
            )
            return cursor.rowcount == 1

    def release(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET claimed_by = NULL, updated_at = ? WHERE id = ?",
                (time.time(), job_id),
            )

    def request_cancel(self, job_id: str) -> bool:
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET cancel_requested = 1, updated_at = ? WHERE id = ?",
                (time.time(), job_id),
            )
            return cursor.rowcount == 1

    def cancel_requested(self, job_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row and row[0])

    def append_event(self, job_id: str, event: dict[str, Any]) -> int:
        blob = encode_payload(event)
        with self._lock:
            # BEGIN IMMEDIATE takes the write lock up front so the
            # MAX(seq) read and the INSERT are one atomic step even
            # against appenders in other processes.
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) FROM events WHERE job_id = ?",
                    (job_id,),
                ).fetchone()
                seq = row[0] + 1
                self._conn.execute(
                    "INSERT INTO events (job_id, seq, data) VALUES (?, ?, ?)",
                    (job_id, seq, blob),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return seq

    def events(self, job_id: str, after: int = 0) -> list[tuple[int, dict]]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, data FROM events WHERE job_id = ? AND seq > ? "
                "ORDER BY seq",
                (job_id, after),
            ).fetchall()
        return [(seq, decode_payload(data)) for seq, data in rows]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def open_store(url: str | None) -> JobStore:
    """Open the store a ``store_url`` names.

    ``None`` → :class:`MemoryJobStore`; ``memory://`` likewise;
    ``sqlite:///path/to/file.db`` (the path is everything after
    ``sqlite://``) or a bare filesystem path →
    :class:`SqliteJobStore`.
    """
    if url is None or url == "memory://":
        return MemoryJobStore()
    if url.startswith("sqlite://"):
        path = url.removeprefix("sqlite://")
        if not path:
            raise ValueError(f"store url {url!r} names no database file")
        return SqliteJobStore(path)
    if url.startswith(("http://", "https://")):
        raise ValueError(f"unsupported store url scheme in {url!r}")
    directory = os.path.dirname(url)
    if directory and not os.path.isdir(directory):
        raise ValueError(f"store directory {directory!r} does not exist")
    return SqliteJobStore(url)
