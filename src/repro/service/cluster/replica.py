"""Replica harnesses: boot N planning-service replicas for a cluster.

Two ways to run a replica, one interface:

* :class:`InProcessReplica` — the manager + HTTP server inside this
  process (threads).  Fast to boot, fully inspectable, what tests and
  the CI smoke arm use.  Note the solver work still happens in forked
  worker *processes*, so even in-process replicas parallelize solves.
* :class:`SubprocessReplica` — a real ``etransform serve`` child
  process.  Honest isolation (its own GIL, its own supervisor), what
  the load benchmark uses; it can be killed and restarted to exercise
  recovery paths.

:class:`ClusterHarness` wires N of either kind to one shared SQLite
store and a :class:`~repro.service.cluster.dispatcher.Dispatcher`, and
tears the lot down in reverse order.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from typing import Any

from ..config import ServiceConfig
from ..http import PlanningServer, run_service
from ..manager import JobManager
from .dispatcher import Dispatcher, DispatcherServer
from .store import JobStore


class InProcessReplica:
    """One replica hosted by this process (HTTP thread + manager)."""

    def __init__(
        self, config: ServiceConfig, store: "JobStore | None" = None
    ) -> None:
        self.config = config
        self.manager = JobManager(config, store=store)
        self.server: PlanningServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "InProcessReplica":
        self.manager.start()
        self.server = PlanningServer(self.config, self.manager)
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name=f"replica-{self.manager.replica_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        if self.server is None:
            raise RuntimeError("replica not started")
        return self.server.url

    def stop(self, drain: bool = False) -> None:
        if self.server is not None:
            self.server.shutdown()
            self.server.server_close()
            self.server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.manager.shutdown(drain=drain)

    def __enter__(self) -> "InProcessReplica":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class SubprocessReplica:
    """One replica as a real ``etransform serve`` child process."""

    def __init__(
        self,
        workers: int = 2,
        store_url: str | None = None,
        replica_id: str | None = None,
        max_queue_depth: int | None = None,
        job_timeout: float | None = 300.0,
        extra_args: list[str] | None = None,
    ) -> None:
        self.workers = workers
        self.store_url = store_url
        self.replica_id = replica_id
        self.max_queue_depth = max_queue_depth
        self.job_timeout = job_timeout
        self.extra_args = list(extra_args or [])
        self.process: subprocess.Popen | None = None
        self.url: str | None = None

    def _command(self) -> list[str]:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--workers",
            str(self.workers),
        ]
        if self.job_timeout is not None:
            command += ["--job-timeout", str(self.job_timeout)]
        if self.store_url is not None:
            command += ["--store", self.store_url]
        if self.replica_id is not None:
            command += ["--replica-id", self.replica_id]
        if self.max_queue_depth is not None:
            command += ["--max-queue-depth", str(self.max_queue_depth)]
        return command + self.extra_args

    def start(self, boot_timeout: float = 30.0) -> "SubprocessReplica":
        env = dict(os.environ)
        self.process = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        # The serve banner prints the bound (possibly ephemeral) URL.
        deadline = time.monotonic() + boot_timeout
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            marker = "listening on "
            if marker in line:
                self.url = line.split(marker, 1)[1].split()[0]
                # Drain further output in the background so the child
                # never blocks on a full stdout pipe.
                threading.Thread(
                    target=self._drain_output, daemon=True
                ).start()
                return self
        self.kill()
        raise RuntimeError("replica subprocess did not report its URL")

    def _drain_output(self) -> None:
        try:
            for _ in self.process.stdout:
                pass
        except ValueError:  # stdout closed during teardown
            pass

    def kill(self) -> None:
        """Hard-stop, as an abrupt replica death (recovery tests)."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 30.0) -> int:
        """Graceful SIGTERM stop (drains); returns the exit code."""
        if self.process is None:
            return 0
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=10.0)
        return self.process.returncode

    def __enter__(self) -> "SubprocessReplica":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.terminate()


class ClusterHarness:
    """N replicas + a dispatcher, booted and torn down as one unit."""

    def __init__(
        self,
        n_replicas: int = 2,
        workers_per_replica: int = 2,
        store_url: str | None = None,
        max_queue_depth: int | None = None,
        job_timeout: float | None = 60.0,
        in_process: bool = True,
        health_interval: float = 0.2,
        eviction_threshold: int = 2,
        config_overrides: dict[str, Any] | None = None,
    ) -> None:
        if n_replicas < 1:
            raise ValueError("a cluster needs at least one replica")
        self.n_replicas = n_replicas
        self.workers_per_replica = workers_per_replica
        self.store_url = store_url
        self.max_queue_depth = max_queue_depth
        self.job_timeout = job_timeout
        self.in_process = in_process
        self.health_interval = health_interval
        self.eviction_threshold = eviction_threshold
        self.config_overrides = dict(config_overrides or {})
        self.replicas: list[InProcessReplica | SubprocessReplica] = []
        self.dispatcher: Dispatcher | None = None
        self.dispatcher_server: DispatcherServer | None = None
        self._dispatcher_thread: threading.Thread | None = None

    def start(self) -> "ClusterHarness":
        for index in range(self.n_replicas):
            replica_id = f"replica-{index}"
            if self.in_process:
                settings: dict[str, Any] = {
                    "port": 0,
                    "workers": self.workers_per_replica,
                    "job_timeout": self.job_timeout,
                    "poll_interval": 0.01,
                    "store_url": self.store_url,
                    "replica_id": replica_id,
                    "max_queue_depth": self.max_queue_depth,
                }
                settings.update(self.config_overrides)
                replica = InProcessReplica(ServiceConfig(**settings))
            else:
                replica = SubprocessReplica(
                    workers=self.workers_per_replica,
                    store_url=self.store_url,
                    replica_id=replica_id,
                    max_queue_depth=self.max_queue_depth,
                    job_timeout=self.job_timeout,
                )
            self.replicas.append(replica.start())
        self.dispatcher = Dispatcher(
            [replica.url for replica in self.replicas],
            store_url=self.store_url,
            health_interval=self.health_interval,
            eviction_threshold=self.eviction_threshold,
        ).start()
        for replica_state in self.dispatcher.replicas:
            self.dispatcher.probe(replica_state)
        self.dispatcher_server = DispatcherServer(
            "127.0.0.1", 0, self.dispatcher
        )
        self._dispatcher_thread = threading.Thread(
            target=self.dispatcher_server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="cluster-dispatcher-http",
            daemon=True,
        )
        self._dispatcher_thread.start()
        return self

    @property
    def url(self) -> str:
        if self.dispatcher_server is None:
            raise RuntimeError("cluster not started")
        return self.dispatcher_server.url

    def stop(self) -> None:
        if self.dispatcher_server is not None:
            self.dispatcher_server.shutdown()
            self.dispatcher_server.server_close()
            self.dispatcher_server = None
        if self._dispatcher_thread is not None:
            self._dispatcher_thread.join(timeout=5.0)
            self._dispatcher_thread = None
        if self.dispatcher is not None:
            self.dispatcher.shutdown()
            self.dispatcher = None
        for replica in self.replicas:
            if isinstance(replica, InProcessReplica):
                replica.stop()
            else:
                replica.terminate()
        self.replicas = []

    def __enter__(self) -> "ClusterHarness":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "ClusterHarness",
    "InProcessReplica",
    "SubprocessReplica",
]
