"""The :class:`JobManager`: queue, dispatch, retries, cache, journal.

A single supervisor thread owns all lifecycle transitions (HTTP threads
only enqueue/cancel under the manager lock), which keeps the state
machine race-free without fine-grained locking:

* **dispatch** — ready queued jobs go to idle workers, oldest first;
  refine jobs are routed to the worker already holding their session so
  warm :class:`~repro.lp.SolveCache` state survives across requests;
* **completion** — worker results flip jobs to ``succeeded``/``failed``
  and feed the fingerprint-keyed result cache;
* **worker death** — a worker that dies mid-job (OOM kill, native
  crash, an operator's ``kill -9``) is replaced and its job re-queued
  with exponential backoff, up to ``max_retries``; the job fails with
  the death recorded once retries are exhausted;
* **timeouts** — a job past its per-attempt deadline gets its worker
  killed and ends ``timeout`` (deliberately *not* retried: a solve that
  blew its budget once will blow it again);
* **cancellation** — queued jobs die in the queue; running jobs get
  their worker killed and replaced (the only way to interrupt a solver
  that is deep inside native code).

Every transition is appended to the optional JSONL journal, so an
operator can reconstruct what the service did after the fact.
"""

from __future__ import annotations

import heapq
import sys
import threading
import time
import traceback
import uuid
from collections import OrderedDict, deque
from typing import Any

from ..io.serialization import append_jsonl, read_jsonl
from ..lp.fingerprint import payload_fingerprint
from ..telemetry import declare_counters, metrics
from .cluster.store import JobStore, open_store
from .config import ServiceConfig
from .executor import PayloadError, validate_payload
from .jobs import (
    CACHEABLE_KINDS,
    MAX_EVENT_BUFFER,
    TERMINAL_STATES,
    JobKind,
    JobRecord,
    JobState,
)
from .workers import WorkerHandle, WorkerPool

#: Counter names this module owns (guarded against double declaration).
SERVICE_COUNTERS = (
    "service.jobs.submitted",
    "service.jobs.succeeded",
    "service.jobs.failed",
    "service.jobs.cancelled",
    "service.jobs.timeout",
    "service.jobs.retried",
    "service.workers.restarts",
    "service.cache.hits",
    "service.cache.misses",
    "service.jobs.rejected",
    "service.jobs.recovered",
    "service.jobs.remote_cancelled",
    "service.progress.events",
)

declare_counters(__name__, SERVICE_COUNTERS)


class ServiceUnavailableError(RuntimeError):
    """The manager is draining/stopped and accepts no new jobs."""


class QueueFullError(RuntimeError):
    """Admission control rejected the job (maps to HTTP 429).

    ``retry_after`` estimates, in seconds, when the queue should have
    drained enough to try again (the ``Retry-After`` header value).
    """

    def __init__(self, depth: int, limit: int, retry_after: float) -> None:
        self.retry_after = retry_after
        super().__init__(
            f"job queue is full ({depth} queued, limit {limit}); "
            f"retry in {retry_after:.0f}s"
        )


class UnknownJobError(KeyError):
    """No job with that id (maps to HTTP 404)."""


class JobManager:
    """Accepts jobs, runs them on the worker pool, remembers everything."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        store: JobStore | None = None,
    ) -> None:
        self.config = (config or ServiceConfig()).validated()
        self.replica_id = self.config.replica_id or f"replica-{uuid.uuid4().hex[:8]}"
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        #: Min-heap of (ready_at, sequence, job_id); cancelled entries are
        #: skipped lazily at pop time.
        self._pending: list[tuple[float, int, str]] = []
        #: Terminal job ids, oldest finish first — the eviction order
        #: for ``job_history_limit``.
        self._history: deque[str] = deque()
        self._seq = 0
        self._cache: "OrderedDict[str, dict]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pool: WorkerPool | None = None
        #: Shared persistent job store (cluster mode); ``None`` keeps
        #: the PR-4 in-process behavior byte for byte.
        self._store: JobStore | None = store
        self._owns_store = False
        if self._store is None and self.config.store_url is not None:
            self._store = open_store(self.config.store_url)
            self._owns_store = True
        #: EWMA of successful-attempt seconds — the Retry-After estimate.
        self._avg_job_seconds = 1.0
        self._last_cancel_poll = 0.0
        self._journal = None
        if self.config.journal_path:
            # Replay what an earlier incarnation journalled *before*
            # reopening the file for append, so restarts keep answering
            # for recently finished jobs (bounded by job_history_limit).
            self._replay_journal(self.config.journal_path)
            self._journal = open(self.config.journal_path, "a", encoding="utf-8")
        self._stop = threading.Event()
        self._accepting = False
        self._supervisor: threading.Thread | None = None
        self.started_at: float | None = None

    def _replay_journal(self, path: str) -> None:
        """Resurrect recently finished jobs from an existing journal.

        Only *terminal* records come back (a journal says nothing about
        payloads, so a queued/running entry cannot be re-dispatched from
        it — cluster mode recovers those from the job store instead),
        and only the newest ``job_history_limit`` of them: replaying a
        journal longer than the limit must not resurrect jobs the
        previous incarnation had already evicted.
        """
        terminal_names = {state.value for state in TERMINAL_STATES}
        final: "OrderedDict[str, dict]" = OrderedDict()
        for entry in read_jsonl(path):
            job_id = entry.get("job")
            if job_id is None or entry.get("state") not in terminal_names:
                continue
            final[job_id] = entry
            final.move_to_end(job_id)
        limit = self.config.job_history_limit
        entries = list(final.values())
        if limit is not None:
            entries = entries[-limit:]
        for entry in entries:
            record = JobRecord.from_store_dict(
                {
                    "id": entry["job"],
                    "kind": entry.get("kind", "plan"),
                    "state": entry["state"],
                    "attempts": entry.get("attempts", 0),
                    "error": entry.get("error"),
                    "via": entry.get("via"),
                    "created_at": entry.get("ts"),
                    "finished_at": entry.get("ts"),
                }
            )
            self._jobs[record.id] = record
            self._history.append(record.id)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the worker pool and the supervisor thread."""
        if self._supervisor is not None:
            raise RuntimeError("manager already started")
        self._pool = WorkerPool(self.config.workers)
        self._accepting = True
        self.started_at = time.time()
        if self._store is not None:
            self._recover_from_store()
        self._supervisor = threading.Thread(
            target=self._supervise, name="planning-supervisor", daemon=True
        )
        self._supervisor.start()
        self._log_event(event="service_started", workers=self.config.workers)
        return self

    def _recover_from_store(self) -> None:
        """Re-queue this replica's unfinished jobs after a restart.

        The store persisted every payload at submit time, so jobs that
        were queued or mid-solve when the previous incarnation died are
        simply dispatched again — the restart acceptance path: a job
        submitted to any replica stays retrievable *and completable*
        through the cluster after that replica restarts.
        """
        from .cluster.store import LIVE_STATES

        with self._lock:
            for data in self._store.list(
                claimed_by=self.replica_id, states=LIVE_STATES
            ):
                if data["id"] in self._jobs:
                    continue
                record = JobRecord.from_store_dict(data)
                record.state = JobState.QUEUED
                record.replica = self.replica_id
                self._jobs[record.id] = record
                self._store_sync(record)
                self._append_event(
                    record, {"type": "state", "state": "queued", "recovered": True}
                )
                metrics.increment("service.jobs.recovered")
                self._log_job(record, event="recovered")
                self._push(record, ready_at=time.monotonic())

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the service; returns ``True`` when fully drained.

        ``drain=True`` (the SIGTERM path) stops accepting, lets queued
        and running jobs finish up to ``timeout`` (default: the config's
        ``drain_timeout``), then stops workers gracefully.  ``False``
        kills everything now.  Either way no worker process survives.
        """
        with self._lock:
            self._accepting = False
        drained = True
        if drain and self._supervisor is not None:
            deadline = time.monotonic() + (
                self.config.drain_timeout if timeout is None else timeout
            )
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending and self._pool.busy_count == 0:
                        break
                time.sleep(self.config.poll_interval)
            else:
                drained = False
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        if self._pool is not None:
            if drained:
                self._pool.stop_all()
            else:
                self._pool.kill_all()
        self._log_event(event="service_stopped", drained=drained)
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._store is not None and self._owns_store:
            self._store.close()
            self._store = None
        return drained

    # -- public job API ----------------------------------------------------

    def submit(
        self,
        kind: "JobKind | str",
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> JobRecord:
        """Validate, fingerprint and enqueue one job; returns its record.

        Raises :class:`PayloadError` / ``ValueError`` on malformed
        requests (the HTTP layer maps those to 400) and
        :class:`ServiceUnavailableError` while draining (503).  A
        cacheable job whose fingerprint was already solved completes
        immediately from the result cache.
        """
        kind = JobKind(kind)
        validate_payload(kind, payload)
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                raise PayloadError("field 'timeout' must be a number of seconds")
            if not timeout > 0:  # also rejects NaN
                raise PayloadError("field 'timeout' must be positive")
            timeout = float(timeout)
        if max_retries is not None:
            if isinstance(max_retries, bool) or not isinstance(max_retries, int):
                raise PayloadError("field 'max_retries' must be an integer")
            if max_retries < 0:
                raise PayloadError("field 'max_retries' cannot be negative")
        record = JobRecord(
            kind=kind,
            payload=payload,
            timeout=self.config.job_timeout if timeout is None else timeout,
            max_retries=(
                self.config.max_retries if max_retries is None else max_retries
            ),
            session=(
                payload.get("session", "default") if kind is JobKind.REFINE else None
            ),
        )
        if kind in CACHEABLE_KINDS:
            record.fingerprint = payload_fingerprint([kind.value, payload])
        with self._lock:
            if not self._accepting:
                raise ServiceUnavailableError(
                    "the planning service is draining and accepts no new jobs"
                )
            cached = (
                self._cache.get(record.fingerprint)
                if record.fingerprint is not None
                else None
            )
            if cached is None:
                self._check_admission()
            record.replica = self.replica_id
            self._jobs[record.id] = record
            metrics.increment("service.jobs.submitted")
            self._log_job(record, event="submitted")
            self._store_put(record)
            self._append_event(record, {"type": "state", "state": "queued"})
            if record.fingerprint is not None:
                if cached is not None:
                    self._cache.move_to_end(record.fingerprint)
                    self.cache_hits += 1
                    metrics.increment("service.cache.hits")
                    record.result = dict(cached)
                    record.via = "cache"
                    record.elapsed = 0.0
                    self._finish(record, JobState.SUCCEEDED)
                    return record
                self.cache_misses += 1
                metrics.increment("service.cache.misses")
            self._push(record, ready_at=time.monotonic())
        return record

    def _check_admission(self) -> None:
        """Backpressure: reject once the queue is deeper than configured.

        Called under the manager lock, before the record enters the
        table.  The Retry-After estimate assumes the pool keeps its
        recent pace: ``depth / workers`` jobs ahead of the caller per
        worker, each costing about the EWMA attempt time.
        """
        limit = self.config.max_queue_depth
        if limit is None:
            return
        depth = self._queue_depth()
        if depth < limit:
            return
        retry_after = min(
            120.0,
            max(1.0, depth * self._avg_job_seconds / self.config.workers),
        )
        metrics.increment("service.jobs.rejected")
        self._log_event(event="rejected", queue_depth=depth, limit=limit)
        raise QueueFullError(depth, limit, retry_after)

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is not None:
            return record
        # Not (or no longer) in this replica's table: the shared store
        # still answers for evicted history and for jobs owned by other
        # replicas — the detached record is a read-only snapshot.
        if self._store is not None:
            data = self._store.get(job_id)
            if data is not None:
                return JobRecord.from_store_dict(data)
        raise UnknownJobError(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def events(self, job_id: str, after: int = 0) -> tuple[list[dict], bool]:
        """Events with ``seq > after`` plus whether the job is terminal.

        The streaming endpoint polls this; ``done=True`` tells it the
        stream is complete.  Local records answer from the in-memory
        buffer; anything else falls back to the shared store.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                fresh = [e for e in record.events if e["seq"] > after]
                # The buffer is bounded: if the oldest retained event is
                # already past `after`, the gap lives only in the store.
                if (
                    self._store is not None
                    and record.events
                    and record.events[0]["seq"] > after + 1
                ):
                    fresh = None
                else:
                    return fresh, record.done
        if self._store is None:
            raise UnknownJobError(job_id)
        data = self._store.get(job_id)
        if data is None:
            raise UnknownJobError(job_id)
        events = [
            {"seq": seq, **event} for seq, event in self._store.events(job_id, after)
        ]
        return events, JobState(data["state"]) in TERMINAL_STATES

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``False`` when it already reached a terminal state.

        Queued jobs are dropped in place.  A running job's worker is
        killed and replaced — cancellation must work even when the
        solver is wedged inside native code, so cooperative signalling
        is not enough.
        """
        with self._lock:
            record = self._jobs.get(job_id)
            if record is not None:
                if record.done:
                    return False
                if record.state is JobState.RUNNING:
                    worker = self._worker_running(job_id)
                    if worker is not None:
                        self._replace_worker(worker)
                record.via = None
                self._finish(record, JobState.CANCELLED)
                return True
        # A job this replica does not hold: flag it in the shared store;
        # the owning replica's supervisor polls the flag and kills the
        # worker locally (cancellation across replicas).
        if self._store is not None:
            data = self._store.get(job_id)
            if data is not None:
                if JobState(data["state"]) in TERMINAL_STATES:
                    return False
                self._store.request_cancel(job_id)
                self._log_event(event="cancel_requested", job=job_id)
                return True
        raise UnknownJobError(job_id)

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until ``job_id`` is terminal (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record.done:
                return record
            time.sleep(self.config.poll_interval)
        raise TimeoutError(f"job {job_id} still {self.get(job_id).state.value}")

    # -- introspection -----------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        with self._lock:
            alive = self._pool.alive_count if self._pool else 0
            expected = self.config.workers
            status = "ok" if self._accepting and alive == expected else (
                "degraded" if self._accepting else "draining"
            )
            return {
                "status": status,
                "accepting": self._accepting,
                "workers_alive": alive,
                "workers_expected": expected,
                "replica_id": self.replica_id,
                "queue_depth": self._queue_depth(),
                "max_queue_depth": self.config.max_queue_depth,
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
            }

    def stats(self) -> dict[str, Any]:
        """The ``GET /metrics`` body: queues, jobs, cache, histograms."""
        with self._lock:
            by_state: dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
            queue_depth = self._queue_depth()
            counters = {
                name: value
                for name, value in metrics.snapshot().items()
                if name.startswith(("service.", "solves.", "incremental."))
            }
            return {
                "queue_depth": queue_depth,
                "in_flight": self._pool.busy_count if self._pool else 0,
                "workers": {
                    "size": len(self._pool.workers) if self._pool else 0,
                    "alive": self._pool.alive_count if self._pool else 0,
                    "restarts": self._pool.restarts if self._pool else 0,
                },
                "jobs": {"total": len(self._jobs), "by_state": by_state},
                "cache": {
                    "size": len(self._cache),
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                },
                "counters": counters,
                "solve_seconds": {
                    name.removeprefix("service.job_seconds."): hist
                    for name, hist in metrics.histogram_snapshot().items()
                    if name.startswith("service.job_seconds.")
                },
            }

    # -- supervisor --------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception:  # pragma: no cover - supervisor must survive
                # A dead supervisor freezes every job, so keep looping —
                # but loudly: a swallowed tick failure would otherwise
                # leave jobs stuck RUNNING with no trace anywhere.
                detail = traceback.format_exc()
                print(
                    f"planning supervisor tick failed:\n{detail}",
                    file=sys.stderr,
                    flush=True,
                )
                with self._lock:
                    self._log_event(event="supervisor_error", error=detail)
            time.sleep(self.config.poll_interval)

    def _tick(self) -> None:
        with self._lock:
            self._drain_results()
            self._reap_dead_workers()
            self._enforce_deadlines()
            self._check_remote_cancels()
            self._dispatch_ready()
            metrics.gauge("service.queue.depth").set(self._queue_depth())
            metrics.gauge("service.jobs.inflight").set(self._pool.busy_count)

    def _check_remote_cancels(self) -> None:
        """Honor cancellations requested through *other* replicas.

        Any replica (or the dispatcher) can flag a job in the shared
        store; only the owning replica can actually stop it — by the
        same worker-kill path a local DELETE uses.  Polled at
        ``remote_cancel_interval`` over this replica's live jobs only,
        so the store sees a handful of point reads per interval.
        """
        if self._store is None:
            return
        now = time.monotonic()
        if now - self._last_cancel_poll < self.config.remote_cancel_interval:
            return
        self._last_cancel_poll = now
        for record in list(self._jobs.values()):
            if record.done:
                continue
            try:
                flagged = self._store.cancel_requested(record.id)
            except Exception:  # pragma: no cover - store outage tolerated
                return
            if not flagged:
                continue
            if record.state is JobState.RUNNING:
                worker = self._worker_running(record.id)
                if worker is not None:
                    self._replace_worker(worker)
            record.via = None
            metrics.increment("service.jobs.remote_cancelled")
            self._finish(record, JobState.CANCELLED)

    def _drain_results(self) -> None:
        for message in self._pool.poll_results():
            worker_id, job_id, status, body, elapsed = message
            if status == "progress":
                # A mid-solve tick, not a completion: the worker stays
                # busy; file the tick under the running job's stream.
                record = self._jobs.get(job_id)
                if record is not None and record.state is JobState.RUNNING:
                    self._append_event(record, {"type": "progress", **body})
                continue
            worker = next(
                (w for w in self._pool.workers if w.worker_id == worker_id), None
            )
            if worker is not None and worker.busy_job == job_id:
                worker.busy_job = None
                worker.deadline = None
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.RUNNING:
                continue  # cancelled/timed out just before the result landed
            if status == "ok":
                record.result = body
                record.via = "solve"
                record.elapsed = elapsed
                # Feed the Retry-After estimate (EWMA of attempt time).
                self._avg_job_seconds = (
                    0.8 * self._avg_job_seconds + 0.2 * max(elapsed, 0.01)
                )
                backend = body.get("backend", "auto") if isinstance(body, dict) else "auto"
                metrics.observe(f"service.job_seconds.{backend}", elapsed)
                if record.fingerprint is not None:
                    self._cache[record.fingerprint] = dict(body)
                    self._cache.move_to_end(record.fingerprint)
                    while len(self._cache) > self.config.result_cache_size:
                        self._cache.popitem(last=False)
                self._finish(record, JobState.SUCCEEDED)
            else:
                record.error = str(body)
                self._finish(record, JobState.FAILED)

    def _reap_dead_workers(self) -> None:
        for worker in list(self._pool.workers):
            if worker.alive:
                continue
            job_id = worker.busy_job
            self._replace_worker(worker)
            if job_id is None:
                continue
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.RUNNING:
                continue
            if record.attempts <= record.max_retries:
                record.transition(JobState.RETRYING)
                self._log_job(record, event="retrying")
                metrics.increment("service.jobs.retried")
                backoff = self.config.retry_backoff * (2 ** (record.attempts - 1))
                record.transition(JobState.QUEUED)
                self._push(record, ready_at=time.monotonic() + backoff)
            else:
                record.error = (
                    f"worker died during attempt {record.attempts} "
                    f"(of {record.max_retries + 1} allowed)"
                )
                self._finish(record, JobState.FAILED)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker in list(self._pool.workers):
            if worker.busy_job is None or worker.deadline is None:
                continue
            if now <= worker.deadline:
                continue
            record = self._jobs.get(worker.busy_job)
            self._replace_worker(worker)
            if record is not None and record.state is JobState.RUNNING:
                record.error = (
                    f"attempt exceeded the {record.timeout:.1f}s job timeout"
                )
                self._finish(record, JobState.TIMEOUT)

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        deferred: list[tuple[float, int, str]] = []
        while self._pending and self._pending[0][0] <= now:
            ready_at, seq, job_id = heapq.heappop(self._pending)
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.QUEUED:
                continue  # cancelled while queued (and possibly evicted)
            worker = self._pick_worker(record)
            if worker is None:
                deferred.append((ready_at, seq, job_id))
                if not self._pool.idle_workers():
                    break  # pool saturated; stop scanning
                continue  # session-pinned worker busy; try other jobs
            self._start_on(worker, record)
        for item in deferred:
            heapq.heappush(self._pending, item)

    def _pick_worker(self, record: JobRecord) -> WorkerHandle | None:
        if record.session is not None:
            pinned = self._pool.worker_for_session(record.session)
            if pinned is not None:
                return pinned if pinned.idle else None
        idle = self._pool.idle_workers()
        return idle[0] if idle else None

    def _start_on(self, worker: WorkerHandle, record: JobRecord) -> None:
        record.attempts += 1
        record.transition(JobState.RUNNING)
        worker.busy_job = record.id
        worker.deadline = (
            time.monotonic() + record.timeout if record.timeout else None
        )
        if record.session is not None:
            worker.sessions.add(record.session)
        worker.send(record.id, record.kind, record.payload)
        self._log_job(record, event="dispatched", worker=worker.worker_id)
        self._store_sync(record)
        self._append_event(
            record,
            {"type": "state", "state": "running", "attempt": record.attempts},
        )

    def _replace_worker(self, worker: WorkerHandle) -> None:
        self._pool.restart(worker)
        metrics.increment("service.workers.restarts")
        self._log_event(
            event="worker_restarted", worker=worker.worker_id, pid=worker.pid
        )

    def _worker_running(self, job_id: str) -> WorkerHandle | None:
        for worker in self._pool.workers:
            if worker.busy_job == job_id:
                return worker
        return None

    # -- bookkeeping -------------------------------------------------------

    def _push(self, record: JobRecord, ready_at: float) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (ready_at, self._seq, record.id))

    def _queue_depth(self) -> int:
        """Live entries in the heap (evicted/cancelled ones linger lazily)."""
        return sum(
            1
            for _, _, job_id in self._pending
            if (record := self._jobs.get(job_id)) is not None and not record.done
        )

    def _finish(self, record: JobRecord, state: JobState) -> None:
        record.transition(state)
        metrics.increment(f"service.jobs.{state.value}")
        self._log_job(record, event=state.value)
        self._store_sync(record)
        terminal_event: dict[str, Any] = {"type": "state", "state": state.value}
        if record.via is not None:
            terminal_event["via"] = record.via
        if record.error is not None:
            terminal_event["error"] = record.error
        self._append_event(record, terminal_event)
        # Bound in-memory retention: terminal records (and their payload
        # + result bodies) are evicted oldest-first past the configured
        # limit; the journal keeps the permanent audit trail.
        self._history.append(record.id)
        limit = self.config.job_history_limit
        if limit is not None:
            while len(self._history) > limit:
                self._jobs.pop(self._history.popleft(), None)

    def _store_put(self, record: JobRecord) -> None:
        """First write of a record to the shared store (claimed by us)."""
        if self._store is None:
            return
        try:
            self._store.put(record.to_store_dict(), claimed_by=self.replica_id)
        except Exception:  # pragma: no cover - store outage must not kill jobs
            self._log_event(event="store_error", op="put", job=record.id)

    def _store_sync(self, record: JobRecord) -> None:
        """Mirror a record's current state into the shared store."""
        if self._store is None:
            return
        try:
            self._store.update(record.id, record.to_store_dict())
        except Exception:  # pragma: no cover - store outage must not kill jobs
            self._log_event(event="store_error", op="update", job=record.id)

    def _append_event(self, record: JobRecord, event: dict[str, Any]) -> None:
        """File one event under the job: in-memory buffer + store stream.

        The embedded ``seq`` is what streaming clients resume from
        (``?after=<seq>``); it is dense per job and identical between
        the in-memory buffer and the store.
        """
        data = {"ts": time.time(), **event}
        seq = None
        if self._store is not None:
            # The store is the seq authority — a recovered job's stream
            # continues from where the previous incarnation left it.
            try:
                seq = self._store.append_event(record.id, data)
            except Exception:  # pragma: no cover - store outage tolerated
                self._log_event(event="store_error", op="event", job=record.id)
        if seq is None:
            seq = record.events[-1]["seq"] + 1 if record.events else 1
        record.events.append({"seq": seq, **data})
        if len(record.events) > MAX_EVENT_BUFFER:
            del record.events[: len(record.events) - MAX_EVENT_BUFFER]
        if event.get("type") == "progress":
            metrics.increment("service.progress.events")

    def _log_job(self, record: JobRecord, event: str, **extra: Any) -> None:
        self._log_event(
            event=event,
            job=record.id,
            kind=record.kind.value,
            state=record.state.value,
            attempts=record.attempts,
            error=record.error,
            via=record.via,
            **extra,
        )

    def _log_event(self, **record: Any) -> None:
        if self._journal is None:
            return
        try:
            append_jsonl(self._journal, {"ts": time.time(), **record})
        except ValueError:  # pragma: no cover - journal closed mid-write
            pass


def replay_journal(path: str) -> dict[str, str]:
    """Reconstruct job id → final state from a service journal."""
    final: dict[str, str] = {}
    for record in read_jsonl(path):
        job_id = record.get("job")
        if job_id is not None and "state" in record:
            final[job_id] = record["state"]
    return final
