"""The :class:`JobManager`: queue, dispatch, retries, cache, journal.

A single supervisor thread owns all lifecycle transitions (HTTP threads
only enqueue/cancel under the manager lock), which keeps the state
machine race-free without fine-grained locking:

* **dispatch** — ready queued jobs go to idle workers, oldest first;
  refine jobs are routed to the worker already holding their session so
  warm :class:`~repro.lp.SolveCache` state survives across requests;
* **completion** — worker results flip jobs to ``succeeded``/``failed``
  and feed the fingerprint-keyed result cache;
* **worker death** — a worker that dies mid-job (OOM kill, native
  crash, an operator's ``kill -9``) is replaced and its job re-queued
  with exponential backoff, up to ``max_retries``; the job fails with
  the death recorded once retries are exhausted;
* **timeouts** — a job past its per-attempt deadline gets its worker
  killed and ends ``timeout`` (deliberately *not* retried: a solve that
  blew its budget once will blow it again);
* **cancellation** — queued jobs die in the queue; running jobs get
  their worker killed and replaced (the only way to interrupt a solver
  that is deep inside native code).

Every transition is appended to the optional JSONL journal, so an
operator can reconstruct what the service did after the fact.
"""

from __future__ import annotations

import heapq
import sys
import threading
import time
import traceback
from collections import OrderedDict, deque
from typing import Any

from ..io.serialization import append_jsonl, read_jsonl
from ..lp.fingerprint import payload_fingerprint
from ..telemetry import declare_counters, metrics
from .config import ServiceConfig
from .executor import PayloadError, validate_payload
from .jobs import (
    CACHEABLE_KINDS,
    JobKind,
    JobRecord,
    JobState,
)
from .workers import WorkerHandle, WorkerPool

#: Counter names this module owns (guarded against double declaration).
SERVICE_COUNTERS = (
    "service.jobs.submitted",
    "service.jobs.succeeded",
    "service.jobs.failed",
    "service.jobs.cancelled",
    "service.jobs.timeout",
    "service.jobs.retried",
    "service.workers.restarts",
    "service.cache.hits",
    "service.cache.misses",
)

declare_counters(__name__, SERVICE_COUNTERS)


class ServiceUnavailableError(RuntimeError):
    """The manager is draining/stopped and accepts no new jobs."""


class UnknownJobError(KeyError):
    """No job with that id (maps to HTTP 404)."""


class JobManager:
    """Accepts jobs, runs them on the worker pool, remembers everything."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = (config or ServiceConfig()).validated()
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        #: Min-heap of (ready_at, sequence, job_id); cancelled entries are
        #: skipped lazily at pop time.
        self._pending: list[tuple[float, int, str]] = []
        #: Terminal job ids, oldest finish first — the eviction order
        #: for ``job_history_limit``.
        self._history: deque[str] = deque()
        self._seq = 0
        self._cache: "OrderedDict[str, dict]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self._pool: WorkerPool | None = None
        self._journal = None
        if self.config.journal_path:
            self._journal = open(self.config.journal_path, "a", encoding="utf-8")
        self._stop = threading.Event()
        self._accepting = False
        self._supervisor: threading.Thread | None = None
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "JobManager":
        """Spawn the worker pool and the supervisor thread."""
        if self._supervisor is not None:
            raise RuntimeError("manager already started")
        self._pool = WorkerPool(self.config.workers)
        self._accepting = True
        self.started_at = time.time()
        self._supervisor = threading.Thread(
            target=self._supervise, name="planning-supervisor", daemon=True
        )
        self._supervisor.start()
        self._log_event(event="service_started", workers=self.config.workers)
        return self

    def __enter__(self) -> "JobManager":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=exc_info[0] is None)

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop the service; returns ``True`` when fully drained.

        ``drain=True`` (the SIGTERM path) stops accepting, lets queued
        and running jobs finish up to ``timeout`` (default: the config's
        ``drain_timeout``), then stops workers gracefully.  ``False``
        kills everything now.  Either way no worker process survives.
        """
        with self._lock:
            self._accepting = False
        drained = True
        if drain and self._supervisor is not None:
            deadline = time.monotonic() + (
                self.config.drain_timeout if timeout is None else timeout
            )
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending and self._pool.busy_count == 0:
                        break
                time.sleep(self.config.poll_interval)
            else:
                drained = False
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        if self._pool is not None:
            if drained:
                self._pool.stop_all()
            else:
                self._pool.kill_all()
        self._log_event(event="service_stopped", drained=drained)
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        return drained

    # -- public job API ----------------------------------------------------

    def submit(
        self,
        kind: "JobKind | str",
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> JobRecord:
        """Validate, fingerprint and enqueue one job; returns its record.

        Raises :class:`PayloadError` / ``ValueError`` on malformed
        requests (the HTTP layer maps those to 400) and
        :class:`ServiceUnavailableError` while draining (503).  A
        cacheable job whose fingerprint was already solved completes
        immediately from the result cache.
        """
        kind = JobKind(kind)
        validate_payload(kind, payload)
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                raise PayloadError("field 'timeout' must be a number of seconds")
            if not timeout > 0:  # also rejects NaN
                raise PayloadError("field 'timeout' must be positive")
            timeout = float(timeout)
        if max_retries is not None:
            if isinstance(max_retries, bool) or not isinstance(max_retries, int):
                raise PayloadError("field 'max_retries' must be an integer")
            if max_retries < 0:
                raise PayloadError("field 'max_retries' cannot be negative")
        record = JobRecord(
            kind=kind,
            payload=payload,
            timeout=self.config.job_timeout if timeout is None else timeout,
            max_retries=(
                self.config.max_retries if max_retries is None else max_retries
            ),
            session=(
                payload.get("session", "default") if kind is JobKind.REFINE else None
            ),
        )
        if kind in CACHEABLE_KINDS:
            record.fingerprint = payload_fingerprint([kind.value, payload])
        with self._lock:
            if not self._accepting:
                raise ServiceUnavailableError(
                    "the planning service is draining and accepts no new jobs"
                )
            self._jobs[record.id] = record
            metrics.increment("service.jobs.submitted")
            self._log_job(record, event="submitted")
            if record.fingerprint is not None:
                cached = self._cache.get(record.fingerprint)
                if cached is not None:
                    self._cache.move_to_end(record.fingerprint)
                    self.cache_hits += 1
                    metrics.increment("service.cache.hits")
                    record.result = dict(cached)
                    record.via = "cache"
                    record.elapsed = 0.0
                    self._finish(record, JobState.SUCCEEDED)
                    return record
                self.cache_misses += 1
                metrics.increment("service.cache.misses")
            self._push(record, ready_at=time.monotonic())
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; ``False`` when it already reached a terminal state.

        Queued jobs are dropped in place.  A running job's worker is
        killed and replaced — cancellation must work even when the
        solver is wedged inside native code, so cooperative signalling
        is not enough.
        """
        with self._lock:
            record = self.get(job_id)
            if record.done:
                return False
            if record.state is JobState.RUNNING:
                worker = self._worker_running(job_id)
                if worker is not None:
                    self._replace_worker(worker)
            record.via = None
            self._finish(record, JobState.CANCELLED)
            return True

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until ``job_id`` is terminal (test/CLI convenience)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            record = self.get(job_id)
            if record.done:
                return record
            time.sleep(self.config.poll_interval)
        raise TimeoutError(f"job {job_id} still {self.get(job_id).state.value}")

    # -- introspection -----------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        with self._lock:
            alive = self._pool.alive_count if self._pool else 0
            expected = self.config.workers
            status = "ok" if self._accepting and alive == expected else (
                "degraded" if self._accepting else "draining"
            )
            return {
                "status": status,
                "accepting": self._accepting,
                "workers_alive": alive,
                "workers_expected": expected,
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
            }

    def stats(self) -> dict[str, Any]:
        """The ``GET /metrics`` body: queues, jobs, cache, histograms."""
        with self._lock:
            by_state: dict[str, int] = {}
            for record in self._jobs.values():
                by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
            queue_depth = self._queue_depth()
            counters = {
                name: value
                for name, value in metrics.snapshot().items()
                if name.startswith(("service.", "solves.", "incremental."))
            }
            return {
                "queue_depth": queue_depth,
                "in_flight": self._pool.busy_count if self._pool else 0,
                "workers": {
                    "size": len(self._pool.workers) if self._pool else 0,
                    "alive": self._pool.alive_count if self._pool else 0,
                    "restarts": self._pool.restarts if self._pool else 0,
                },
                "jobs": {"total": len(self._jobs), "by_state": by_state},
                "cache": {
                    "size": len(self._cache),
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                },
                "counters": counters,
                "solve_seconds": {
                    name.removeprefix("service.job_seconds."): hist
                    for name, hist in metrics.histogram_snapshot().items()
                    if name.startswith("service.job_seconds.")
                },
            }

    # -- supervisor --------------------------------------------------------

    def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                self._tick()
            except Exception:  # pragma: no cover - supervisor must survive
                # A dead supervisor freezes every job, so keep looping —
                # but loudly: a swallowed tick failure would otherwise
                # leave jobs stuck RUNNING with no trace anywhere.
                detail = traceback.format_exc()
                print(
                    f"planning supervisor tick failed:\n{detail}",
                    file=sys.stderr,
                    flush=True,
                )
                with self._lock:
                    self._log_event(event="supervisor_error", error=detail)
            time.sleep(self.config.poll_interval)

    def _tick(self) -> None:
        with self._lock:
            self._drain_results()
            self._reap_dead_workers()
            self._enforce_deadlines()
            self._dispatch_ready()
            metrics.gauge("service.queue.depth").set(self._queue_depth())
            metrics.gauge("service.jobs.inflight").set(self._pool.busy_count)

    def _drain_results(self) -> None:
        for message in self._pool.poll_results():
            worker_id, job_id, status, body, elapsed = message
            worker = next(
                (w for w in self._pool.workers if w.worker_id == worker_id), None
            )
            if worker is not None and worker.busy_job == job_id:
                worker.busy_job = None
                worker.deadline = None
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.RUNNING:
                continue  # cancelled/timed out just before the result landed
            if status == "ok":
                record.result = body
                record.via = "solve"
                record.elapsed = elapsed
                backend = body.get("backend", "auto") if isinstance(body, dict) else "auto"
                metrics.observe(f"service.job_seconds.{backend}", elapsed)
                if record.fingerprint is not None:
                    self._cache[record.fingerprint] = dict(body)
                    self._cache.move_to_end(record.fingerprint)
                    while len(self._cache) > self.config.result_cache_size:
                        self._cache.popitem(last=False)
                self._finish(record, JobState.SUCCEEDED)
            else:
                record.error = str(body)
                self._finish(record, JobState.FAILED)

    def _reap_dead_workers(self) -> None:
        for worker in list(self._pool.workers):
            if worker.alive:
                continue
            job_id = worker.busy_job
            self._replace_worker(worker)
            if job_id is None:
                continue
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.RUNNING:
                continue
            if record.attempts <= record.max_retries:
                record.transition(JobState.RETRYING)
                self._log_job(record, event="retrying")
                metrics.increment("service.jobs.retried")
                backoff = self.config.retry_backoff * (2 ** (record.attempts - 1))
                record.transition(JobState.QUEUED)
                self._push(record, ready_at=time.monotonic() + backoff)
            else:
                record.error = (
                    f"worker died during attempt {record.attempts} "
                    f"(of {record.max_retries + 1} allowed)"
                )
                self._finish(record, JobState.FAILED)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker in list(self._pool.workers):
            if worker.busy_job is None or worker.deadline is None:
                continue
            if now <= worker.deadline:
                continue
            record = self._jobs.get(worker.busy_job)
            self._replace_worker(worker)
            if record is not None and record.state is JobState.RUNNING:
                record.error = (
                    f"attempt exceeded the {record.timeout:.1f}s job timeout"
                )
                self._finish(record, JobState.TIMEOUT)

    def _dispatch_ready(self) -> None:
        now = time.monotonic()
        deferred: list[tuple[float, int, str]] = []
        while self._pending and self._pending[0][0] <= now:
            ready_at, seq, job_id = heapq.heappop(self._pending)
            record = self._jobs.get(job_id)
            if record is None or record.state is not JobState.QUEUED:
                continue  # cancelled while queued (and possibly evicted)
            worker = self._pick_worker(record)
            if worker is None:
                deferred.append((ready_at, seq, job_id))
                if not self._pool.idle_workers():
                    break  # pool saturated; stop scanning
                continue  # session-pinned worker busy; try other jobs
            self._start_on(worker, record)
        for item in deferred:
            heapq.heappush(self._pending, item)

    def _pick_worker(self, record: JobRecord) -> WorkerHandle | None:
        if record.session is not None:
            pinned = self._pool.worker_for_session(record.session)
            if pinned is not None:
                return pinned if pinned.idle else None
        idle = self._pool.idle_workers()
        return idle[0] if idle else None

    def _start_on(self, worker: WorkerHandle, record: JobRecord) -> None:
        record.attempts += 1
        record.transition(JobState.RUNNING)
        worker.busy_job = record.id
        worker.deadline = (
            time.monotonic() + record.timeout if record.timeout else None
        )
        if record.session is not None:
            worker.sessions.add(record.session)
        worker.send(record.id, record.kind, record.payload)
        self._log_job(record, event="dispatched", worker=worker.worker_id)

    def _replace_worker(self, worker: WorkerHandle) -> None:
        self._pool.restart(worker)
        metrics.increment("service.workers.restarts")
        self._log_event(
            event="worker_restarted", worker=worker.worker_id, pid=worker.pid
        )

    def _worker_running(self, job_id: str) -> WorkerHandle | None:
        for worker in self._pool.workers:
            if worker.busy_job == job_id:
                return worker
        return None

    # -- bookkeeping -------------------------------------------------------

    def _push(self, record: JobRecord, ready_at: float) -> None:
        self._seq += 1
        heapq.heappush(self._pending, (ready_at, self._seq, record.id))

    def _queue_depth(self) -> int:
        """Live entries in the heap (evicted/cancelled ones linger lazily)."""
        return sum(
            1
            for _, _, job_id in self._pending
            if (record := self._jobs.get(job_id)) is not None and not record.done
        )

    def _finish(self, record: JobRecord, state: JobState) -> None:
        record.transition(state)
        metrics.increment(f"service.jobs.{state.value}")
        self._log_job(record, event=state.value)
        # Bound in-memory retention: terminal records (and their payload
        # + result bodies) are evicted oldest-first past the configured
        # limit; the journal keeps the permanent audit trail.
        self._history.append(record.id)
        limit = self.config.job_history_limit
        if limit is not None:
            while len(self._history) > limit:
                self._jobs.pop(self._history.popleft(), None)

    def _log_job(self, record: JobRecord, event: str, **extra: Any) -> None:
        self._log_event(
            event=event,
            job=record.id,
            kind=record.kind.value,
            state=record.state.value,
            attempts=record.attempts,
            error=record.error,
            via=record.via,
            **extra,
        )

    def _log_event(self, **record: Any) -> None:
        if self._journal is None:
            return
        try:
            append_jsonl(self._journal, {"ts": time.time(), **record})
        except ValueError:  # pragma: no cover - journal closed mid-write
            pass


def replay_journal(path: str) -> dict[str, str]:
    """Reconstruct job id → final state from a service journal."""
    final: dict[str, str] = {}
    for record in read_jsonl(path):
        job_id = record.get("job")
        if job_id is not None and "state" in record:
            final[job_id] = record["state"]
    return final
