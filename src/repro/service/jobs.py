"""The job model: kinds, lifecycle states and the per-job record.

Lifecycle (documented with the transition table the manager enforces)::

                      submit
                        │
              ┌─────────▼─────────┐   cache hit at submit
              │      queued       ├────────────────────────► succeeded
              └─────────┬─────────┘                          (via=cache)
           dispatch     │      ▲
                        ▼      │ backoff elapsed
              ┌───────────────┐│
              │    running    ││
              └┬────┬────┬───┬┘│
        result │    │    │   │ │ worker died, attempts left
               │    │    │   └─►── retrying ──┘
               ▼    ▼    ▼
       succeeded  failed  timeout        (DELETE at any pre-terminal
                                          point → cancelled)

``queued``, ``running`` and ``retrying`` are live; the other four are
terminal and final — the manager rejects any further transition.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class JobKind(str, Enum):
    """What a job asks the solver stack to do."""

    PLAN = "plan"
    REFINE = "refine"
    COMPARE = "compare"
    SIMULATE = "simulate"


#: Kinds whose results are pure functions of their payload — safe to
#: serve from the fingerprint-keyed result cache.  ``refine`` is not:
#: its result depends on warm per-session state.
CACHEABLE_KINDS = frozenset({JobKind.PLAN, JobKind.COMPARE, JobKind.SIMULATE})


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    RETRYING = "retrying"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"


TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED, JobState.TIMEOUT}
)

#: The allowed lifecycle edges (see the module docstring's diagram).
VALID_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.SUCCEEDED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {
            JobState.SUCCEEDED,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMEOUT,
            JobState.RETRYING,
        }
    ),
    JobState.RETRYING: frozenset(
        {JobState.QUEUED, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.SUCCEEDED: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.TIMEOUT: frozenset(),
}


class InvalidTransitionError(RuntimeError):
    """A lifecycle edge outside :data:`VALID_TRANSITIONS` was attempted."""


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass
class JobRecord:
    """One job: request, lifecycle bookkeeping and (eventually) a result."""

    kind: JobKind
    payload: dict[str, Any]
    id: str = field(default_factory=new_job_id)
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Attempts started so far (1 on the first dispatch).
    attempts: int = 0
    max_retries: int = 0
    timeout: float | None = None
    #: Result-cache key; ``None`` for non-cacheable kinds.
    fingerprint: str | None = None
    #: How the result was produced: ``solve`` or ``cache``.
    via: str | None = None
    #: Wall-clock seconds the successful attempt spent in the worker.
    elapsed: float | None = None
    result: dict[str, Any] | None = None
    error: str | None = None
    #: Refine jobs: the session this job belongs to (worker affinity).
    session: str | None = None
    #: Replica that owns (claimed) this job in the cluster store.
    replica: str | None = None
    #: Lifecycle + solver-progress events, in seq order (what
    #: ``GET /jobs/{id}/events`` streams).  Bounded by
    #: :data:`MAX_EVENT_BUFFER`; the job store keeps the full stream.
    events: list[dict[str, Any]] = field(default_factory=list)

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``, enforcing the lifecycle table."""
        if new_state not in VALID_TRANSITIONS[self.state]:
            raise InvalidTransitionError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} → {new_state.value}"
            )
        self.state = new_state
        if new_state is JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if new_state in TERMINAL_STATES:
            self.finished_at = time.time()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self, include_result: bool = True) -> dict[str, Any]:
        """JSON-safe public view (what ``GET /jobs/{id}`` returns)."""
        record: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind.value,
            "state": self.state.value,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "timeout": self.timeout,
            "fingerprint": self.fingerprint,
            "via": self.via,
            "elapsed": self.elapsed,
            "error": self.error,
            "session": self.session,
            "replica": self.replica,
        }
        if include_result:
            record["result"] = self.result
        return record

    def to_store_dict(self) -> dict[str, Any]:
        """The full persistent view: public record plus the payload."""
        record = self.to_dict(include_result=True)
        record["payload"] = self.payload
        return record

    @classmethod
    def from_store_dict(cls, data: dict[str, Any]) -> "JobRecord":
        """Rebuild a record persisted by :meth:`to_store_dict`.

        The lifecycle table is bypassed deliberately: the stored state
        is a fact, not a transition.
        """
        record = cls(
            kind=JobKind(data["kind"]),
            payload=data.get("payload") or {},
            id=data["id"],
        )
        record.state = JobState(data["state"])
        record.created_at = data.get("created_at", record.created_at)
        record.started_at = data.get("started_at")
        record.finished_at = data.get("finished_at")
        record.attempts = data.get("attempts", 0)
        record.max_retries = data.get("max_retries", 0)
        record.timeout = data.get("timeout")
        record.fingerprint = data.get("fingerprint")
        record.via = data.get("via")
        record.elapsed = data.get("elapsed")
        record.result = data.get("result")
        record.error = data.get("error")
        record.session = data.get("session")
        record.replica = data.get("replica")
        return record


#: In-memory cap on per-job buffered events; at the worker's 0.2 s
#: progress throttle this covers solves into the hours, and the store
#: keeps everything regardless.
MAX_EVENT_BUFFER = 512
