"""A small stdlib client for the planning service HTTP API.

Accepts in-memory :class:`~repro.core.entities.AsIsState` objects and
converts them to the wire format, so driving a remote planner reads
like driving the local library::

    client = ServiceClient("http://127.0.0.1:8080")
    job = client.submit_plan(state, options={"backend": "highs"})
    done = client.wait(job["id"])
    print(done["result"]["summary"]["total_cost"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..core.entities import AsIsState
from ..io.serialization import state_to_dict


class ServiceError(RuntimeError):
    """The service answered with an error status (or not at all)."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class JobFailedError(RuntimeError):
    """A waited-on job reached a non-success terminal state."""

    def __init__(self, job: dict[str, Any]) -> None:
        self.job = job
        super().__init__(
            f"job {job.get('id')} ended {job.get('state')}: {job.get('error')}"
        )


def _state_payload(state: "AsIsState | dict") -> dict:
    return state_to_dict(state) if isinstance(state, AsIsState) else dict(state)


class ServiceClient:
    """Typed convenience wrapper over the JSON API."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        tolerate: tuple[int, ...] = (),
    ) -> dict[str, Any]:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                parsed = json.loads(raw)
            except json.JSONDecodeError:
                parsed = None
            if exc.code in tolerate and isinstance(parsed, dict):
                return parsed
            message = parsed.get("error", exc.reason) if isinstance(parsed, dict) else exc.reason
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}") from None

    # -- job submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"kind": kind, "payload": payload}
        if timeout is not None:
            body["timeout"] = timeout
        if max_retries is not None:
            body["max_retries"] = max_retries
        return self._request("POST", "/jobs", body)

    def submit_plan(
        self, state: "AsIsState | dict", options: dict | None = None, **submit_kwargs
    ) -> dict[str, Any]:
        payload = {"state": _state_payload(state), "options": options or {}}
        return self.submit("plan", payload, **submit_kwargs)

    def submit_compare(
        self, state: "AsIsState | dict", options: dict | None = None, **submit_kwargs
    ) -> dict[str, Any]:
        payload = {"state": _state_payload(state), "options": options or {}}
        return self.submit("compare", payload, **submit_kwargs)

    def submit_simulate(
        self,
        state: "AsIsState | dict",
        options: dict | None = None,
        simulation: dict | None = None,
        **submit_kwargs,
    ) -> dict[str, Any]:
        payload = {
            "state": _state_payload(state),
            "options": options or {},
            "simulation": simulation or {},
        }
        return self.submit("simulate", payload, **submit_kwargs)

    def submit_refine(
        self,
        state: "AsIsState | dict",
        directives: list[dict],
        session: str = "default",
        options: dict | None = None,
        **submit_kwargs,
    ) -> dict[str, Any]:
        """Submit a refine step: the *cumulative* directive list.

        Sending the full list every time keeps refine jobs idempotent
        (safe to retry after a worker death) while still re-solving
        incrementally: the pinned worker applies only the new suffix to
        its warm session.
        """
        payload = {
            "state": _state_payload(state),
            "options": options or {},
            "session": session,
            "directives": directives,
        }
        return self.submit("refine", payload, **submit_kwargs)

    # -- polling -----------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        raise_on_failure: bool = True,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("succeeded", "failed", "cancelled", "timeout"):
                if raise_on_failure and record["state"] != "succeeded":
                    raise JobFailedError(record)
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    # -- service introspection ---------------------------------------------

    def healthz(self) -> dict[str, Any]:
        # A degraded/draining service answers 503 with the same body.
        return self._request("GET", "/healthz", tolerate=(503,))

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")
