"""A small stdlib client for the planning service HTTP API.

Accepts in-memory :class:`~repro.core.entities.AsIsState` objects and
converts them to the wire format, so driving a remote planner reads
like driving the local library::

    client = ServiceClient("http://127.0.0.1:8080")
    job = client.submit_plan(state, options={"backend": "highs"})
    done = client.wait(job["id"])
    print(done["result"]["summary"]["total_cost"])
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Iterator

from ..core.entities import AsIsState
from ..io.serialization import state_to_dict
from ..io.wire import WIRE_CONTENT_TYPE, encode_payload


class ServiceError(RuntimeError):
    """The service answered with an error status (or not at all).

    ``retry_after`` carries the server's ``Retry-After`` header (as
    seconds) when admission control answered 429, else ``None``.
    """

    def __init__(
        self, status: int, message: str, retry_after: float | None = None
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {message}")


class JobFailedError(RuntimeError):
    """A waited-on job reached a non-success terminal state."""

    def __init__(self, job: dict[str, Any]) -> None:
        self.job = job
        super().__init__(
            f"job {job.get('id')} ended {job.get('state')}: {job.get('error')}"
        )


def _state_payload(state: "AsIsState | dict") -> dict:
    return state_to_dict(state) if isinstance(state, AsIsState) else dict(state)


def _is_connection_refused(exc: urllib.error.URLError) -> bool:
    reason = getattr(exc, "reason", None)
    return isinstance(reason, (ConnectionRefusedError, ConnectionResetError))


class ServiceClient:
    """Typed convenience wrapper over the JSON API.

    ``timeout`` bounds each read; ``connect_timeout`` (default: the
    read timeout capped at 5 s) bounds connection establishment, so a
    black-holed replica cannot stall a caller for the full read budget.
    A connection *refused* — the replica is restarting, nothing was
    processed — is retried ``connect_retries`` times with doubling
    backoff before giving up; errors after the connection is up are
    never retried here (the dispatcher owns failover policy).

    ``binary=True`` posts submissions in the compact wire format
    (:mod:`repro.io.wire`) instead of JSON — same payloads, smaller
    bodies and no JSON float round-trip for big states.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        connect_retries: int = 2,
        retry_backoff: float = 0.2,
        binary: bool = False,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.connect_timeout = (
            min(timeout, 5.0) if connect_timeout is None else connect_timeout
        )
        self.connect_retries = connect_retries
        self.retry_backoff = retry_backoff
        self.binary = binary

    # -- transport ---------------------------------------------------------

    def _open(self, request: urllib.request.Request, timeout: float):
        """urlopen with connect/read phases timed separately.

        urllib exposes one deadline for the whole exchange; probing the
        connection first with ``connect_timeout`` splits it so "host is
        down" fails in seconds while a long solve may still stream its
        response for the full read timeout.
        """
        parsed = urllib.parse.urlsplit(request.full_url)
        port = parsed.port or (443 if parsed.scheme == "https" else 80)
        probe = socket.create_connection(
            (parsed.hostname, port), timeout=self.connect_timeout
        )
        probe.close()
        return urllib.request.urlopen(request, timeout=timeout)

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        tolerate: tuple[int, ...] = (),
    ) -> dict[str, Any]:
        if body is None:
            data, content_type = None, None
        elif self.binary and method == "POST":
            data, content_type = encode_payload(body), WIRE_CONTENT_TYPE
        else:
            data, content_type = json.dumps(body).encode("utf-8"), "application/json"
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": content_type} if data else {},
        )
        attempt = 0
        while True:
            try:
                with self._open(request, timeout=self.timeout) as response:
                    return json.loads(response.read().decode("utf-8"))
            except urllib.error.HTTPError as exc:
                raw = exc.read().decode("utf-8", errors="replace")
                try:
                    parsed = json.loads(raw)
                except json.JSONDecodeError:
                    parsed = None
                if exc.code in tolerate and isinstance(parsed, dict):
                    return parsed
                message = (
                    parsed.get("error", exc.reason)
                    if isinstance(parsed, dict)
                    else exc.reason
                )
                retry_after = exc.headers.get("Retry-After")
                raise ServiceError(
                    exc.code,
                    message,
                    retry_after=float(retry_after) if retry_after else None,
                ) from None
            except (urllib.error.URLError, OSError) as exc:
                refused = (
                    isinstance(exc, urllib.error.URLError)
                    and _is_connection_refused(exc)
                ) or isinstance(exc, (ConnectionRefusedError, ConnectionResetError))
                if refused and attempt < self.connect_retries:
                    time.sleep(self.retry_backoff * (2**attempt))
                    attempt += 1
                    continue
                reason = getattr(exc, "reason", exc)
                raise ServiceError(
                    0, f"cannot reach {self.base_url}: {reason}"
                ) from None

    # -- job submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        timeout: float | None = None,
        max_retries: int | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {"kind": kind, "payload": payload}
        if timeout is not None:
            body["timeout"] = timeout
        if max_retries is not None:
            body["max_retries"] = max_retries
        return self._request("POST", "/jobs", body)

    def submit_plan(
        self, state: "AsIsState | dict", options: dict | None = None, **submit_kwargs
    ) -> dict[str, Any]:
        payload = {"state": _state_payload(state), "options": options or {}}
        return self.submit("plan", payload, **submit_kwargs)

    def submit_compare(
        self, state: "AsIsState | dict", options: dict | None = None, **submit_kwargs
    ) -> dict[str, Any]:
        payload = {"state": _state_payload(state), "options": options or {}}
        return self.submit("compare", payload, **submit_kwargs)

    def submit_simulate(
        self,
        state: "AsIsState | dict",
        options: dict | None = None,
        simulation: dict | None = None,
        **submit_kwargs,
    ) -> dict[str, Any]:
        payload = {
            "state": _state_payload(state),
            "options": options or {},
            "simulation": simulation or {},
        }
        return self.submit("simulate", payload, **submit_kwargs)

    def submit_refine(
        self,
        state: "AsIsState | dict",
        directives: list[dict],
        session: str = "default",
        options: dict | None = None,
        **submit_kwargs,
    ) -> dict[str, Any]:
        """Submit a refine step: the *cumulative* directive list.

        Sending the full list every time keeps refine jobs idempotent
        (safe to retry after a worker death) while still re-solving
        incrementally: the pinned worker applies only the new suffix to
        its warm session.
        """
        payload = {
            "state": _state_payload(state),
            "options": options or {},
            "session": session,
            "directives": directives,
        }
        return self.submit("refine", payload, **submit_kwargs)

    # -- polling -----------------------------------------------------------

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        timeout: float = 120.0,
        poll_interval: float = 0.05,
        raise_on_failure: bool = True,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("succeeded", "failed", "cancelled", "timeout"):
                if raise_on_failure and record["state"] != "succeeded":
                    raise JobFailedError(record)
                return record
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    # -- streaming ---------------------------------------------------------

    def stream(
        self, job_id: str, after: int = 0, timeout: float | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield the job's events live until it reaches a terminal state.

        Wraps ``GET /jobs/{id}/events`` (chunked ndjson); each yielded
        dict has at least ``seq``/``ts``/``type``.  ``after`` resumes a
        broken stream without replaying delivered events.  ``timeout``
        bounds the *read gap between events*, not the whole stream — a
        healthy long solve ticks progress well inside it.
        """
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events?after={after}", method="GET"
        )
        try:
            response = self._open(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", exc.reason)
            except (json.JSONDecodeError, AttributeError):
                message = exc.reason
            raise ServiceError(exc.code, message) from None
        except (urllib.error.URLError, OSError) as exc:
            reason = getattr(exc, "reason", exc)
            raise ServiceError(0, f"cannot reach {self.base_url}: {reason}") from None
        with response:
            # http.client decodes the chunked framing; readline gives
            # one ndjson event per call, blocking until it arrives.
            for line in iter(response.readline, b""):
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))

    # -- service introspection ---------------------------------------------

    def healthz(self) -> dict[str, Any]:
        # A degraded/draining service answers 503 with the same body.
        return self._request("GET", "/healthz", tolerate=(503,))

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")
