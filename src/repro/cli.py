"""Command-line interface: ``etransform`` (or ``python -m repro.cli``).

Subcommands
-----------
``dataset``     generate a synthetic case-study state to JSON
``plan``        run eTransform on a JSON state and print the to-be report
``compare``     run as-is / manual / greedy / eTransform on a state
``sweep``       run the Fig. 7 latency sweep or the Fig. 8 DR-cost sweep
``migrate``     phase the transformation into waves with payback analysis
``simulate``    replay disasters against the plan (availability, pools)
``sensitivity`` sweep one cost dimension and report the plan's response
``robustness``  Monte-Carlo regret under price-estimate noise
``refine``      replay a scripted directive sequence with per-step timing
``replay``      stream a load/failure trace through the online re-planner
``serve``       run the long-lived planning service (HTTP JSON API)

Operational errors — a missing or malformed state file, an unknown
directive — exit with code 2 and a one-line message naming the file or
field, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys

from .baselines import asis_plan, asis_with_dr_plan
from .core.planner import ETransformPlanner, PlannerOptions
from .experiments import (
    run_comparison,
    run_dr_cost_sweep,
    run_latency_sweep,
    tables,
)
from .io import load_state, render_plan_report, save_plan, save_state


class CliInputError(Exception):
    """A user-input problem: printed as one line, exit code 2."""


def _load_state_checked(path: str):
    """Load a state file, mapping every failure to a one-line message."""
    try:
        return load_state(path)
    except FileNotFoundError:
        raise CliInputError(f"state file {path!r} not found") from None
    except IsADirectoryError:
        raise CliInputError(f"state file {path!r} is a directory") from None
    except json.JSONDecodeError as exc:
        raise CliInputError(
            f"state file {path!r} is not valid JSON "
            f"(line {exc.lineno}, column {exc.colno}: {exc.msg})"
        ) from None
    except KeyError as exc:
        raise CliInputError(
            f"state file {path!r} is missing required field {exc.args[0]!r}"
        ) from None
    except (TypeError, ValueError) as exc:
        raise CliInputError(f"state file {path!r} is invalid: {exc}") from None


def _add_solver_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default="auto",
        help="solver backend: auto, highs, branch_bound, simplex, rounding",
    )
    parser.add_argument("--time-limit", type=float, default=None, metavar="SECONDS")
    parser.add_argument("--mip-gap", type=float, default=None, metavar="FRACTION")
    parser.add_argument(
        "--presolve",
        action="store_true",
        help="run the safe presolve reductions before the real solve",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print per-solve search statistics (nodes, iterations, gap, presolve)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="append one JSON record per solve to FILE (JSON lines)",
    )


def _solver_options(args: argparse.Namespace) -> dict:
    options: dict = {}
    if args.time_limit is not None:
        options["time_limit"] = args.time_limit
    if args.mip_gap is not None:
        options["mip_rel_gap"] = args.mip_gap
    return options


def _maybe_print_stats(args: argparse.Namespace, stats) -> None:
    """Print the --profile statistics block when requested."""
    if not getattr(args, "profile", False):
        return
    from .io import render_solve_stats

    print()
    if stats is None:
        print("Solver statistics\n  (no solver statistics recorded)")
    else:
        print(render_solve_stats(stats))


def _cmd_dataset(args: argparse.Namespace) -> int:
    from .experiments.comparison import CASE_STUDY_LOADERS

    loader = CASE_STUDY_LOADERS.get(args.name)
    if loader is None:
        print(
            f"unknown dataset {args.name!r}; choose from "
            f"{', '.join(sorted(CASE_STUDY_LOADERS))}",
            file=sys.stderr,
        )
        return 2
    state = loader(scale=args.scale)
    save_state(state, args.output)
    summary = ", ".join(f"{k}={v}" for k, v in state.summary().items())
    print(f"wrote {args.output}: {summary}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .api import solve as plan_solve

    state = _load_state_checked(args.input)
    try:
        options = PlannerOptions(
            wan_model=args.wan_model,
            enable_dr=args.dr,
            backend=args.backend,
            solver_options=_solver_options(args),
            lp_export_path=args.lp_export,
            presolve=args.presolve,
            method=args.method,
            jobs=args.jobs,
        )
        result = plan_solve(state, options=options)
    except ValueError as exc:
        raise CliInputError(str(exc)) from None
    plan = result.plan
    print(render_plan_report(state, plan))
    if result.method != "milp" or args.method != "auto":
        import math

        gap = f"{result.gap:.2%}" if math.isfinite(result.gap) else "n/a"
        print(f"\nmethod: {result.method} (gap {gap})")
    _maybe_print_stats(args, plan.solver_stats)
    if args.output:
        save_plan(plan, args.output)
        print(f"\nplan written to {args.output}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    state = _load_state_checked(args.input)
    result = run_comparison(
        state,
        enable_dr=args.dr,
        backend=args.backend,
        wan_model=args.wan_model,
        solver_options=_solver_options(args),
    )
    print(tables.render_comparison(result))
    _maybe_print_stats(args, result.etransform.solve_stats)
    return 0


def _cmd_asis(args: argparse.Namespace) -> int:
    state = _load_state_checked(args.input)
    plan = asis_with_dr_plan(state) if args.dr else asis_plan(state)
    print(render_plan_report(state, plan))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    options = _solver_options(args)
    if args.kind == "latency":
        result = run_latency_sweep(
            backend=args.backend, solver_options=options, jobs=args.jobs
        )
        for key in ("total_cost", "space_cost", "mean_latency_ms"):
            print(tables.render_latency_sweep(result, key))
            print()
    else:
        result = run_dr_cost_sweep(
            backend=args.backend, solver_options=options, jobs=args.jobs
        )
        print(tables.render_dr_sweep(result))
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from .migration import MigrationConfig, plan_migration

    state = _load_state_checked(args.input)
    options = PlannerOptions(
        enable_dr=args.dr, backend=args.backend,
        solver_options=_solver_options(args), presolve=args.presolve,
    )
    plan = ETransformPlanner(state, options).build_plan()
    config = MigrationConfig(
        max_servers_per_wave=args.wave_budget,
        bandwidth_mbps=args.bandwidth,
    )
    schedule = plan_migration(state, plan, config)
    print(schedule.render())
    _maybe_print_stats(args, plan.solver_stats)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .sim import FailureModelConfig, SimulatorConfig, simulate_plan

    state = _load_state_checked(args.input)
    options = PlannerOptions(
        enable_dr=args.dr, backend=args.backend,
        solver_options=_solver_options(args), presolve=args.presolve,
    )
    plan = ETransformPlanner(state, options).build_plan()
    config = SimulatorConfig(
        horizon_months=args.horizon_months,
        failure=FailureModelConfig(
            mtbf_hours=args.mtbf_hours, mttr_hours=args.mttr_hours, seed=args.seed
        ),
    )
    report = simulate_plan(state, plan, config)
    print(report.summary())
    _maybe_print_stats(args, plan.solver_stats)
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    from .analysis import run_sensitivity

    state = _load_state_checked(args.input)
    options = PlannerOptions(backend=args.backend,
                             solver_options=_solver_options(args),
                             presolve=args.presolve)
    result = run_sensitivity(state, args.dimension, options=options)
    print(result.render())
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .analysis import run_robustness

    state = _load_state_checked(args.input)
    options = PlannerOptions(backend=args.backend,
                             solver_options=_solver_options(args),
                             presolve=args.presolve)
    result = run_robustness(
        state, sigma=args.sigma, samples=args.samples, options=options
    )
    print(result.render())
    return 0


def _parse_refine_script(text: str) -> list[tuple[str, list[str]]]:
    """Parse a refine script: one directive per line, ``#`` comments.

    Grammar::

        pin GROUP DC | forbid GROUP DC | retire DC | cap DC LIMIT | undo
    """
    arity = {"pin": 2, "forbid": 2, "retire": 1, "cap": 2, "undo": 0}
    steps: list[tuple[str, list[str]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        verb, operands = parts[0].lower(), parts[1:]
        if verb not in arity:
            raise ValueError(
                f"line {lineno}: unknown directive {verb!r} "
                f"(expected one of {', '.join(sorted(arity))})"
            )
        if len(operands) != arity[verb]:
            raise ValueError(
                f"line {lineno}: {verb} takes {arity[verb]} operand(s), "
                f"got {len(operands)}"
            )
        steps.append((verb, operands))
    return steps


def _cmd_refine(args: argparse.Namespace) -> int:
    import time

    from .core.iterative import DirectiveConflictError, IterativeSession

    state = _load_state_checked(args.input)
    try:
        with open(args.script, encoding="utf-8") as handle:
            steps = _parse_refine_script(handle.read())
    except (OSError, ValueError) as exc:
        print(f"cannot read refine script {args.script!r}: {exc}", file=sys.stderr)
        return 2
    options = PlannerOptions(
        backend=args.backend,
        solver_options=_solver_options(args),
        presolve=args.presolve,
    )
    session = IterativeSession(state, options, incremental=not args.cold)
    mode = "cold rebuild" if args.cold else "incremental"
    print(f"refinement session ({mode}, backend={args.backend})")
    print(f"{'step':<28} {'solve':>9} {'total cost':>14}  via")

    def describe_reuse(before: tuple[int, int], cache) -> str:
        if cache is None:
            return "rebuild"
        if cache.hits > before[0]:
            return "cache hit"
        if cache.tightening_reuses > before[1]:
            return "still optimal"
        return "re-solved"

    def run_step(label: str) -> float:
        cache = session.solve_cache
        before = (cache.hits, cache.tightening_reuses) if cache else (0, 0)
        start = time.perf_counter()
        plan = session.plan()
        elapsed = time.perf_counter() - start
        via = describe_reuse(before, session.solve_cache)
        print(f"{label:<28} {elapsed:>8.3f}s {plan.breakdown.total:>14,.0f}  {via}")
        return elapsed

    total = run_step("initial plan")
    for verb, operands in steps:
        try:
            if verb == "pin":
                session.pin(*operands)
            elif verb == "forbid":
                session.forbid(*operands)
            elif verb == "retire":
                session.retire_site(operands[0])
            elif verb == "cap":
                session.cap_groups(operands[0], int(operands[1]))
            elif verb == "undo":
                session.undo()
        except (DirectiveConflictError, KeyError, ValueError, IndexError) as exc:
            print(f"directive {verb} {' '.join(operands)} rejected: {exc}",
                  file=sys.stderr)
            return 2
        label = f"{verb} {' '.join(operands)}".strip()
        total += run_step(label)

    print(f"\n{len(steps)} directives, {total:.3f}s solving in total")
    cache = session.solve_cache
    if cache is not None:
        print(
            f"cache: {cache.hits} fingerprint hits, "
            f"{cache.tightening_reuses} still-optimal shortcuts, "
            f"{cache.context_reuses} relaxation-context reuses"
        )
    _maybe_print_stats(args, session.history[-1].solver_stats)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .datasets import ONLINE_TRACE_PROFILES, online_line_scenario, online_line_trace
    from .online import ControllerConfig, ReplayConfig, run_replay

    if args.input:
        state = _load_state_checked(args.input)
    else:
        state = online_line_scenario()
    horizon_hours = args.horizon_days * 24.0
    try:
        load_events, outages = online_line_trace(
            state, args.trace_profile, horizon_hours=horizon_hours, seed=args.seed
        )
        controller = ControllerConfig(
            overload_utilization=args.overload,
            underload_utilization=args.underload,
            target_utilization=args.target,
            move_cost_per_server=args.move_cost,
            payback_window_months=args.payback_months,
        )
        config = ReplayConfig(
            horizon_hours=horizon_hours,
            controller=controller,
            incremental=not args.full,
        )
    except ValueError as exc:
        raise CliInputError(str(exc)) from None
    options = PlannerOptions(
        backend=args.backend,
        solver_options=_solver_options(args),
        presolve=args.presolve,
    )
    result = run_replay(state, load_events, outages, config, options)

    mode = "full re-plan" if args.full else "incremental"
    print(
        f"online replay ({mode}, backend={args.backend}): "
        f"{state.name}, profile={args.trace_profile}, "
        f"{len(load_events)} load events, {len(outages)} outages, "
        f"{args.horizon_days:g} days"
    )
    print(f"initial plan: {result.initial_cost:,.0f}/month "
          f"({result.initial_solve_seconds:.3f}s)")
    if result.deltas:
        print(f"\n{'t (h)':>8} {'reason':<34} {'via':<14} "
              f"{'moves':>5} {'servers':>7} {'cost/month':>12}")
        for delta in result.deltas:
            print(
                f"{delta.time_hours:>8.1f} {delta.reason[:34]:<34} "
                f"{delta.via:<14} {len(delta.moves):>5} "
                f"{delta.servers_moved:>7} {delta.cost_after:>12,.0f}"
            )
    else:
        print("no migration deltas emitted (estate stayed inside thresholds)")
    print(f"\n{result.summary()}")
    oscillations = result.oscillations()
    print(
        f"oscillating moves: {len(oscillations)}; counters: "
        + ", ".join(
            f"{name.removeprefix('online.')}={int(value)}"
            for name, value in sorted(result.counters.items())
        )
    )
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(result.as_dict(), handle, indent=2)
        print(f"replay record written to {args.json_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, run_service

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            job_timeout=args.job_timeout,
            max_retries=args.max_retries,
            journal_path=args.journal,
            store_url=args.store,
            replica_id=args.replica_id,
            max_queue_depth=args.max_queue_depth,
        ).validated()
    except ValueError as exc:
        raise CliInputError(f"bad service configuration: {exc}") from None
    return run_service(config, verbose=args.verbose)


def _cmd_watch(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.timeout)
    final_state = None
    try:
        for event in client.stream(args.job_id, after=args.after):
            kind = event.get("type", "?")
            if kind == "state":
                detail = event.get("state", "?")
                extra = event.get("error") or event.get("via")
                if extra:
                    detail += f" ({extra})"
                if event.get("state") is not None:
                    final_state = event["state"]
            elif kind == "progress":
                fields = ", ".join(
                    f"{key}={value}"
                    for key, value in sorted(event.items())
                    if key not in ("seq", "ts", "type") and value is not None
                )
                detail = fields or "tick"
            else:
                detail = json.dumps(
                    {k: v for k, v in event.items() if k not in ("seq", "ts")}
                )
            print(f"[{event.get('seq', '?'):>4}] {kind:<9} {detail}", flush=True)
    except ServiceError as exc:
        raise CliInputError(str(exc)) from None
    except KeyboardInterrupt:
        print("watch interrupted; the job keeps running", file=sys.stderr)
        return 130
    return 0 if final_state == "succeeded" else 1


def _cmd_dispatch(args: argparse.Namespace) -> int:
    from .service.cluster import run_dispatcher

    try:
        return run_dispatcher(
            replicas=args.replica,
            host=args.host,
            port=args.port,
            store_url=args.store,
            cache_size=args.cache_size,
            health_interval=args.health_interval,
            verbose=args.verbose,
        )
    except ValueError as exc:
        raise CliInputError(f"bad dispatcher configuration: {exc}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="etransform",
        description="Automated transformation and consolidation planning "
        "for enterprise data centers (ICDCS 2012 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("dataset", help="generate a synthetic case-study dataset")
    p.add_argument("name", help="enterprise1, florida or federal")
    p.add_argument("output", help="JSON file to write")
    p.add_argument("--scale", type=float, default=1.0)
    p.set_defaults(fn=_cmd_dataset)

    p = sub.add_parser("plan", help="run eTransform on a JSON as-is state")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--dr", action="store_true", help="plan disaster recovery too")
    p.add_argument("--wan-model", default="metered", choices=("metered", "vpn"))
    p.add_argument("--output", help="write the plan JSON here")
    p.add_argument("--lp-export", help="dump the model in CPLEX LP format")
    p.add_argument(
        "--method",
        default="auto",
        choices=("auto", "milp", "decomposition", "greedy"),
        help="planning engine: auto picks decomposition for very large estates",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for decomposition pricing subproblems",
    )
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("compare", help="compare all four algorithms on a state")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--dr", action="store_true")
    p.add_argument("--wan-model", default="metered", choices=("metered", "vpn"))
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("asis", help="evaluate the as-is cost of a state")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--dr", action="store_true", help="add the single-backup-site DR")
    p.set_defaults(fn=_cmd_asis)

    p = sub.add_parser("sweep", help="run a parameter study")
    p.add_argument("kind", choices=("latency", "dr-cost"))
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="solve independent sweep points across N worker processes",
    )
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("migrate", help="plan the migration waves for a state")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--dr", action="store_true")
    p.add_argument("--wave-budget", type=int, default=200,
                   help="max servers moved per change window")
    p.add_argument("--bandwidth", type=float, default=1000.0,
                   help="bulk-transfer bandwidth in Mbps")
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_migrate)

    p = sub.add_parser("simulate", help="replay disasters against the plan")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--dr", action="store_true")
    p.add_argument("--horizon-months", type=float, default=60.0)
    p.add_argument("--mtbf-hours", type=float, default=10 * 8760.0)
    p.add_argument("--mttr-hours", type=float, default=96.0)
    p.add_argument("--seed", type=int, default=0)
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("sensitivity", help="sweep one cost dimension")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("dimension", choices=("space", "power", "labor", "wan", "fixed", "vpn"))
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_sensitivity)

    p = sub.add_parser("robustness", help="regret under price noise")
    p.add_argument("input", help="JSON as-is state")
    p.add_argument("--sigma", type=float, default=0.15)
    p.add_argument("--samples", type=int, default=10)
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_robustness)

    p = sub.add_parser(
        "refine",
        help="replay a scripted directive sequence with per-step solve timing",
    )
    p.add_argument("input", help="JSON as-is state")
    p.add_argument(
        "script",
        help="directive script: one 'pin G DC', 'forbid G DC', 'retire DC', "
        "'cap DC N' or 'undo' per line; # starts a comment",
    )
    p.add_argument(
        "--cold",
        action="store_true",
        help="rebuild the model from scratch at every step (disable the "
        "incremental engine, for comparison)",
    )
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_refine)

    p = sub.add_parser(
        "replay",
        help="stream a load/failure trace through the online re-planner",
    )
    p.add_argument(
        "--input",
        default=None,
        help="JSON as-is state (default: the built-in online-line scenario)",
    )
    p.add_argument(
        "--trace-profile",
        default="diurnal",
        choices=("diurnal", "flash", "growth", "mixed"),
        help="canned load/failure trace to replay",
    )
    p.add_argument("--horizon-days", type=float, default=14.0, metavar="DAYS")
    p.add_argument("--seed", type=int, default=0, help="trace random seed")
    p.add_argument(
        "--full",
        action="store_true",
        help="rebuild the model from scratch at every re-plan (disable the "
        "incremental engine, for comparison)",
    )
    p.add_argument("--overload", type=float, default=0.85, metavar="UTIL",
                   help="utilization above which a site is capped")
    p.add_argument("--underload", type=float, default=0.30, metavar="UTIL",
                   help="utilization below which a site may be parked")
    p.add_argument("--target", type=float, default=0.70, metavar="UTIL",
                   help="utilization a capped site is squeezed back to")
    p.add_argument("--move-cost", type=float, default=300.0, metavar="USD",
                   help="one-off migration cost per server")
    p.add_argument("--payback-months", type=float, default=6.0, metavar="MONTHS",
                   help="window a voluntary re-plan's move cost must pay back in")
    p.add_argument("--json", dest="json_out", default=None, metavar="FILE",
                   help="write the full replay record as JSON to FILE")
    _add_solver_arguments(p)
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser(
        "serve",
        help="run the long-lived planning service (HTTP JSON API)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port; 0 binds an ephemeral port")
    p.add_argument("--workers", type=int, default=4,
                   help="solver worker processes")
    p.add_argument("--job-timeout", type=float, default=300.0, metavar="SECONDS",
                   help="per-job wall-clock limit")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries after a worker death before a job fails")
    p.add_argument("--journal", default=None, metavar="FILE",
                   help="append one JSON line per job event to FILE")
    p.add_argument("--store", default=None, metavar="URL",
                   help="shared job store (sqlite://PATH or memory://); "
                        "lets any replica answer for any job")
    p.add_argument("--replica-id", default=None, metavar="NAME",
                   help="stable replica identity in the shared store "
                        "(enables job recovery after a restart)")
    p.add_argument("--max-queue-depth", type=int, default=None, metavar="N",
                   help="reject submissions with 429 once N jobs are queued")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "watch",
        help="stream a job's lifecycle and solver progress events live",
    )
    p.add_argument("job_id", help="the job id to watch")
    p.add_argument("--url", default="http://127.0.0.1:8080",
                   help="service or dispatcher base URL")
    p.add_argument("--after", type=int, default=0, metavar="SEQ",
                   help="resume the stream after event SEQ")
    p.add_argument("--timeout", type=float, default=3600.0, metavar="SECONDS",
                   help="max silent gap between events")
    p.set_defaults(fn=_cmd_watch)

    p = sub.add_parser(
        "dispatch",
        help="run the cluster dispatcher in front of N serve replicas",
    )
    p.add_argument("--replica", action="append", required=True, metavar="URL",
                   help="backend replica base URL (repeatable)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8079,
                   help="TCP port; 0 binds an ephemeral port")
    p.add_argument("--store", default=None, metavar="URL",
                   help="the replicas' shared job store, for answering "
                        "status/result reads when replicas are down")
    p.add_argument("--cache-size", type=int, default=256,
                   help="entries in the shared fingerprint result cache")
    p.add_argument("--health-interval", type=float, default=1.0,
                   metavar="SECONDS", help="replica health-probe period")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(fn=_cmd_dispatch)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from .telemetry import trace_to

        # Open eagerly so a bad path is a clean CLI error, not a traceback.
        try:
            handle = open(trace_path, "a", encoding="utf-8")
        except OSError as exc:
            print(f"cannot open trace file {trace_path!r}: {exc}", file=sys.stderr)
            return 2
        try:
            with trace_to(handle):
                return _run(args)
        finally:
            handle.close()
    return _run(args)


def _run(args: argparse.Namespace) -> int:
    try:
        return args.fn(args)
    except CliInputError as exc:
        print(exc, file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
