"""The "to-be" state: transformation plans and their cost evaluation.

:func:`evaluate_plan` is the single source of truth for what a placement
costs.  Every algorithm in the library — the LP planner, the manual and
greedy baselines, and the as-is evaluator — is scored by this same
function, so cross-algorithm comparisons (Figs. 4 and 6) are apples to
apples and never depend on solver-internal objective bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..telemetry import SolveStats
from .entities import ApplicationGroup, AsIsState, CostParameters, DataCenter
from .wan import inter_site_wan_price, undirected_peer_traffic, wan_cost


@dataclass
class DataCenterUsage:
    """Per-data-center slice of a plan's cost."""

    name: str
    primary_servers: int = 0
    backup_servers: int = 0
    groups: list[str] = field(default_factory=list)
    space_cost: float = 0.0
    power_cost: float = 0.0
    labor_cost: float = 0.0
    wan_cost: float = 0.0
    fixed_cost: float = 0.0
    latency_penalty: float = 0.0

    @property
    def total_servers(self) -> int:
        return self.primary_servers + self.backup_servers

    @property
    def total_cost(self) -> float:
        return (
            self.space_cost
            + self.power_cost
            + self.labor_cost
            + self.wan_cost
            + self.fixed_cost
            + self.latency_penalty
        )


@dataclass
class CostBreakdown:
    """Aggregate monthly cost of a plan, split by component.

    ``operational`` excludes the latency penalty (the paper's bar charts
    show "Cost" and "Latency Penalty" stacked separately); ``total``
    includes everything plus the one-off DR server purchase.
    """

    space: float = 0.0
    power: float = 0.0
    labor: float = 0.0
    wan: float = 0.0
    fixed: float = 0.0
    latency_penalty: float = 0.0
    dr_purchase: float = 0.0

    @property
    def operational(self) -> float:
        return self.space + self.power + self.labor + self.wan + self.fixed

    @property
    def total(self) -> float:
        return self.operational + self.latency_penalty + self.dr_purchase

    def as_dict(self) -> dict[str, float]:
        return {
            "space": self.space,
            "power": self.power,
            "labor": self.labor,
            "wan": self.wan,
            "fixed": self.fixed,
            "latency_penalty": self.latency_penalty,
            "dr_purchase": self.dr_purchase,
            "operational": self.operational,
            "total": self.total,
        }


@dataclass
class TransformationPlan:
    """A complete "to-be" state.

    Attributes
    ----------
    placement:
        group name → primary data center name.
    secondary:
        group name → secondary (DR) data center name; empty for non-DR.
    backup_servers:
        data center name → backup pool size (shared under single-failure).
    breakdown / usage:
        evaluated costs (see :func:`evaluate_plan`).
    latency_violations:
        number of latency-sensitive groups placed above their threshold.
    solver_stats:
        :class:`repro.telemetry.SolveStats` of the solve that produced
        this plan; ``None`` for heuristic/as-is plans with no solver.
    """

    placement: dict[str, str]
    secondary: dict[str, str] = field(default_factory=dict)
    backup_servers: dict[str, int] = field(default_factory=dict)
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)
    usage: dict[str, DataCenterUsage] = field(default_factory=dict)
    latency_violations: int = 0
    solver: str = ""
    objective: float = float("nan")
    solver_stats: SolveStats | None = None

    @property
    def total_cost(self) -> float:
        return self.breakdown.total

    @property
    def datacenters_used(self) -> list[str]:
        """Data centers hosting primary or backup servers, sorted."""
        used = {dc for dc in self.placement.values()}
        used.update(name for name, count in self.backup_servers.items() if count > 0)
        return sorted(used)

    @property
    def has_dr(self) -> bool:
        return bool(self.secondary)

    def groups_at(self, dc_name: str) -> list[str]:
        """Names of groups whose primary is ``dc_name``."""
        return sorted(g for g, dc in self.placement.items() if dc == dc_name)


def shared_backup_requirements(
    groups: Iterable[ApplicationGroup],
    placement: Mapping[str, str],
    secondary: Mapping[str, str],
) -> dict[str, int]:
    """Size shared backup pools under the single-failure model.

    The pool at data center *b* must absorb the worst single primary
    failure: :math:`G_b = \\max_a Σ_{c: X_{ca} ∧ Y_{cb}} S_c`.
    """
    per_pair: dict[tuple[str, str], int] = {}
    for group in groups:
        if group.name not in secondary:
            continue
        a = placement[group.name]
        b = secondary[group.name]
        per_pair[(a, b)] = per_pair.get((a, b), 0) + group.servers
    pools: dict[str, int] = {}
    for (a, b), servers in per_pair.items():
        pools[b] = max(pools.get(b, 0), servers)
    return pools


def dedicated_backup_requirements(
    groups: Iterable[ApplicationGroup],
    secondary: Mapping[str, str],
) -> dict[str, int]:
    """Size dedicated backups (multi-failure): every group gets its own."""
    pools: dict[str, int] = {}
    for group in groups:
        b = secondary.get(group.name)
        if b is not None:
            pools[b] = pools.get(b, 0) + group.servers
    return pools


def evaluate_plan(
    state: AsIsState,
    placement: Mapping[str, str],
    secondary: Mapping[str, str] | None = None,
    datacenters: Iterable[DataCenter] | None = None,
    wan_model: str = "metered",
    backup_sharing: str = "shared",
    solver: str = "",
    objective: float = float("nan"),
) -> TransformationPlan:
    """Score a placement into a full :class:`TransformationPlan`.

    Parameters
    ----------
    placement:
        group name → data center name; must cover every group.
    secondary:
        optional DR assignment; backup pools are derived from it.
    datacenters:
        the pool the names refer to (default: the state's targets; pass
        ``state.current_datacenters`` to evaluate the as-is placement).
    backup_sharing:
        ``"shared"`` (single-failure pools) or ``"dedicated"``.

    Backup servers incur space, power and labor at their host data
    center plus the one-off purchase cost ζ; WAN and latency penalties
    apply to primary placements only (failover traffic is out of the
    monthly steady-state bill).
    """
    params = state.params
    pool = list(datacenters) if datacenters is not None else state.target_datacenters
    by_name = {dc.name: dc for dc in pool}
    secondary = dict(secondary or {})

    missing = [g.name for g in state.app_groups if g.name not in placement]
    if missing:
        raise ValueError(f"placement missing application groups: {missing[:5]}...")

    if backup_sharing == "shared":
        backups = shared_backup_requirements(state.app_groups, placement, secondary)
    elif backup_sharing == "dedicated":
        backups = dedicated_backup_requirements(state.app_groups, secondary)
    else:
        raise ValueError(f"unknown backup sharing mode {backup_sharing!r}")

    usage: dict[str, DataCenterUsage] = {}

    def usage_for(name: str) -> DataCenterUsage:
        if name not in by_name:
            raise KeyError(f"placement references unknown data center {name!r}")
        return usage.setdefault(name, DataCenterUsage(name=name))

    for group in state.app_groups:
        slot = usage_for(placement[group.name])
        slot.primary_servers += group.servers
        slot.groups.append(group.name)
    for name, count in backups.items():
        usage_for(name).backup_servers += count

    breakdown = CostBreakdown()
    violations = 0

    for name, slot in usage.items():
        dc = by_name[name]
        total_servers = slot.total_servers
        powered = slot.primary_servers + params.backup_power_fraction * slot.backup_servers
        managed = slot.primary_servers + params.backup_labor_fraction * slot.backup_servers
        slot.space_cost = dc.space_cost.total_cost(total_servers)
        slot.power_cost = powered * params.server_power_kw * dc.power_cost_per_kw
        slot.labor_cost = managed * dc.labor_cost_per_admin / params.servers_per_admin
        if total_servers > 0:
            slot.fixed_cost = dc.fixed_monthly_cost
        breakdown.space += slot.space_cost
        breakdown.power += slot.power_cost
        breakdown.labor += slot.labor_cost
        breakdown.fixed += slot.fixed_cost

    for group in state.app_groups:
        dc = by_name[placement[group.name]]
        slot = usage[dc.name]
        group_wan = wan_cost(group, dc, params, model=wan_model)
        slot.wan_cost += group_wan
        breakdown.wan += group_wan
        if group.total_users > 0:
            mean_latency = group.mean_latency(dc.latency_to_users)
            penalty = group.latency_penalty.total_penalty(mean_latency, group.total_users)
            slot.latency_penalty += penalty
            breakdown.latency_penalty += penalty
            if group.is_latency_sensitive and group.latency_penalty.violates(mean_latency):
                violations += 1

    # Inter-group traffic: free inside a site, WAN-priced across sites.
    pair_traffic = undirected_peer_traffic(state.app_groups)
    for pair, traffic in pair_traffic.items():
        name_a, name_b = sorted(pair)
        if name_a not in placement or name_b not in placement:
            raise ValueError(f"peer traffic references unplaced group in {pair}")
        site_a, site_b = placement[name_a], placement[name_b]
        if site_a == site_b:
            continue
        price = inter_site_wan_price(by_name[site_a], by_name[site_b])
        cost = traffic * price
        usage[site_a].wan_cost += cost / 2
        usage[site_b].wan_cost += cost / 2
        breakdown.wan += cost

    breakdown.dr_purchase = params.dr_server_cost * sum(backups.values())

    return TransformationPlan(
        placement=dict(placement),
        secondary=secondary,
        backup_servers=backups,
        breakdown=breakdown,
        usage=usage,
        latency_violations=violations,
        solver=solver,
        objective=objective,
    )
