"""Domain entities: the "as-is" state specification of Table I.

The paper's input is an enterprise described by application groups
(servers, traffic, users, constraints), candidate target data centers
(capacity and the four cost components), and the user-location geometry
that induces latencies.  These classes are plain data with validation;
all optimization logic lives in :mod:`repro.core.formulation`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

from .costs import StepCostFunction
from .latency import LatencyPenaltyFunction, NO_PENALTY


@dataclass(frozen=True)
class UserLocation:
    """A geographic concentration of application users.

    Coordinates are planar kilometres; the geography module converts
    distance to latency.
    """

    name: str
    x: float = 0.0
    y: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("user location needs a name")


@dataclass
class ApplicationGroup:
    """An associativity-constrained group of applications (Section II).

    All ``servers`` of the group must land in one data center.  ``users``
    is the traffic matrix row :math:`C_{ir}`; ``monthly_data_mb`` is
    :math:`D_i` in megabits/month exchanged with users.
    """

    name: str
    servers: int
    monthly_data_mb: float = 0.0
    users: dict[str, float] = field(default_factory=dict)
    latency_penalty: LatencyPenaltyFunction = NO_PENALTY
    current_datacenter: str | None = None
    allowed_regions: frozenset[str] | None = None
    forbidden_datacenters: frozenset[str] = frozenset()
    risk_group: str | None = None
    #: Inter-group traffic (Mb/month) to *other* groups, by name.  Free
    #: on the LAN; placed across sites it becomes WAN traffic — the very
    #: reason the paper groups tightly-coupled applications at all.
    peers: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application group needs a name")
        if self.servers <= 0:
            raise ValueError(f"group {self.name!r}: servers must be positive")
        if self.monthly_data_mb < 0:
            raise ValueError(f"group {self.name!r}: negative data volume")
        for loc, count in self.users.items():
            if count < 0:
                raise ValueError(f"group {self.name!r}: negative users at {loc!r}")
        for peer, traffic in self.peers.items():
            if traffic < 0:
                raise ValueError(f"group {self.name!r}: negative traffic to {peer!r}")
            if peer == self.name:
                raise ValueError(f"group {self.name!r} lists itself as a peer")

    @property
    def total_users(self) -> float:
        """Total user count across all locations."""
        return sum(self.users.values())

    @property
    def is_latency_sensitive(self) -> bool:
        """Whether the group carries any latency penalty at all."""
        return self.latency_penalty is not NO_PENALTY and not self.latency_penalty.is_zero

    def mean_latency(self, latency_to_users: Mapping[str, float]) -> float:
        """User-weighted mean latency given per-location latencies (ms).

        Locations with zero users do not contribute; a group with no
        users has zero mean latency by convention.
        """
        total = self.total_users
        if total == 0:
            return 0.0
        acc = 0.0
        for loc, count in self.users.items():
            if count == 0:
                continue
            try:
                acc += count * latency_to_users[loc]
            except KeyError:
                raise KeyError(
                    f"group {self.name!r} has users at {loc!r} but no latency "
                    "figure for that location was provided"
                ) from None
        return acc / total

    def with_users(self, users: dict[str, float]) -> "ApplicationGroup":
        """Copy of this group with a different user distribution."""
        return replace(self, users=dict(users))


@dataclass
class DataCenter:
    """A (current or candidate target) data center location.

    Cost fields follow Table I: ``space_cost`` is :math:`Q_j` as a
    volume-discount schedule in $/server/month, ``power_cost_per_kw``
    is :math:`E_j` in $/kW/month, ``labor_cost_per_admin`` is
    :math:`T_j` in $/admin/month, ``wan_cost_per_mb`` is :math:`W_j`
    in $/megabit.  ``latency_to_users`` holds milliseconds per user
    location; ``vpn_link_cost`` holds the monthly price :math:`F_{jr}`
    of one dedicated VPN link per user location.
    """

    name: str
    capacity: int
    space_cost: StepCostFunction
    power_cost_per_kw: float
    labor_cost_per_admin: float
    wan_cost_per_mb: float
    latency_to_users: dict[str, float] = field(default_factory=dict)
    vpn_link_cost: dict[str, float] = field(default_factory=dict)
    region: str = "global"
    x: float = 0.0
    y: float = 0.0
    #: Monthly facility overhead paid whenever the site hosts anything
    #: (security, cooling baseline, network uplinks, management).  This
    #: is what scattering an estate over tens of small sites really
    #: costs, and what consolidation eliminates.
    fixed_monthly_cost: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("data center needs a name")
        if self.capacity <= 0:
            raise ValueError(f"data center {self.name!r}: capacity must be positive")
        for label, value in (
            ("power", self.power_cost_per_kw),
            ("labor", self.labor_cost_per_admin),
            ("wan", self.wan_cost_per_mb),
            ("fixed", self.fixed_monthly_cost),
        ):
            if value < 0:
                raise ValueError(f"data center {self.name!r}: negative {label} cost")

    def per_server_monthly_cost(self, params: "CostParameters", occupancy: int = 1) -> float:
        """Space + power + labor for one server at the given occupancy.

        Space uses the volume-discount unit price that applies when the
        data center hosts ``occupancy`` servers in total.
        """
        space = self.space_cost.unit_price(occupancy)
        power = params.server_power_kw * self.power_cost_per_kw
        labor = self.labor_cost_per_admin / params.servers_per_admin
        return space + power + labor


@dataclass
class CostParameters:
    """Global sizing constants of the formulation (Section III-B).

    Attributes
    ----------
    server_power_kw:
        α — mean power draw of one server in kW (paper: 0.3–0.4).
    servers_per_admin:
        β — servers one administrator handles (paper: 130).
    vpn_link_capacity_mb:
        γ — megabits/month one dedicated VPN link carries.
    dr_server_cost:
        ζ — purchase price of one backup server.
    business_impact:
        ω — max fraction of all application groups in a single DC.
    include_backup_in_capacity:
        Whether backup servers consume target-DC capacity.
    """

    server_power_kw: float = 0.35
    servers_per_admin: float = 130.0
    vpn_link_capacity_mb: float = 100_000.0
    dr_server_cost: float = 1000.0
    business_impact: float = 1.0
    include_backup_in_capacity: bool = True
    #: Fraction of a live server's power / labor bill a backup server
    #: incurs.  0.0 is cold standby (racked but powered off, unmanaged);
    #: 1.0 is hot standby.  Backup *space* is always paid in full.
    backup_power_fraction: float = 0.0
    backup_labor_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.server_power_kw <= 0:
            raise ValueError("server power draw must be positive")
        if self.servers_per_admin <= 0:
            raise ValueError("servers per admin must be positive")
        if self.vpn_link_capacity_mb <= 0:
            raise ValueError("VPN link capacity must be positive")
        if self.dr_server_cost < 0:
            raise ValueError("DR server cost cannot be negative")
        if not 0 < self.business_impact <= 1:
            raise ValueError("business impact ω must be in (0, 1]")
        for label, value in (
            ("backup power fraction", self.backup_power_fraction),
            ("backup labor fraction", self.backup_labor_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")


@dataclass
class AsIsState:
    """The full "as-is" specification handed to eTransform.

    ``current_datacenters`` carry the pricing of the existing estate (to
    evaluate the as-is cost); ``target_datacenters`` are the candidate
    consolidation sites the plan chooses among.
    """

    name: str
    app_groups: list[ApplicationGroup]
    target_datacenters: list[DataCenter]
    user_locations: list[UserLocation] = field(default_factory=list)
    current_datacenters: list[DataCenter] = field(default_factory=list)
    params: CostParameters = field(default_factory=CostParameters)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for group in self.app_groups:
            if group.name in seen:
                raise ValueError(f"duplicate application group name {group.name!r}")
            seen.add(group.name)
        names: set[str] = set()
        for dc in list(self.target_datacenters) + list(self.current_datacenters):
            if dc.name in names:
                raise ValueError(f"duplicate data center name {dc.name!r}")
            names.add(dc.name)

    # -- lookups ----------------------------------------------------------
    def group(self, name: str) -> ApplicationGroup:
        """Application group by name."""
        for g in self.app_groups:
            if g.name == name:
                return g
        raise KeyError(f"no application group named {name!r}")

    def target(self, name: str) -> DataCenter:
        """Target data center by name."""
        for dc in self.target_datacenters:
            if dc.name == name:
                return dc
        raise KeyError(f"no target data center named {name!r}")

    def current(self, name: str) -> DataCenter:
        """Current (as-is) data center by name."""
        for dc in self.current_datacenters:
            if dc.name == name:
                return dc
        raise KeyError(f"no current data center named {name!r}")

    # -- summary ------------------------------------------------------------
    @property
    def total_servers(self) -> int:
        """Σ S_i across application groups."""
        return sum(g.servers for g in self.app_groups)

    @property
    def total_target_capacity(self) -> int:
        return sum(dc.capacity for dc in self.target_datacenters)

    def summary(self) -> dict[str, int]:
        """Table-II-style dataset summary."""
        return {
            "app_groups": len(self.app_groups),
            "servers": self.total_servers,
            "current_datacenters": len(self.current_datacenters),
            "target_datacenters": len(self.target_datacenters),
            "user_locations": len(self.user_locations),
        }

    def placeable(self, group: ApplicationGroup, dc: DataCenter) -> bool:
        """Whether constraints allow ``group`` in target ``dc`` at all.

        Checks the static placement constraints (size, region, explicit
        forbids); capacity interaction with other groups is the
        solver's job.
        """
        if group.servers > dc.capacity:
            return False
        if dc.name in group.forbidden_datacenters:
            return False
        if group.allowed_regions is not None and dc.region not in group.allowed_regions:
            return False
        return True


def groups_by_risk(groups: Iterable[ApplicationGroup]) -> dict[str, list[ApplicationGroup]]:
    """Bucket groups by shared-risk tag (groups without a tag excluded)."""
    buckets: dict[str, list[ApplicationGroup]] = {}
    for group in groups:
        if group.risk_group:
            buckets.setdefault(group.risk_group, []).append(group)
    return buckets
