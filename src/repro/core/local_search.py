"""Local-search improvement of consolidation plans.

Polishes any (non-DR) placement with relocate and swap moves until no
single move helps.  Useful to upgrade heuristic output — greedy or the
relax-and-round backend — toward LP quality when an exact solve is too
expensive, and as an independent check that a plan is locally tight.

The evaluator is incremental: a move touches at most two sites, so only
those sites' space/power/labor/fixed slices and the moved groups'
WAN/latency terms are re-priced, not the whole estate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .entities import ApplicationGroup, AsIsState, DataCenter
from .plan import TransformationPlan, evaluate_plan
from .wan import wan_cost


@dataclass
class LocalSearchResult:
    """The improved plan plus search statistics."""

    plan: TransformationPlan
    iterations: int
    relocations: int
    swaps: int
    initial_cost: float

    @property
    def improvement(self) -> float:
        """Absolute cost reduction achieved."""
        return self.initial_cost - self.plan.total_cost


class _IncrementalEvaluator:
    """Per-site and per-group cost pieces with O(1) move deltas."""

    def __init__(self, state: AsIsState, wan_model: str) -> None:
        self.state = state
        self.wan_model = wan_model
        self.groups = {g.name: g for g in state.app_groups}
        self.sites = {dc.name: dc for dc in state.target_datacenters}
        self._group_site_cache: dict[tuple[str, str], float] = {}

    def site_cost(self, dc: DataCenter, servers: int) -> float:
        """Space + power + labor + fixed for a site hosting ``servers``."""
        if servers == 0:
            return 0.0
        params = self.state.params
        return (
            dc.space_cost.total_cost(servers)
            + servers * params.server_power_kw * dc.power_cost_per_kw
            + servers * dc.labor_cost_per_admin / params.servers_per_admin
            + dc.fixed_monthly_cost
        )

    def group_cost(self, group: ApplicationGroup, dc: DataCenter) -> float:
        """WAN + latency penalty of hosting ``group`` at ``dc``."""
        key = (group.name, dc.name)
        if key not in self._group_site_cache:
            cost = wan_cost(group, dc, self.state.params, model=self.wan_model)
            if group.total_users > 0:
                mean = group.mean_latency(dc.latency_to_users)
                cost += group.latency_penalty.total_penalty(mean, group.total_users)
            self._group_site_cache[key] = cost
        return self._group_site_cache[key]


def _risk_conflict(
    group: ApplicationGroup,
    site: str,
    placement: dict[str, str],
    groups: dict[str, ApplicationGroup],
    ignore: str | None = None,
) -> bool:
    if group.risk_group is None:
        return False
    for other_name, other_site in placement.items():
        if other_name == group.name or other_name == ignore:
            continue
        if other_site != site:
            continue
        if groups[other_name].risk_group == group.risk_group:
            return True
    return False


def improve_plan(
    state: AsIsState,
    plan: TransformationPlan,
    wan_model: str = "metered",
    max_iterations: int = 10_000,
) -> LocalSearchResult:
    """Run relocate/swap local search to a local optimum.

    Only non-DR plans are supported (a DR move changes pool sizes
    non-locally); pass the primary-only placement of a DR plan if you
    want a quick sanity polish of the primaries.

    The returned plan is re-scored by :func:`evaluate_plan`, so its
    breakdown is exactly comparable with every other plan in the
    library.
    """
    if plan.has_dr:
        raise ValueError("local search supports non-DR plans only")
    if any(g.peers for g in state.app_groups):
        raise ValueError(
            "local search does not support inter-group traffic yet "
            "(moves would have non-local cost effects)"
        )
    if max_iterations < 0:
        raise ValueError("max_iterations cannot be negative")

    ev = _IncrementalEvaluator(state, wan_model)
    placement = dict(plan.placement)
    servers_at: dict[str, int] = {name: 0 for name in ev.sites}
    for name, site in placement.items():
        servers_at[site] += ev.groups[name].servers

    omega = state.params.business_impact
    group_cap = omega * len(state.app_groups) if omega < 1.0 else None
    groups_at: dict[str, int] = {name: 0 for name in ev.sites}
    for site in placement.values():
        groups_at[site] += 1

    iterations = relocations = swaps = 0

    def relocate_delta(g: ApplicationGroup, src: str, dst: str) -> float:
        src_dc, dst_dc = ev.sites[src], ev.sites[dst]
        delta = (
            ev.site_cost(src_dc, servers_at[src] - g.servers)
            - ev.site_cost(src_dc, servers_at[src])
            + ev.site_cost(dst_dc, servers_at[dst] + g.servers)
            - ev.site_cost(dst_dc, servers_at[dst])
            + ev.group_cost(g, dst_dc)
            - ev.group_cost(g, src_dc)
        )
        return delta

    improved = True
    while improved and iterations < max_iterations:
        improved = False
        # -- relocate moves --------------------------------------------
        for name in sorted(placement):
            g = ev.groups[name]
            src = placement[name]
            for dst, dst_dc in ev.sites.items():
                if dst == src or not state.placeable(g, dst_dc):
                    continue
                if servers_at[dst] + g.servers > dst_dc.capacity:
                    continue
                if group_cap is not None and groups_at[dst] + 1 > group_cap:
                    continue
                if _risk_conflict(g, dst, placement, ev.groups):
                    continue
                iterations += 1
                if iterations > max_iterations:
                    break
                if relocate_delta(g, src, dst) < -1e-9:
                    placement[name] = dst
                    servers_at[src] -= g.servers
                    servers_at[dst] += g.servers
                    groups_at[src] -= 1
                    groups_at[dst] += 1
                    relocations += 1
                    improved = True
                    src = dst
        # -- swap moves -----------------------------------------------
        names = sorted(placement)
        for i, name_a in enumerate(names):
            for name_b in names[i + 1 :]:
                a, b = ev.groups[name_a], ev.groups[name_b]
                site_a, site_b = placement[name_a], placement[name_b]
                if site_a == site_b:
                    continue
                dc_a, dc_b = ev.sites[site_a], ev.sites[site_b]
                if not (state.placeable(a, dc_b) and state.placeable(b, dc_a)):
                    continue
                if servers_at[site_b] - b.servers + a.servers > dc_b.capacity:
                    continue
                if servers_at[site_a] - a.servers + b.servers > dc_a.capacity:
                    continue
                if _risk_conflict(a, site_b, placement, ev.groups, ignore=name_b):
                    continue
                if _risk_conflict(b, site_a, placement, ev.groups, ignore=name_a):
                    continue
                iterations += 1
                if iterations > max_iterations:
                    break
                delta = (
                    ev.site_cost(dc_a, servers_at[site_a] - a.servers + b.servers)
                    - ev.site_cost(dc_a, servers_at[site_a])
                    + ev.site_cost(dc_b, servers_at[site_b] - b.servers + a.servers)
                    - ev.site_cost(dc_b, servers_at[site_b])
                    + ev.group_cost(a, dc_b) - ev.group_cost(a, dc_a)
                    + ev.group_cost(b, dc_a) - ev.group_cost(b, dc_b)
                )
                if delta < -1e-9:
                    placement[name_a], placement[name_b] = site_b, site_a
                    servers_at[site_a] += b.servers - a.servers
                    servers_at[site_b] += a.servers - b.servers
                    swaps += 1
                    improved = True

    final = evaluate_plan(
        state, placement, wan_model=wan_model,
        solver=(plan.solver + "+ls") if plan.solver else "local-search",
    )
    return LocalSearchResult(
        plan=final,
        iterations=iterations,
        relocations=relocations,
        swaps=swaps,
        initial_cost=plan.total_cost,
    )
