"""Latency penalty functions and violation accounting.

Each application group specifies its latency constraint as a *step
penalty function* (Section III-B): a per-user dollar penalty keyed on
the user-weighted mean latency the placement induces.  The canonical
case-study instance is "$100 per user if mean latency exceeds 10 ms".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PenaltyStep:
    """One step: penalty applies once mean latency exceeds ``threshold_ms``."""

    threshold_ms: float
    penalty_per_user: float

    def __post_init__(self) -> None:
        if self.threshold_ms < 0:
            raise ValueError("latency threshold cannot be negative")
        if self.penalty_per_user < 0:
            raise ValueError("penalty cannot be negative")


class LatencyPenaltyFunction:
    """Monotone step function: mean latency (ms) → $ per user.

    Steps are cumulative thresholds: the applicable penalty is that of
    the highest threshold exceeded.  An empty function never penalizes.
    """

    def __init__(self, steps: Sequence[PenaltyStep] = ()) -> None:
        ordered = sorted(steps, key=lambda s: s.threshold_ms)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.threshold_ms == earlier.threshold_ms:
                raise ValueError("duplicate latency thresholds")
            if later.penalty_per_user < earlier.penalty_per_user:
                raise ValueError("penalties must be non-decreasing in latency")
        self._steps = tuple(ordered)

    @classmethod
    def single_threshold(cls, threshold_ms: float, penalty_per_user: float) -> "LatencyPenaltyFunction":
        """The paper's canonical one-step penalty."""
        return cls([PenaltyStep(threshold_ms, penalty_per_user)])

    @classmethod
    def banded(
        cls,
        threshold_ms: float,
        band_width_ms: float,
        penalty_per_band: float,
        bands: int,
    ) -> "LatencyPenaltyFunction":
        """A multi-band step function: each ``band_width_ms`` beyond the
        threshold adds another ``penalty_per_band`` per user.

        This is the general "cost per user based on the range for the
        average latency" form of Section III-B; the parameter studies
        (Fig. 7) use it so placements move gradually toward users as the
        penalty rate grows.
        """
        if band_width_ms <= 0:
            raise ValueError("band width must be positive")
        if bands < 1:
            raise ValueError("need at least one band")
        steps = [
            PenaltyStep(threshold_ms + k * band_width_ms, (k + 1) * penalty_per_band)
            for k in range(bands)
        ]
        return cls(steps)

    @property
    def steps(self) -> tuple[PenaltyStep, ...]:
        return self._steps

    @property
    def is_zero(self) -> bool:
        """True when no latency ever incurs a penalty."""
        return all(s.penalty_per_user == 0 for s in self._steps)

    @property
    def strictest_threshold_ms(self) -> float | None:
        """Lowest latency threshold carrying a positive penalty, if any."""
        for step in self._steps:
            if step.penalty_per_user > 0:
                return step.threshold_ms
        return None

    def penalty_per_user(self, mean_latency_ms: float) -> float:
        """Dollar penalty per user at the given mean latency."""
        if mean_latency_ms < 0:
            raise ValueError("latency cannot be negative")
        applicable = 0.0
        for step in self._steps:
            if mean_latency_ms > step.threshold_ms:
                applicable = step.penalty_per_user
            else:
                break
        return applicable

    def total_penalty(self, mean_latency_ms: float, users: float) -> float:
        """Group-level penalty: per-user penalty × user count."""
        return self.penalty_per_user(mean_latency_ms) * users

    def violates(self, mean_latency_ms: float) -> bool:
        """Whether the latency constraint is violated at this latency.

        A *violation* in the paper's tables is a latency-sensitive group
        whose placement exceeds its (positive-penalty) threshold.
        """
        threshold = self.strictest_threshold_ms
        return threshold is not None and mean_latency_ms > threshold

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyPenaltyFunction):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:
        if not self._steps:
            return "LatencyPenaltyFunction(none)"
        parts = ", ".join(
            f">{s.threshold_ms:g}ms→${s.penalty_per_user:g}/user" for s in self._steps
        )
        return f"LatencyPenaltyFunction({parts})"


#: Shared sentinel for "no latency constraint".
NO_PENALTY = LatencyPenaltyFunction()
