"""eTransform core: entities, cost models, MILP formulation, planner."""

from .costs import StepCostFunction, PriceSegment, monthly_power_cost_per_kw
from .decomposition import (
    DecompositionConfig,
    DecompositionError,
    DecompositionOutcome,
    extract_group_blocks,
    solve_decomposition,
)
from .entities import (
    ApplicationGroup,
    AsIsState,
    CostParameters,
    DataCenter,
    UserLocation,
)
from .formulation import ConsolidationModel, InfeasibleModelError, ModelOptions
from .incremental import Directive, Revision, RevisionedModel
from .iterative import DirectiveConflictError, IterativeSession
from .latency import NO_PENALTY, LatencyPenaltyFunction, PenaltyStep
from .local_search import LocalSearchResult, improve_plan
from .plan import (
    CostBreakdown,
    DataCenterUsage,
    TransformationPlan,
    dedicated_backup_requirements,
    evaluate_plan,
    shared_backup_requirements,
)
from .planner import ETransformPlanner, PlannerOptions, PlanningError, plan_consolidation
from .splitting import (
    SplitRecord,
    SplitResult,
    merge_placement,
    split_oversized_groups,
)
from .validation import (
    PlanValidationError,
    StateValidationError,
    validate_plan,
    validate_state,
)

__all__ = [
    "ApplicationGroup",
    "AsIsState",
    "ConsolidationModel",
    "CostBreakdown",
    "CostParameters",
    "DataCenter",
    "DataCenterUsage",
    "DecompositionConfig",
    "DecompositionError",
    "DecompositionOutcome",
    "Directive",
    "DirectiveConflictError",
    "Revision",
    "RevisionedModel",
    "ETransformPlanner",
    "InfeasibleModelError",
    "IterativeSession",
    "LatencyPenaltyFunction",
    "LocalSearchResult",
    "ModelOptions",
    "NO_PENALTY",
    "PenaltyStep",
    "PlanValidationError",
    "PlannerOptions",
    "PlanningError",
    "PriceSegment",
    "SplitRecord",
    "SplitResult",
    "StateValidationError",
    "StepCostFunction",
    "TransformationPlan",
    "UserLocation",
    "merge_placement",
    "split_oversized_groups",
    "dedicated_backup_requirements",
    "evaluate_plan",
    "extract_group_blocks",
    "solve_decomposition",
    "improve_plan",
    "monthly_power_cost_per_kw",
    "plan_consolidation",
    "shared_backup_requirements",
    "validate_plan",
    "validate_state",
]
