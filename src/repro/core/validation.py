"""Input-state and plan validation.

Catches specification errors before they reach the solver (where they
would only surface as an opaque INFEASIBLE) and double-checks every plan
the library emits against the hard constraints of Section III-B.
"""

from __future__ import annotations

from .entities import AsIsState, groups_by_risk
from .plan import TransformationPlan


class StateValidationError(ValueError):
    """The as-is specification is internally inconsistent."""


class PlanValidationError(ValueError):
    """An emitted plan violates a hard constraint."""


def validate_state(state: AsIsState, require_dr_headroom: bool = False) -> None:
    """Sanity-check an as-is state before planning.

    Checks: at least one target, aggregate capacity covers the server
    estate, every group fits somewhere, user locations referenced by
    traffic matrices and latency tables exist, and (for DR) that at
    least two sites are eligible per group.
    """
    if not state.app_groups:
        raise StateValidationError("state has no application groups")
    if not state.target_datacenters:
        raise StateValidationError("state has no target data centers")

    if state.total_servers > state.total_target_capacity:
        raise StateValidationError(
            f"total servers ({state.total_servers}) exceed aggregate target "
            f"capacity ({state.total_target_capacity})"
        )

    known_locations = {loc.name for loc in state.user_locations}
    for group in state.app_groups:
        eligible = [
            dc for dc in state.target_datacenters if state.placeable(group, dc)
        ]
        if not eligible:
            raise StateValidationError(
                f"group {group.name!r} fits no target data center "
                "(capacity/region/forbid constraints)"
            )
        if require_dr_headroom and len(eligible) < 2:
            raise StateValidationError(
                f"group {group.name!r} has only one eligible site; DR needs two"
            )
        if known_locations:
            unknown = set(group.users) - known_locations
            if unknown:
                raise StateValidationError(
                    f"group {group.name!r} references unknown user locations "
                    f"{sorted(unknown)}"
                )
        group_names = {g.name for g in state.app_groups}
        unknown_peers = set(group.peers) - group_names
        if unknown_peers:
            raise StateValidationError(
                f"group {group.name!r} declares traffic to unknown groups "
                f"{sorted(unknown_peers)}"
            )

    for dc in state.target_datacenters:
        if known_locations:
            missing = {
                loc
                for group in state.app_groups
                for loc, count in group.users.items()
                if count > 0
            } - set(dc.latency_to_users)
            if missing:
                raise StateValidationError(
                    f"target {dc.name!r} lacks latency figures for user "
                    f"locations {sorted(missing)}"
                )


def validate_plan(state: AsIsState, plan: TransformationPlan) -> None:
    """Verify a plan against the hard constraints of the formulation.

    Raises :class:`PlanValidationError` on: unassigned groups, capacity
    overruns (including backup pools when configured), primary equal to
    secondary, ineligible placements, shared-risk co-location, or a
    broken business-impact cap.
    """
    targets = {dc.name: dc for dc in state.target_datacenters}

    for group in state.app_groups:
        dc_name = plan.placement.get(group.name)
        if dc_name is None:
            raise PlanValidationError(f"group {group.name!r} is unassigned")
        dc = targets.get(dc_name)
        if dc is None:
            raise PlanValidationError(
                f"group {group.name!r} placed in unknown site {dc_name!r}"
            )
        if not state.placeable(group, dc):
            raise PlanValidationError(
                f"group {group.name!r} is not allowed in {dc_name!r}"
            )
        if plan.secondary:
            backup = plan.secondary.get(group.name)
            if backup is None:
                raise PlanValidationError(f"group {group.name!r} lacks a DR site")
            if backup == dc_name:
                raise PlanValidationError(
                    f"group {group.name!r}: primary and secondary coincide"
                )
            if backup not in targets:
                raise PlanValidationError(
                    f"group {group.name!r}: unknown DR site {backup!r}"
                )

    # Capacity, including backup pools when they consume capacity.
    load: dict[str, int] = {}
    for group in state.app_groups:
        name = plan.placement[group.name]
        load[name] = load.get(name, 0) + group.servers
    if state.params.include_backup_in_capacity:
        for name, pool in plan.backup_servers.items():
            load[name] = load.get(name, 0) + pool
    for name, used in load.items():
        capacity = targets[name].capacity
        if used > capacity:
            raise PlanValidationError(
                f"site {name!r} over capacity: {used} > {capacity}"
            )

    # Shared-risk anti-colocation.
    for tag, members in groups_by_risk(state.app_groups).items():
        sites = [plan.placement[m.name] for m in members]
        duplicates = {s for s in sites if sites.count(s) > 1}
        if duplicates:
            raise PlanValidationError(
                f"risk group {tag!r} co-located in {sorted(duplicates)}"
            )

    # Business impact ω.
    omega = state.params.business_impact
    if omega < 1.0:
        cap = omega * len(state.app_groups)
        counts: dict[str, int] = {}
        for name in plan.placement.values():
            counts[name] = counts.get(name, 0) + 1
        for name, count in counts.items():
            if count > cap + 1e-9:
                raise PlanValidationError(
                    f"site {name!r} hosts {count} groups, above the ω cap {cap:.1f}"
                )
